"""Backend selection and run-walk adapters for the unified facade.

Three kinds of machinery live here:

- :func:`build_backend` — one switchboard resolving a backend name
  (``"auto"``, ``"exact"``, ``"sharded"``, ``"approx"`` or any
  :mod:`repro.baselines.registry` name) plus a key mode to a concrete
  implementation, the way the paper's profile and the space-optimal
  sketch estimators of Chen–Indyk–Woodruff are interchangeable behind
  one contract;
- the ``*RunsView`` adapters — each presents its backend's block
  structure as the merged descending run walk
  :func:`repro.api.plan.evaluate_fused` consumes, visiting every
  underlying :class:`~repro.core.blockset.BlockSet` exactly once;
- :class:`ApproxProfiler` — the sublinear-space backend: a Count-Min
  sketch for point estimates plus a SpaceSaving summary for ranked
  queries, add-only, with explicit error bounds.
"""

from __future__ import annotations

import os
from heapq import merge as _heap_merge
from typing import Hashable, Iterator

from repro.api.plan import Run
from repro.baselines.registry import available_profilers, make_profiler
from repro.core.dynamic import DynamicProfiler
from repro.core.flat import FlatProfile
from repro.core.profile import SProfile, net_deltas
from repro.core.queries import ModeResult, TopEntry
from repro.engine.parallel import (
    ParallelShardedProfiler,
    default_workers,
    parallel_supported,
)
from repro.engine.sharding import ShardedProfiler
from repro.errors import (
    CapacityError,
    EmptyProfileError,
    UnsupportedQueryError,
)

__all__ = [
    "ApproxProfiler",
    "available_backends",
    "build_backend",
    "resolve_backend",
    "runs_view_for",
]

#: Facade-level backend names (registry baseline names add to these).
_BUILTIN_BACKENDS = ("auto", "flat", "exact", "sharded", "parallel", "approx")

#: ``auto`` escalates dense batch workloads to the parallel engine at
#: this capacity — large enough that the worker fan-out and shared
#: memory are cheap relative to the universe, and only when the
#: machine actually has more than one core.
PARALLEL_AUTO_CAPACITY = 4_000_000


def available_backends() -> tuple[str, ...]:
    """Every name ``Profiler.open(backend=...)`` accepts."""
    return _BUILTIN_BACKENDS + available_profilers()


def resolve_backend(
    backend: str,
    keys: str,
    shards,
    track_freq_index: bool = False,
    workers=None,
    capacity=None,
) -> str:
    """Collapse ``"auto"`` to a concrete backend name.

    ``auto`` picks the parallel engine when a worker fan-out is given
    — or, for dense keys, when the universe reaches
    ``PARALLEL_AUTO_CAPACITY`` on a multi-core machine (the large
    dense batch workload where worker processes pay off); the sharded
    engine when a shard fan-out is given; the flat struct-of-arrays
    engine for dense keys (the fastest exact single-core path; see
    ``BENCH_core.json``); and the block-object exact engine otherwise
    — hashable keys need the growable universe, and
    ``track_freq_index`` needs the O(1) frequency->block index only
    the block-object engine maintains.
    """
    if backend != "auto":
        return backend
    if workers is not None:
        return "parallel"
    if shards is not None:
        return "sharded"
    if keys == "dense" and not track_freq_index:
        if (
            capacity is not None
            and capacity >= PARALLEL_AUTO_CAPACITY
            and (os.cpu_count() or 1) > 1
            and parallel_supported()
        ):
            return "parallel"
        return "flat"
    return "exact"


def build_backend(
    backend: str,
    capacity,
    *,
    keys: str,
    strict: bool,
    shards,
    track_freq_index: bool = False,
    workers=None,
    **options,
):
    """Construct the implementation behind a resolved backend name.

    Returns ``(impl, facade_interned)`` — the second flag tells the
    facade it must own an :class:`~repro.core.interner.ObjectInterner`
    (hashable keys over a dense-id implementation).
    """
    name = resolve_backend(
        backend, keys, shards, track_freq_index, workers, capacity
    )
    if shards is not None and name != "sharded":
        raise CapacityError(
            f"shards= only applies to the sharded backend, not {name!r}"
        )
    if workers is not None and name != "parallel":
        raise CapacityError(
            f"workers= only applies to the parallel backend, not {name!r}"
        )
    allow_negative = not strict

    if name == "approx":
        # Sketches take hashable keys natively and need no capacity;
        # strictness is inherent (the backend is add-only).
        return ApproxProfiler(**options), False
    array_engine = options.pop("array_engine", None)
    if array_engine is not None and name != "flat":
        raise CapacityError(
            f"array_engine= only applies to the flat backend, not {name!r}"
        )
    if options:
        raise CapacityError(
            f"unknown options for backend {name!r}: {sorted(options)}"
        )

    if name == "exact" and keys == "hashable":
        return (
            DynamicProfiler(
                allow_negative=allow_negative,
                initial_capacity=capacity if capacity is not None else 8,
            ),
            False,
        )
    if capacity is None:
        raise CapacityError(
            f"backend {name!r} with {keys!r} keys requires a capacity"
        )
    if name == "flat":
        if track_freq_index:
            raise CapacityError(
                "the flat backend keeps no frequency index; use "
                "backend='exact' with track_freq_index=True"
            )
        return (
            FlatProfile(
                capacity,
                allow_negative=allow_negative,
                array_engine=bool(array_engine),
            ),
            keys == "hashable",
        )
    if name == "exact":
        return (
            SProfile(
                capacity,
                allow_negative=allow_negative,
                track_freq_index=track_freq_index,
            ),
            False,
        )
    if name == "sharded":
        return (
            ShardedProfiler(
                capacity,
                n_shards=shards if shards is not None else 4,
                allow_negative=allow_negative,
                track_freq_index=track_freq_index,
                core="flat" if not track_freq_index else "sprofile",
            ),
            keys == "hashable",
        )
    if name == "parallel":
        if track_freq_index:
            raise CapacityError(
                "the parallel backend hosts flat shard cores (no "
                "frequency index); use backend='exact' with "
                "track_freq_index=True"
            )
        try:
            return (
                ParallelShardedProfiler(
                    capacity,
                    workers=(
                        workers if workers is not None else default_workers()
                    ),
                    allow_negative=allow_negative,
                ),
                keys == "hashable",
            )
        except OSError:
            if backend == "auto" and workers is None:
                # Capacity-triggered escalation must never turn a
                # plain Profiler.open(m) into a hard failure: a
                # constrained /dev/shm (64MB in default Docker) or an
                # exhausted process table degrades back to the
                # single-core flat engine the caller would have gotten
                # before escalation existed.
                return (
                    FlatProfile(capacity, allow_negative=allow_negative),
                    keys == "hashable",
                )
            raise
    if name in available_profilers():
        return (
            make_profiler(name, capacity, allow_negative=allow_negative),
            keys == "hashable",
        )
    raise CapacityError(
        f"unknown backend {name!r}; choose from {available_backends()}"
    )


# ----------------------------------------------------------------------
# Run-walk adapters
# ----------------------------------------------------------------------


class _ProfileRunsView:
    """Descending run walk over a single dense-id profile.

    Serves both block-structured cores — :class:`SProfile` (block
    objects) and :class:`FlatProfile` (struct-of-arrays) — through the
    shared ``_ttof`` + ``blocks`` read contract.
    """

    __slots__ = ("_p", "_decode")

    def __init__(self, profile: SProfile | FlatProfile, decode=None) -> None:
        self._p = profile
        self._decode = decode

    @property
    def size(self) -> int:
        return self._p.capacity

    @property
    def total(self) -> int:
        return self._p.total

    def frequency(self, obj) -> int:
        return self._p.frequency(obj)

    def iter_runs_desc(self) -> Iterator[Run]:
        ttof = self._p._ttof
        decode = self._decode
        for block in self._p.blocks.iter_blocks_desc():
            l, r, f = block.l, block.r, block.f

            def head(limit, l=l, r=r):
                stop = l - 1 if limit is None else max(l - 1, r - limit)
                objs = [int(ttof[rank]) for rank in range(r, stop, -1)]
                return [decode(o) for o in objs] if decode else objs

            def tail(limit, l=l, r=r):
                stop = r + 1 if limit is None else min(r + 1, l + limit)
                objs = ttof[l:stop]
                # ndarray slice (array-engine profiles) -> int list.
                if hasattr(objs, "tolist"):
                    objs = objs.tolist()
                return [decode(o) for o in objs] if decode else objs

            yield Run(f, r - l + 1, head, tail)


class _DynamicRunsView:
    """Run walk over a :class:`DynamicProfiler`'s logical universe.

    Phantom slots (pre-allocated, never registered) all live in the
    zero-frequency block; the walk subtracts them from that run's count
    and filters them out of object enumeration, exactly as the
    profiler's own queries do.
    """

    __slots__ = ("_p",)

    def __init__(self, profiler: DynamicProfiler) -> None:
        self._p = profiler

    @property
    def size(self) -> int:
        return len(self._p)

    @property
    def total(self) -> int:
        return self._p.total

    def frequency(self, obj) -> int:
        return self._p.frequency(obj)

    def iter_runs_desc(self) -> Iterator[Run]:
        p = self._p
        size = len(p)
        phantoms = p.phantom_count
        inner = p.profile
        ttof = inner._ttof
        external = p.external

        for block in inner.blocks.iter_blocks_desc():
            l, r, f = block.l, block.r, block.f
            count = r - l + 1
            if f == 0:
                count -= phantoms
                if count <= 0:
                    continue

            def head(limit, l=l, r=r):
                out = []
                for rank in range(r, l - 1, -1):
                    dense = ttof[rank]
                    if dense >= size:
                        continue
                    out.append(external(dense))
                    if limit is not None and len(out) == limit:
                        break
                return out

            def tail(limit, l=l, r=r):
                out = []
                for rank in range(l, r + 1):
                    dense = ttof[rank]
                    if dense >= size:
                        continue
                    out.append(external(dense))
                    if limit is not None and len(out) == limit:
                        break
                return out

            yield Run(f, count, head, tail)


class _ShardedRunsView:
    """Merged descending run walk over a :class:`ShardedProfiler`.

    Per-shard block walks are heap-merged by ``(-f, shard)`` and equal
    frequencies grouped into one run, so the whole walk touches each
    shard's block set exactly once — O(n_shards + total blocks), the
    same bound as one merged histogram.  Object enumeration follows
    shard order inside a run, matching the tie order of the profiler's
    own ``top_k`` heap merge.
    """

    __slots__ = ("_p", "_decode")

    def __init__(self, profiler: ShardedProfiler, decode=None) -> None:
        self._p = profiler
        self._decode = decode

    @property
    def size(self) -> int:
        return self._p.capacity

    @property
    def total(self) -> int:
        return self._p.total

    def frequency(self, obj) -> int:
        return self._p.frequency(obj)

    def _shard_runs(self, s: int, shard: SProfile):
        for block in shard.blocks.iter_blocks_desc():
            yield (-block.f, s, block, shard)

    def iter_runs_desc(self) -> Iterator[Run]:
        p = self._p
        n_shards = p.n_shards
        decode = self._decode
        streams = [
            self._shard_runs(s, shard)
            for s, shard in enumerate(p.shards)
            if shard.capacity
        ]
        merged = _heap_merge(*streams)
        pending = None  # (f, [(s, shard, block), ...])
        for neg_f, s, block, shard in merged:
            f = -neg_f
            if pending is None or pending[0] != f:
                if pending is not None:
                    yield self._make_run(pending, n_shards, decode)
                pending = (f, [(s, shard, block)])
            else:
                pending[1].append((s, shard, block))
        if pending is not None:
            yield self._make_run(pending, n_shards, decode)

    @staticmethod
    def _make_run(pending, n_shards: int, decode) -> Run:
        f, contributors = pending
        count = sum(
            block.r - block.l + 1 for _, _, block in contributors
        )

        def head(limit):
            out = []
            for s, shard, block in contributors:
                ttof = shard._ttof
                for rank in range(block.r, block.l - 1, -1):
                    obj = int(ttof[rank]) * n_shards + s
                    out.append(decode(obj) if decode else obj)
                    if limit is not None and len(out) == limit:
                        return out
            return out

        def tail(limit):
            out = []
            for s, shard, block in contributors:
                ttof = shard._ttof
                for rank in range(block.l, block.r + 1):
                    obj = int(ttof[rank]) * n_shards + s
                    out.append(decode(obj) if decode else obj)
                    if limit is not None and len(out) == limit:
                        return out
            return out

        return Run(f, count, head, tail)


def runs_view_for(impl, decode=None):
    """The fused-walk adapter for ``impl``, or ``None`` if it has no
    block structure to walk (baselines, sketches)."""
    if isinstance(impl, (SProfile, FlatProfile)):
        return _ProfileRunsView(impl, decode)
    if isinstance(impl, ShardedProfiler):
        return _ShardedRunsView(impl, decode)
    if isinstance(impl, ParallelShardedProfiler):
        # Barrier first, then walk the parent-side merged engine over
        # the zero-copy shared-memory shard views — the fused plan
        # never round-trips to the workers.
        return _ShardedRunsView(impl.merged_view(), decode)
    if isinstance(impl, DynamicProfiler):
        return _DynamicRunsView(impl)
    return None


# ----------------------------------------------------------------------
# Approximate backend
# ----------------------------------------------------------------------


class ApproxProfiler:
    """Sublinear-space backend: Count-Min estimates + SpaceSaving ranks.

    Add-only (sketch summaries cannot un-count evictions); a batch with
    net-negative deltas is rejected before anything is counted.
    Guarantees, for ``N`` ingested events:

    - ``frequency(x)`` never underestimates and overestimates by at
      most ``eps * N`` with probability ``1 - delta``;
    - every true phi-heavy hitter appears in ``heavy_hitters(phi)``
      when ``counters >= 1/phi``;
    - ``top_k``/``mode`` estimates overestimate by at most
      ``N / counters``.

    Parameters
    ----------
    counters:
        SpaceSaving monitor slots (the ``k`` of the sketch paper).
    eps / delta:
        Count-Min additive-error target: error ``<= eps * N`` with
        probability ``>= 1 - delta``.
    seed:
        Hash-family seed (fixed default for reproducibility).
    """

    name = "approx"
    SUPPORTED_QUERIES = frozenset(
        {"frequency", "mode", "top_k", "heavy_hitters"}
    )

    def __init__(
        self,
        *,
        counters: int = 256,
        eps: float = 0.001,
        delta: float = 1e-4,
        seed: int | None = 0,
    ) -> None:
        # Imported lazily so the exact backends never pay the numpy
        # import; the sketch is the only numpy consumer in the facade.
        from repro.approx.countmin import CountMinSketch
        from repro.approx.spacesaving import SpaceSaving

        if counters <= 0:
            raise CapacityError(f"counters must be positive, got {counters}")
        self._sketch = CountMinSketch.from_error(eps, delta, seed=seed)
        self._summary = SpaceSaving(counters)
        self._counters = counters
        self._n_adds = 0
        self._bind_obs(None)

    def _bind_obs(self, obs) -> None:
        """Bind the observed-error gauges (see ``_refresh_obs``)."""
        from repro.obs.registry import resolve_registry

        self._obs = resolve_registry(obs)
        self._obs_error_bound = self._obs.gauge(
            "approx.countmin.error_bound"
        )
        self._obs_eps = self._obs.gauge("approx.countmin.eps_estimate")
        self._obs_overcount = self._obs.gauge(
            "approx.spacesaving.max_overcount"
        )

    def _refresh_obs(self) -> None:
        """Publish the sketches' *observed* error state.

        ``error_bound`` is the Count-Min additive bound at the current
        stream length (``~eps * N``); ``eps_estimate`` is that bound
        normalized by ``N`` — the epsilon this width actually
        delivers; ``max_overcount`` is SpaceSaving's realized
        worst-case inflation.  Together they seed the ROADMAP's
        accuracy-trajectory item: error is scrapeable live, not only a
        committed bench artifact.
        """
        bound = self._sketch.error_bound()
        self._obs_error_bound.set(round(bound, 6))
        n = self._n_adds
        self._obs_eps.set(round(bound / n, 9) if n else 0.0)
        self._obs_overcount.set(self._summary.max_overcount())

    # -- ingestion -----------------------------------------------------

    def apply(self, deltas) -> int:
        """Apply coalesced deltas; every net delta must be >= 0."""
        net = net_deltas(deltas)
        for obj, d in net.items():
            if d < 0:
                raise CapacityError(
                    f"approx backend is add-only; got net delta {d} "
                    f"for {obj!r}"
                )
        n = 0
        summary_add = self._summary.add
        for obj, d in net.items():
            if d == 0:
                continue
            self._sketch.add(obj, d)
            summary_add(obj, d)
            n += d
        self._n_adds += n
        if self._obs.enabled:
            self._refresh_obs()
        return n

    # -- queries -------------------------------------------------------

    def frequency(self, obj: Hashable) -> int:
        return self._sketch.estimate(obj)

    def top_k(self, k: int) -> list[TopEntry]:
        return self._summary.top_k(k)

    def mode(self) -> ModeResult:
        top = self._summary.top_k(1)
        if not top:
            raise EmptyProfileError("no events ingested")
        return ModeResult(
            frequency=top[0].frequency, count=None, example=top[0].obj
        )

    def heavy_hitters(self, phi: float) -> list[TopEntry]:
        return self._summary.heavy_hitters(phi)

    # Queries a sketch pair cannot answer — same loud failure contract
    # as the baselines (ProfilerBase) so the facade stays uniform.

    def least(self) -> ModeResult:
        raise UnsupportedQueryError(self.name, "least")

    def max_frequency(self) -> int:
        raise UnsupportedQueryError(self.name, "max_frequency")

    def min_frequency(self) -> int:
        raise UnsupportedQueryError(self.name, "min_frequency")

    def kth_most_frequent(self, k: int) -> TopEntry:
        raise UnsupportedQueryError(self.name, "kth_most_frequent")

    def median_frequency(self) -> int:
        raise UnsupportedQueryError(self.name, "median")

    def quantile(self, q: float) -> int:
        raise UnsupportedQueryError(self.name, "quantile")

    def histogram(self) -> list[tuple[int, int]]:
        raise UnsupportedQueryError(self.name, "histogram")

    def support(self, f: int) -> int:
        raise UnsupportedQueryError(self.name, "support")

    def error_bound(self) -> float:
        """Current Count-Min additive error bound (``~eps * N``)."""
        return self._sketch.error_bound()

    # -- checkpointing -------------------------------------------------

    def to_state(self) -> dict:
        """Both sketches plus counters as one JSON-safe dict.

        JSON-safe whenever the ingested keys are (ints, strings); the
        Count-Min hash family ships with the state, so integer-keyed
        estimates restore bit-identically in any process — see
        :meth:`repro.approx.countmin.CountMinSketch.to_state` for the
        hash-randomization caveat on string keys.
        """
        return {
            "kind": "approx",
            "counters": self._counters,
            "n_adds": self._n_adds,
            "sketch": self._sketch.to_state(),
            "summary": self._summary.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ApproxProfiler":
        """Rebuild from :meth:`to_state` output (audited)."""
        from repro.approx.countmin import CountMinSketch
        from repro.approx.spacesaving import SpaceSaving
        from repro.errors import CheckpointError

        if not isinstance(state, dict):
            raise CheckpointError(
                f"approx state must be a dict, got {type(state).__name__}"
            )
        missing = {"counters", "n_adds", "sketch", "summary"} - state.keys()
        if missing:
            raise CheckpointError(
                f"approx state is missing keys: {sorted(missing)}"
            )
        counters, n_adds = state["counters"], state["n_adds"]
        if not isinstance(counters, int) or counters <= 0:
            raise CheckpointError(f"bad counters: {counters!r}")
        if not isinstance(n_adds, int) or n_adds < 0:
            raise CheckpointError(f"bad n_adds: {n_adds!r}")
        sketch = CountMinSketch.from_state(state["sketch"])
        # The sketch class itself allows turnstile (negative) cells;
        # this backend is add-only, where every counter is a sum of
        # non-negative masses — a negative cell can only be tampering
        # and would surface as a negative frequency estimate.
        if int(sketch._table.min()) < 0:
            raise CheckpointError(
                "sketch table holds negative counters (approx backend "
                "is add-only)"
            )
        summary = SpaceSaving.from_state(state["summary"])
        if summary.k != counters:
            raise CheckpointError(
                f"summary holds {summary.k} counters but {counters} "
                f"are declared"
            )
        # Every net add lands in both structures, so the three event
        # counters must agree.
        if sketch.total != n_adds or summary.n_events != n_adds:
            raise CheckpointError(
                f"event counters disagree: sketch {sketch.total}, "
                f"summary {summary.n_events}, declared {n_adds}"
            )
        profiler = cls.__new__(cls)
        profiler._sketch = sketch
        profiler._summary = summary
        profiler._counters = counters
        profiler._n_adds = n_adds
        profiler._bind_obs(None)
        return profiler

    def guaranteed_count(self, obj: Hashable) -> int:
        """Certain lower bound on the true count of ``obj``."""
        return self._summary.guaranteed_count(obj)

    # -- accounting ----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Monitored-slot budget (the universe is unbounded)."""
        return self._counters

    @property
    def total(self) -> int:
        return self._sketch.total

    @property
    def n_adds(self) -> int:
        return self._n_adds

    @property
    def n_removes(self) -> int:
        return 0

    @property
    def n_events(self) -> int:
        return self._n_adds

    @property
    def allow_negative(self) -> bool:
        return False

    def __repr__(self) -> str:
        return (
            f"ApproxProfiler(counters={self._counters}, "
            f"events={self._n_adds}, {self._sketch!r})"
        )
