"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.baselines.bucket import BucketProfiler
from repro.core.profile import SProfile


@pytest.fixture
def cpu_budget() -> int:
    """Cores the machine can actually host workers on; parallel tests
    gate their scaling (never their equivalence) assertions on it."""
    return os.cpu_count() or 1


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_profile() -> SProfile:
    """A capacity-8 profile preloaded with a known event history.

    Final frequencies: obj 1 -> 3, obj 2 -> 1, obj 3 -> 1, obj 4 -> -1,
    objects 0, 5, 6, 7 -> 0.
    """
    profile = SProfile(8)
    for x in (1, 1, 3, 1, 2):
        profile.add(x)
    profile.remove(4)
    return profile


def apply_random_events(
    profilers, rng: random.Random, capacity: int, count: int, p_add: float = 0.7
) -> None:
    """Drive the same random event sequence into several profilers."""
    for _ in range(count):
        x = rng.randrange(capacity)
        is_add = rng.random() < p_add
        for profiler in profilers:
            profiler.update(x, is_add)


@pytest.fixture
def paired_with_oracle(rng):
    """Factory: (SProfile, BucketProfiler) after `count` random events."""

    def build(capacity: int, count: int, **kwargs):
        profile = SProfile(capacity, **kwargs)
        oracle = BucketProfiler(capacity)
        apply_random_events([profile, oracle], rng, capacity, count)
        return profile, oracle

    return build
