"""Unit tests for ObjectInterner."""

import pytest

from repro.core.interner import ObjectInterner
from repro.errors import UnknownObjectError


class TestInterner:
    def test_dense_ids_are_sequential(self):
        interner = ObjectInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0  # idempotent

    def test_lookup_known(self):
        interner = ObjectInterner()
        interner.intern("x")
        assert interner.lookup("x") == 0

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnknownObjectError):
            ObjectInterner().lookup("missing")

    def test_get_does_not_register(self):
        interner = ObjectInterner()
        assert interner.get("y") is None
        assert len(interner) == 0

    def test_external_roundtrip(self):
        interner = ObjectInterner()
        for obj in ("a", 42, ("t", 1)):
            dense = interner.intern(obj)
            assert interner.external(dense) == obj

    def test_external_out_of_range(self):
        interner = ObjectInterner()
        interner.intern("a")
        with pytest.raises(UnknownObjectError):
            interner.external(1)
        with pytest.raises(UnknownObjectError):
            interner.external(-1)

    def test_contains_and_len(self):
        interner = ObjectInterner()
        interner.intern("a")
        assert "a" in interner
        assert "b" not in interner
        assert len(interner) == 1

    def test_iter_in_registration_order(self):
        interner = ObjectInterner()
        for obj in ("c", "a", "b"):
            interner.intern(obj)
        assert list(interner) == ["c", "a", "b"]

    def test_items(self):
        interner = ObjectInterner()
        interner.intern("x")
        interner.intern("y")
        assert list(interner.items()) == [("x", 0), ("y", 1)]

    def test_mixed_hashable_types(self):
        interner = ObjectInterner()
        # Note 1 == True in Python; distinct objects must be distinct keys.
        a = interner.intern("1")
        b = interner.intern(1)
        assert a != b

    def test_repr(self):
        assert "ObjectInterner" in repr(ObjectInterner())
