"""Event vocabulary for log streams.

A log stream is a sequence of tuples ``(x_i, c_i)`` where ``x_i`` is an
object id and ``c_i`` an action — "add" or "remove" (paper section 2).
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple

__all__ = ["Action", "Event"]


class Action(Enum):
    """The two actions a log-stream tuple can carry."""

    ADD = "add"
    REMOVE = "remove"

    @property
    def opposite(self) -> "Action":
        """The inverse action (used by sliding-window expiry, §2.3)."""
        return Action.REMOVE if self is Action.ADD else Action.ADD

    @property
    def is_add(self) -> bool:
        return self is Action.ADD

    @classmethod
    def from_flag(cls, is_add: bool) -> "Action":
        return cls.ADD if is_add else cls.REMOVE

    def __str__(self) -> str:
        return self.value


class Event(NamedTuple):
    """One log-stream tuple ``(x, c)``."""

    obj: int
    action: Action

    @property
    def is_add(self) -> bool:
        return self.action is Action.ADD

    def opposite(self) -> "Event":
        """The same object with the inverse action."""
        return Event(self.obj, self.action.opposite)
