"""Unit tests for the engine layer: ShardedProfiler and ProfileService.

ProfileService is a deprecation shim (superseded by repro.api.Profiler);
this module exercises the shim deliberately, so its warnings are
filtered here and asserted explicitly in TestServiceDeprecation.
"""

import random
import warnings

import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:ProfileService is deprecated:DeprecationWarning"
)

from repro.core.profile import SProfile
from repro.engine.service import ProfileService
from repro.engine.sharding import ShardedProfiler
from repro.errors import (
    CapacityError,
    CheckpointError,
    EmptyProfileError,
    FrequencyUnderflowError,
)
from repro.streams.events import Action, Event


def _random_pair(capacity, n_shards, n_events, seed=0, **kwargs):
    """(ShardedProfiler, SProfile) fed the same random event stream."""
    rng = random.Random(seed)
    sharded = ShardedProfiler(capacity, n_shards=n_shards, **kwargs)
    single = SProfile(capacity, **kwargs)
    for _ in range(n_events):
        x = rng.randrange(capacity)
        is_add = rng.random() < 0.7
        sharded.update(x, is_add)
        single.update(x, is_add)
    return sharded, single


class TestShardedPartition:
    def test_shard_capacities_tile_the_universe(self):
        profiler = ShardedProfiler(10, n_shards=3)
        assert [s.capacity for s in profiler.shards] == [4, 3, 3]
        assert profiler.capacity == 10

    def test_shard_of(self):
        profiler = ShardedProfiler(10, n_shards=3)
        assert [profiler.shard_of(x) for x in range(6)] == [0, 1, 2, 0, 1, 2]
        with pytest.raises(CapacityError):
            profiler.shard_of(10)

    def test_more_shards_than_objects(self):
        profiler = ShardedProfiler(2, n_shards=8)
        profiler.add(0)
        profiler.add(1)
        assert profiler.max_frequency() == 1
        assert profiler.frequencies() == [1, 1]

    def test_bad_construction(self):
        with pytest.raises(CapacityError):
            ShardedProfiler(-1)
        with pytest.raises(CapacityError):
            ShardedProfiler(4, n_shards=0)

    def test_empty_universe_queries_raise(self):
        profiler = ShardedProfiler(0, n_shards=2)
        with pytest.raises(EmptyProfileError):
            profiler.mode()
        with pytest.raises(EmptyProfileError):
            profiler.median_frequency()


class TestShardedQueries:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 8])
    def test_agrees_with_single_profile(self, n_shards):
        sharded, single = _random_pair(50, n_shards, 600, seed=n_shards)
        freqs = single.frequencies()
        sorted_freqs = sorted(freqs)
        assert sharded.frequencies() == freqs
        assert sharded.total == single.total
        assert sharded.n_events == single.n_events
        assert sharded.active_count == single.active_count
        assert sharded.max_frequency() == max(freqs)
        assert sharded.min_frequency() == min(freqs)
        assert sharded.median_frequency() == sorted_freqs[(50 - 1) // 2]
        assert sharded.histogram() == single.histogram()
        top = sharded.top_k(10)
        assert [e.frequency for e in top] == sorted_freqs[::-1][:10]
        assert all(freqs[e.obj] == e.frequency for e in top)
        sharded.audit()

    def test_mode_merges_tie_counts_across_shards(self):
        profiler = ShardedProfiler(6, n_shards=3)
        profiler.add_many([0, 1, 2])  # one object per shard at freq 1
        mode = profiler.mode()
        assert mode.frequency == 1
        assert mode.count == 3
        assert mode.example in (0, 1, 2)

    def test_least_merges_tie_counts_across_shards(self):
        profiler = ShardedProfiler(4, n_shards=2)
        profiler.add_many([0, 1, 2, 3])
        least = profiler.least()
        assert least.frequency == 1
        assert least.count == 4

    def test_kth_and_rank_queries(self):
        profiler = ShardedProfiler(5, n_shards=2)
        profiler.apply({0: 5, 1: 3, 2: 1})
        assert profiler.kth_most_frequent(1).obj == 0
        assert profiler.kth_most_frequent(2).obj == 1
        assert profiler.frequency_at_rank(4) == 5
        assert profiler.frequency_at_rank(0) == 0
        assert profiler.quantile(1.0) == 5
        with pytest.raises(CapacityError):
            profiler.kth_most_frequent(6)
        with pytest.raises(CapacityError):
            profiler.frequency_at_rank(5)

    def test_support_and_objects_with_frequency(self):
        profiler = ShardedProfiler(8, n_shards=3)
        profiler.apply({0: 2, 1: 2, 5: 2, 7: 1})
        assert profiler.support(2) == 3
        assert sorted(profiler.objects_with_frequency(2)) == [0, 1, 5]
        assert len(profiler.objects_with_frequency(2, limit=2)) == 2
        assert profiler.support(9) == 0

    def test_heavy_hitters_use_global_total(self):
        profiler = ShardedProfiler(6, n_shards=2)
        profiler.apply({0: 8, 1: 1, 2: 1})
        hitters = profiler.heavy_hitters(0.5)
        assert [(e.obj, e.frequency) for e in hitters] == [(0, 8)]

    def test_majority(self):
        profiler = ShardedProfiler(4, n_shards=2)
        profiler.apply({1: 5, 2: 1})
        assert profiler.majority() == 1
        profiler.apply({2: 4})
        assert profiler.majority() is None

    def test_iter_sorted_is_globally_ascending(self):
        sharded, single = _random_pair(30, 4, 300, seed=9)
        walked = [e.frequency for e in sharded.iter_sorted()]
        assert walked == sorted(single.frequencies())

    def test_snapshot_matches_merged_state(self):
        sharded, single = _random_pair(30, 4, 300, seed=4)
        snap = sharded.snapshot()
        assert sorted(snap.frequencies()) == sorted(single.frequencies())
        assert snap.total == single.total
        assert snap.n_events == single.n_events


class TestShardedUpdates:
    def test_strict_underflow_routes_to_shard(self):
        profiler = ShardedProfiler(6, n_shards=3, allow_negative=False)
        profiler.add(4)
        profiler.remove(4)
        with pytest.raises(FrequencyUnderflowError):
            profiler.remove(4)

    def test_strict_batch_reject_leaves_every_shard_untouched(self):
        profiler = ShardedProfiler(6, n_shards=3, allow_negative=False)
        profiler.add_many([0, 1, 2, 3, 4, 5])
        before = profiler.frequencies()
        # Key 4's shard would underflow; keys on other shards are legal.
        with pytest.raises(FrequencyUnderflowError):
            profiler.remove_many([0, 1, 4, 4])
        assert profiler.frequencies() == before
        profiler.audit()

    def test_consume_arrays_mismatch(self):
        profiler = ShardedProfiler(4, n_shards=2)
        with pytest.raises(CapacityError):
            profiler.consume_arrays([1, 2], [True])

    def test_clear(self):
        profiler = ShardedProfiler(6, n_shards=2)
        profiler.add_many([0, 1, 2, 3])
        profiler.clear()
        assert profiler.total == 0
        assert profiler.frequencies() == [0] * 6
        assert profiler.n_events == 0

    def test_batch_and_per_event_agree(self):
        batched = ShardedProfiler(20, n_shards=3)
        looped = ShardedProfiler(20, n_shards=3)
        xs = [1, 1, 19, 4, 4, 4, 0]
        batched.add_many(xs)
        for x in xs:
            looped.add(x)
        batched.remove_many([4, 1])
        looped.remove(4)
        looped.remove(1)
        assert batched.frequencies() == looped.frequencies()
        batched.audit()


class TestProfileService:
    def test_submit_mixed_event_shapes(self):
        service = ProfileService(capacity=10, n_shards=2)
        n = service.submit(
            [Event(1, Action.ADD), (1, Action.ADD), (2, True), (3, False)]
        )
        assert n == 4
        assert service.frequency(1) == 2
        assert service.frequency(3) == -1
        assert service.batches_ingested == 1
        assert service.events_ingested == 4

    def test_submit_counts_raw_events_but_applies_net(self):
        service = ProfileService(capacity=4, n_shards=2)
        n = service.submit([(0, True), (0, False), (1, True)])
        assert n == 1  # the add/remove pair for key 0 cancelled
        assert service.events_ingested == 3
        assert service.profiler.n_events == 1

    def test_submit_arrays(self):
        service = ProfileService(capacity=4, n_shards=2)
        service.submit_arrays([0, 1, 1], [True, True, True])
        assert service.frequency(1) == 2
        with pytest.raises(CapacityError):
            service.submit_arrays([0], [True, False])

    def test_query_delegation(self):
        service = ProfileService(capacity=6, n_shards=3)
        service.submit([(0, True)] * 3 + [(1, True)])
        assert service.mode().example == 0
        assert service.top_k(1)[0].frequency == 3
        assert service.least().frequency == 0
        assert service.median_frequency() == 0
        assert service.quantile(1.0) == 3
        assert service.support(3) == 1
        assert service.histogram() == [(0, 4), (1, 1), (3, 1)]
        assert service.heavy_hitters(0.5)[0].obj == 0
        assert service.total == 4

    def test_snapshot(self):
        service = ProfileService(capacity=4, n_shards=2)
        service.submit([(0, True), (0, True), (3, True)])
        snap = service.snapshot()
        service.submit([(1, True)] * 10)
        assert snap.total == 3  # frozen before the second batch
        assert sorted(snap.frequencies()) == [0, 0, 1, 2]


class TestServiceCheckpoint:
    def _service(self):
        service = ProfileService(capacity=11, n_shards=3)
        service.submit([(x % 11, True) for x in range(40)])
        service.submit([(5, False), (6, False)])
        return service

    def test_round_trip_state(self):
        service = self._service()
        restored = ProfileService.from_state(service.to_state())
        assert restored.profiler.frequencies() == (
            service.profiler.frequencies()
        )
        assert restored.n_shards == service.n_shards
        assert restored.batches_ingested == service.batches_ingested
        assert restored.events_ingested == service.events_ingested
        assert restored.histogram() == service.histogram()

    def test_round_trip_file(self, tmp_path):
        service = self._service()
        path = tmp_path / "service.json"
        service.save(path)
        restored = ProfileService.load(path)
        assert restored.profiler.frequencies() == (
            service.profiler.frequencies()
        )

    def test_restored_service_keeps_ingesting(self):
        restored = ProfileService.from_state(self._service().to_state())
        before = restored.frequency(5)
        restored.submit([(5, True), (5, True)])
        assert restored.frequency(5) == before + 2
        restored.profiler.audit()

    def test_missing_keys_rejected(self):
        state = self._service().to_state()
        del state["shards"]
        with pytest.raises(CheckpointError):
            ProfileService.from_state(state)

    def test_version_mismatch_rejected(self):
        state = self._service().to_state()
        state["version"] = 99
        with pytest.raises(CheckpointError):
            ProfileService.from_state(state)

    def test_wrong_shard_count_rejected(self):
        state = self._service().to_state()
        state["shards"] = state["shards"][:-1]
        with pytest.raises(CheckpointError):
            ProfileService.from_state(state)

    def test_tampered_shard_rejected(self):
        state = self._service().to_state()
        state["shards"][0]["runs"][0][2] += 1_000_000
        with pytest.raises(CheckpointError):
            ProfileService.from_state(state)

    def test_shard_capacity_mismatch_rejected(self):
        state = self._service().to_state()
        state["capacity"] = 12  # partition arithmetic no longer matches
        with pytest.raises(CheckpointError):
            ProfileService.from_state(state)

    def test_corrupt_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            ProfileService.load(path)


class TestServiceCheckpointTypeTampering:
    def _state(self):
        service = ProfileService(capacity=6, n_shards=2)
        service.submit([(1, True), (2, True)])
        return service.to_state()

    @pytest.mark.parametrize(
        "key,value",
        [
            ("capacity", "10"),
            ("capacity", -1),
            ("n_shards", "2"),
            ("shards", "oops"),
            ("batches", "3"),
            ("events", -4),
        ],
    )
    def test_wrong_types_raise_checkpoint_error(self, key, value):
        state = self._state()
        state[key] = value
        with pytest.raises(CheckpointError):
            ProfileService.from_state(state)

    def test_mixed_allow_negative_rejected(self):
        state = self._state()
        state["shards"][0]["allow_negative"] = False
        with pytest.raises(CheckpointError):
            ProfileService.from_state(state)


class TestServiceDeprecation:
    """ProfileService is a shim: it must warn exactly at legacy entry
    points and keep answering correctly afterwards."""

    def test_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api.Profiler"):
            ProfileService(capacity=4, n_shards=2)

    def test_from_state_warns_once(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            state = ProfileService(capacity=4, n_shards=2).to_state()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ProfileService.from_state(state)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_shim_still_answers(self):
        service = ProfileService(capacity=6, n_shards=2)
        service.submit([(1, True), (1, True), (2, True)])
        assert service.mode().example == 1
        assert service.frequency(2) == 1

    def test_facade_does_not_warn(self):
        from repro.api import Profiler

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            profiler = Profiler.open(8, backend="sharded", shards=2)
            profiler.ingest([(1, True), (2, False)])
            profiler.mode()


class TestFlatShardCores:
    def test_flat_cores_match_sprofile_cores(self):
        rng = random.Random(9)
        flat_cores = ShardedProfiler(30, n_shards=4, core="flat")
        block_cores = ShardedProfiler(30, n_shards=4, core="sprofile")
        for _ in range(800):
            x = rng.randrange(30)
            is_add = rng.random() < 0.7
            flat_cores.update(x, is_add)
            block_cores.update(x, is_add)
        assert flat_cores.frequencies() == block_cores.frequencies()
        assert flat_cores.histogram() == block_cores.histogram()
        assert flat_cores.mode() == block_cores.mode()
        assert flat_cores.median_frequency() == block_cores.median_frequency()
        assert flat_cores.top_k(7) == block_cores.top_k(7)
        flat_cores.audit()

    def test_flat_cores_batched_paths(self):
        rng = random.Random(4)
        flat_cores = ShardedProfiler(24, n_shards=3, core="flat")
        single = SProfile(24)
        for _ in range(6):
            batch = [rng.randrange(24) for _ in range(rng.randrange(0, 120))]
            assert flat_cores.add_many(batch) == single.add_many(batch)
            deltas = {
                rng.randrange(24): rng.randrange(-3, 4) for _ in range(5)
            }
            assert flat_cores.apply(dict(deltas)) == single.apply(
                dict(deltas)
            )
        assert flat_cores.frequencies() == single.frequencies()
        flat_cores.audit()

    def test_numpy_batch_split(self):
        np = pytest.importorskip("numpy")
        arr = np.array([0, 1, 2, 3, 4, 5, 5, 5], dtype=np.int64)
        for core in ("flat", "sprofile"):
            sharded = ShardedProfiler(6, n_shards=2, core=core)
            assert sharded.add_many(arr) == 8
            assert sharded.frequencies() == [1, 1, 1, 1, 1, 3]
            assert sharded.remove_many(arr[:4]) == 4
            assert sharded.frequencies() == [0, 0, 0, 0, 1, 3]
        bad = np.array([0, 99])
        with pytest.raises(CapacityError):
            ShardedProfiler(6, n_shards=2).add_many(bad)

    def test_strict_remove_many_stays_all_or_nothing(self):
        sharded = ShardedProfiler(
            8, n_shards=2, core="flat", allow_negative=False
        )
        sharded.add_many([0, 1])
        with pytest.raises(FrequencyUnderflowError):
            sharded.remove_many([0, 1, 1])
        assert sharded.frequencies()[:2] == [1, 1]

    def test_core_validation(self):
        with pytest.raises(CapacityError):
            ShardedProfiler(8, core="bogus")
        with pytest.raises(CapacityError):
            ShardedProfiler(8, core="flat", track_freq_index=True)
        assert ShardedProfiler(8, core="flat").core == "flat"
        assert ShardedProfiler(8).core == "sprofile"
