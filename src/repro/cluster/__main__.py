"""Entry point for ``python -m repro.cluster``."""

from repro.cluster.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
