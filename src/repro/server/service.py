"""The profiling service: an asyncio TCP server with micro-batching.

:class:`ProfileServer` hosts one :class:`~repro.api.Profiler` (any
backend) behind the wire protocol of :mod:`repro.server.protocol`.
The write path is a **micro-batching pipeline**:

1. every connection's reader decodes wire batches and enqueues them on
   one bounded :class:`asyncio.Queue` (the bound is the backpressure
   valve — a full queue stops the reader, which stops reading the
   socket, which stalls the sender through TCP flow control);
2. a single flusher task coalesces queued wire batches — up to
   ``batch_max`` events or ``linger_ms`` of waiting, whichever first —
   into **one** engine ``ingest()`` call, so the per-event cost on the
   hot path is the facade's vectorized batch machinery instead of a
   per-request engine transaction;
3. acks are written per request (pipelining clients match them by id),
   but grouped into one socket write per connection per flush.

Coalescing never changes semantics: a :class:`_FlushPlanner` admits
each wire batch against the profiler state *plus the net effect of the
wire batches already admitted in this flush*, exactly reproducing the
outcome of applying the wire batches one ``ingest()`` at a time in
arrival order.  A rejected wire batch is rejected whole (all-or-nothing
per wire batch) and the error goes only to the offending client; every
other batch in the flush still lands.  Each ingest ack carries ``seq``
— the batch's position in this serialization order — so clients (and
the equivalence property tests) can replay the exact history.

Reads (``evaluate`` / ``describe`` / ``checkpoint`` / ``ping``) ride
the same queue, acting as flush barriers: a query observes precisely
the wire batches enqueued before it, i.e. always a consistent batch
boundary, never half a flush.

Shutdown (:meth:`ProfileServer.stop`) is a graceful drain: stop
accepting, stop reading, flush and ack everything already queued, then
close the connections.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.api.backends import ApproxProfiler
from repro.api.facade import Profiler
from repro.core.dynamic import DynamicProfiler
from repro.core.flat import FlatProfile
from repro.core.profile import SProfile, net_deltas
from repro.engine.parallel import ParallelShardedProfiler
from repro.engine.sharding import ShardedProfiler
from repro.errors import (
    CapacityError,
    CheckpointError,
    FrequencyUnderflowError,
    ReproError,
)
from repro.server.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_events,
    decode_queries,
    encode_error,
    encode_value,
    pack_frame,
    read_frame,
)

__all__ = ["ProfileServer", "ServerStats", "ServerThread"]


# ----------------------------------------------------------------------
# Admission control: coalesce without changing semantics
# ----------------------------------------------------------------------


def _resolve_strategy(profiler: Profiler) -> str:
    """How wire batches may be coalesced for this facade.

    - ``dense``: dense-keyed exact engines — validate ids (and strict
      underflows against an overlay) per wire batch, then apply all
      admitted batches as one merged ``ingest``.
    - ``interned`` / ``dynamic``: hashable keys — same overlay scheme
      plus registration/capacity accounting.
    - ``approx``: add-only — a wire batch is admissible iff its own
      net deltas are all non-negative (history-independent).
    - ``sequential``: unknown backends (registry baselines) — no
      coalescing; each wire batch is its own ``ingest`` call, which is
      trivially equivalent.
    """
    impl = profiler.backend
    if isinstance(impl, ApproxProfiler):
        return "approx"
    if getattr(profiler, "_interner", None) is not None:
        return "interned"
    if isinstance(impl, DynamicProfiler):
        return "dynamic"
    if profiler.keys == "dense" and isinstance(
        impl,
        (SProfile, FlatProfile, ShardedProfiler, ParallelShardedProfiler),
    ):
        return "dense"
    return "sequential"


class _FlushPlanner:
    """Sequential-equivalence admission for one coalesced flush.

    ``admit(pairs)`` either returns the facade's would-be ``ingest``
    return value (net unit events) and folds the batch's net deltas
    into the overlay, or raises exactly the error a direct
    ``Profiler.ingest`` would raise had the admitted batches before it
    already been applied.  After admitting, one merged ``ingest`` of
    all admitted batches produces the same final state as applying
    them one at a time (frequencies are additive; engine validation
    was replayed here per batch, against base state + overlay).
    """

    __slots__ = ("_p", "_strategy", "_overlay", "_fresh")

    def __init__(self, profiler: Profiler, strategy: str) -> None:
        self._p = profiler
        self._strategy = strategy
        self._overlay: dict = {}
        # Fresh hashable keys admitted this flush, in admission order
        # (a dict used as an ordered set).  They must be registered
        # explicitly before the merged ingest: a key whose deltas
        # cancel to zero ACROSS wire batches is dropped by the merged
        # net pass, but sequential application would have registered
        # it (claiming an interned capacity slot / a dynamic universe
        # entry, observable through support(0), len(), capacity
        # accounting).
        self._fresh: dict = {}

    def fresh_keys(self):
        """Admitted never-seen keys, in sequential registration order."""
        return self._fresh.keys()

    def admit(self, pairs: list) -> int:
        net = net_deltas(pairs)
        strategy = self._strategy
        if strategy == "dense":
            self._admit_dense(net)
        elif strategy == "interned":
            self._admit_interned(net)
        elif strategy == "dynamic":
            self._admit_dynamic(net)
        elif strategy == "approx":
            for obj, d in net.items():
                if d < 0:
                    raise CapacityError(
                        f"approx backend is add-only; got net delta {d} "
                        f"for {obj!r}"
                    )
            return sum(net.values())
        overlay = self._overlay
        for obj, d in net.items():
            if d:
                overlay[obj] = overlay.get(obj, 0) + d
        return sum(abs(d) for d in net.values())

    def _shifted(self, obj) -> int:
        """Current frequency as the admitted batches would have left it."""
        return self._p.frequency(obj) + self._overlay.get(obj, 0)

    def _admit_dense(self, net: dict) -> None:
        m = self._p.capacity
        for x in net:
            # Ids arrive protocol-validated as ints; mirror the
            # engines' range check (which applies to net-zero keys too).
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
        if self._p.strict:
            for x, d in net.items():
                if d < 0 and self._shifted(x) + d < 0:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency "
                        f"{self._shifted(x)} {-d} times (net) would go "
                        f"negative"
                    )

    def _admit_interned(self, net: dict) -> None:
        # Mirrors Profiler._encode_interned check-for-check, in the
        # same order (never-seen strict underflow wins over capacity
        # overflow wins over known-key underflow).
        interner = self._p._interner
        strict = self._p.strict
        fresh_new = []
        for obj, d in net.items():
            if d == 0:
                continue
            if interner.get(obj) is None and obj not in self._fresh:
                if strict and d < 0:
                    raise FrequencyUnderflowError(
                        f"cannot remove never-seen object {obj!r} in "
                        f"strict mode"
                    )
                fresh_new.append(obj)
        capacity = self._p.capacity or 0
        claimed = len(interner) + len(self._fresh)
        if claimed + len(fresh_new) > capacity:
            raise CapacityError(
                f"batch registers {len(fresh_new)} new keys but only "
                f"{capacity - claimed} slots remain of {capacity}"
            )
        if strict:
            for obj, d in net.items():
                if d < 0 and self._shifted(obj) + d < 0:
                    raise FrequencyUnderflowError(
                        f"removing object {obj!r} at frequency "
                        f"{self._shifted(obj)} {-d} times (net) would "
                        f"go negative"
                    )
        self._fresh.update(dict.fromkeys(fresh_new))

    def _admit_dynamic(self, net: dict) -> None:
        if not self._p.strict:
            self._fresh.update(
                dict.fromkeys(
                    obj for obj, d in net.items()
                    if d != 0 and obj not in self._p.backend
                )
            )
            return
        impl = self._p.backend
        for obj, d in net.items():
            if d >= 0:
                continue
            if obj not in impl and obj not in self._fresh:
                raise FrequencyUnderflowError(
                    f"cannot remove never-seen object {obj!r} in "
                    f"strict mode"
                )
            if self._shifted(obj) + d < 0:
                raise FrequencyUnderflowError(
                    f"removing object {obj!r} at frequency "
                    f"{self._shifted(obj)} {-d} times (net) would go "
                    f"negative"
                )
        self._fresh.update(
            dict.fromkeys(
                obj for obj, d in net.items()
                if d != 0 and obj not in impl
            )
        )


# ----------------------------------------------------------------------
# Service plumbing
# ----------------------------------------------------------------------


@dataclass
class ServerStats:
    """Service-level counters, exposed in ``describe()['server']``."""

    connections_total: int = 0
    connections_dropped: int = 0
    requests: int = 0
    rejected: int = 0
    wire_batches: int = 0
    wire_events: int = 0
    applied_units: int = 0
    flushes: int = 0
    max_flush_events: int = 0
    queries: int = 0
    checkpoints: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class _Item:
    """One unit of the ordered pipeline."""

    __slots__ = ("kind", "conn", "req_id", "data", "seq")

    def __init__(self, kind, conn, req_id, data=None) -> None:
        self.kind = kind
        self.conn = conn
        self.req_id = req_id
        self.data = data
        self.seq = None


_STOP = _Item("stop", None, None)


class _Connection:
    """One client connection: serialized, timeout-guarded writes."""

    __slots__ = ("server", "reader", "writer", "alive", "lock", "closing")

    def __init__(self, server, reader, writer) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.alive = True
        self.closing = False
        self.lock = asyncio.Lock()

    async def send(self, data: bytes) -> None:
        """Write + drain under the slow-client timeout; abort on stall."""
        if not self.alive:
            return
        async with self.lock:
            if not self.alive:
                return
            try:
                self.writer.write(data)
                await asyncio.wait_for(
                    self.writer.drain(), self.server._write_timeout
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                self.abort()

    def abort(self) -> None:
        """Drop the connection now (slow or broken client)."""
        if not self.alive:
            return
        self.alive = False
        self.server._stats.connections_dropped += 1
        with contextlib.suppress(Exception):
            self.writer.transport.abort()

    async def close(self) -> None:
        """Orderly close (pending acks were already flushed)."""
        self.alive = False
        with contextlib.suppress(Exception):
            self.writer.close()
            await self.writer.wait_closed()


class ProfileServer:
    """Serve one :class:`~repro.api.Profiler` over TCP.

    Parameters
    ----------
    profiler:
        The hosted facade; any backend works (exact backends coalesce,
        see :func:`_resolve_strategy`).
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    batch_max:
        Flush as soon as this many *events* (not wire batches) are
        coalesced.  ``1`` disables micro-batching — every wire batch
        becomes its own engine call (the unbatched baseline of the
        ``serve`` perf trajectory).
    linger_ms:
        How long a non-full flush may wait for more arrivals.  The
        throughput/latency dial: 0 acks as fast as possible, a few ms
        rides the vectorized batch path at light load too.
    queue_size:
        Bound of the ingest queue, in pipeline items; the backpressure
        valve for writers.
    write_timeout:
        Seconds a response write may stall before the client is
        declared slow and dropped (protects the flusher — and every
        other client — from one dead peer).
    max_frame:
        Hard per-frame byte cap (both directions).
    """

    def __init__(
        self,
        profiler: Profiler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_max: int = 512,
        linger_ms: float = 1.0,
        queue_size: int = 4096,
        write_timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        if batch_max < 1:
            raise CapacityError(f"batch_max must be >= 1, got {batch_max}")
        if linger_ms < 0:
            raise CapacityError(f"linger_ms must be >= 0, got {linger_ms}")
        if queue_size < 1:
            raise CapacityError(f"queue_size must be >= 1, got {queue_size}")
        self._profiler = profiler
        self._host = host
        self._bind_port = port
        self._batch_max = batch_max
        self._linger = linger_ms / 1000.0
        self._queue_size = queue_size
        self._write_timeout = write_timeout
        self._max_frame = max_frame
        self._strategy = _resolve_strategy(profiler)
        # Approx sketches take hashable keys natively whatever the
        # facade's keys mode says; every other dense-keyed backend
        # indexes integer arrays, so the protocol enforces int ids.
        self._dense = (
            profiler.keys == "dense" and self._strategy != "approx"
        )
        self._stats = ServerStats()
        self._seq = 0
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._flusher: asyncio.Task | None = None
        self._conns: set[_Connection] = set()
        self._reader_tasks: set[asyncio.Task] = set()
        self._closing = False
        self._stopping = False
        self._stopped: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "ProfileServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stopped = asyncio.Event()
        self._queue = asyncio.Queue(self._queue_size)
        self._flusher = asyncio.create_task(self._flush_loop())
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._bind_port
        )
        return self

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._bind_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def profiler(self) -> Profiler:
        return self._profiler

    @property
    def stats(self) -> ServerStats:
        return self._stats

    @property
    def strategy(self) -> str:
        """The coalescing strategy resolved for the hosted backend."""
        return self._strategy

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful drain: stop reading, flush + ack the queue, close.

        Idempotent; concurrent callers all return once the drain is
        done.  Wire batches already accepted into the queue are
        applied and acked; batches still in a socket buffer are not.
        """
        if self._stopping:
            await self.wait_stopped()
            return
        self._stopping = True
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(
                *self._reader_tasks, return_exceptions=True
            )
        if self._flusher is not None:
            await self._queue.put(_STOP)
            await self._flusher
        for conn in list(self._conns):
            await conn.close()
        self._conns.clear()
        if self._stopped is not None:
            self._stopped.set()

    async def __aenter__(self) -> "ProfileServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- readers -------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        conn = _Connection(self, reader, writer)
        self._conns.add(conn)
        self._stats.connections_total += 1
        task = asyncio.current_task()
        self._reader_tasks.add(task)
        await conn.send(
            pack_frame(
                {
                    "server": "repro.server",
                    "version": PROTOCOL_VERSION,
                    "backend": self._profiler.backend_name,
                    "keys": self._profiler.keys,
                    "strict": self._profiler.strict,
                    "capacity": self._profiler.capacity,
                }
            )
        )
        close_enqueued = False
        try:
            while conn.alive and not self._closing:
                try:
                    msg = await read_frame(reader, self._max_frame)
                except ProtocolError as exc:
                    # Framing is broken — there is no resynchronizing a
                    # length-prefixed stream.  Flush what the client
                    # already has queued, report, close.
                    await self._enqueue(_Item("reject", conn, None, exc))
                    await self._enqueue(_Item("close", conn, None))
                    close_enqueued = True
                    return
                if msg is None:
                    return
                self._stats.requests += 1
                req_id = msg.get("id")
                try:
                    item = self._decode_request(conn, req_id, msg)
                except (ProtocolError, ReproError) as exc:
                    item = _Item("reject", conn, req_id, exc)
                await self._enqueue(item)
                if item.kind == "close":
                    close_enqueued = True
                    return
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # stop() cancels readers; ending the connection task
            # normally keeps asyncio's streams machinery from logging
            # the cancellation as a connection-callback error.
            pass
        finally:
            self._reader_tasks.discard(task)
            if not close_enqueued and not self._stopping:
                # EOF / error: flush this client's pending acks, then
                # close its writer, in pipeline order.
                with contextlib.suppress(asyncio.CancelledError):
                    await self._enqueue(_Item("close", conn, None))

    def _decode_request(self, conn, req_id, msg: dict) -> _Item:
        if not isinstance(req_id, int) or isinstance(req_id, bool):
            raise ProtocolError(
                f"request 'id' must be an integer, got {req_id!r}"
            )
        op = msg.get("op")
        if op == "ingest":
            pairs = decode_events(msg.get("events"), dense=self._dense)
            return _Item("ingest", conn, req_id, pairs)
        if op == "evaluate":
            queries = decode_queries(msg.get("queries"))
            return _Item("evaluate", conn, req_id, queries)
        if op in ("describe", "checkpoint", "ping", "close"):
            return _Item(op, conn, req_id)
        raise ProtocolError(f"unknown op {op!r}")

    async def _enqueue(self, item: _Item) -> None:
        await self._queue.put(item)

    # -- the flusher ---------------------------------------------------

    async def _flush_loop(self) -> None:
        queue = self._queue
        loop = asyncio.get_running_loop()
        batch_max = self._batch_max
        linger = self._linger
        pending: list[_Item] = []
        pending_events = 0
        deadline = 0.0
        item: _Item | None = None
        while True:
            if item is None:
                item = await queue.get()
            if item.kind == "stop":
                await self._flush(pending)
                return
            if item.kind == "ingest":
                if not pending:
                    deadline = loop.time() + linger
                pending.append(item)
                pending_events += len(item.data)
                item = None
                if pending_events < batch_max:
                    try:
                        item = queue.get_nowait()
                        continue
                    except asyncio.QueueEmpty:
                        timeout = deadline - loop.time()
                        if timeout > 0:
                            try:
                                item = await asyncio.wait_for(
                                    queue.get(), timeout
                                )
                                continue
                            except asyncio.TimeoutError:
                                pass
                await self._flush(pending)
                pending = []
                pending_events = 0
            else:
                await self._flush(pending)
                pending = []
                pending_events = 0
                await self._execute(item)
                item = None

    async def _flush(self, batch: list[_Item]) -> None:
        """Apply one coalesced flush and ack every wire batch in it."""
        if not batch:
            return
        stats = self._stats
        stats.flushes += 1
        n_events = sum(len(item.data) for item in batch)
        stats.wire_batches += len(batch)
        stats.wire_events += n_events
        if n_events > stats.max_flush_events:
            stats.max_flush_events = n_events
        profiler = self._profiler
        # Outcomes stay in pipeline order whatever order they were
        # decided in — acks per connection must follow request order
        # (the wire contract; blocking clients rely on it).
        outcomes: list[tuple[_Item, Any]] = [None] * len(batch)
        if self._strategy == "sequential":
            for idx, item in enumerate(batch):
                self._seq += 1
                item.seq = self._seq
                try:
                    outcomes[idx] = (item, profiler.ingest(item.data))
                except Exception as exc:
                    outcomes[idx] = (item, exc)
        else:
            planner = _FlushPlanner(profiler, self._strategy)
            admitted: list[tuple[int, _Item, int]] = []
            for idx, item in enumerate(batch):
                self._seq += 1
                item.seq = self._seq
                try:
                    admitted.append((idx, item, planner.admit(item.data)))
                except Exception as exc:
                    outcomes[idx] = (item, exc)
            if admitted:
                merged: list = []
                for _idx, item, _applied in admitted:
                    merged.extend(item.data)
                try:
                    # Register admitted fresh keys first, in admission
                    # order: the merged net pass drops keys whose
                    # deltas cancel to zero across wire batches, but
                    # sequential application would have registered
                    # them (claiming their interned capacity slot /
                    # universe entry).
                    for obj in planner.fresh_keys():
                        profiler.register(obj)
                    profiler.ingest(merged)
                except Exception:
                    # Planner miss (should not happen): the merged
                    # ingest rejected atomically, so replaying each
                    # admitted batch individually is still exact.
                    for idx, item, _applied in admitted:
                        try:
                            outcomes[idx] = (
                                item, profiler.ingest(item.data)
                            )
                        except Exception as exc:
                            outcomes[idx] = (item, exc)
                else:
                    for idx, item, applied in admitted:
                        outcomes[idx] = (item, applied)
        # One socket write per connection, acks in pipeline order.
        per_conn: dict[_Connection, list[bytes]] = {}
        for item, result in outcomes:
            if isinstance(result, Exception):
                stats.rejected += 1
                frame = pack_frame(
                    {
                        "id": item.req_id,
                        "ok": False,
                        "seq": item.seq,
                        "error": encode_error(result),
                    }
                )
            else:
                stats.applied_units += result
                frame = pack_frame(
                    {
                        "id": item.req_id,
                        "ok": True,
                        "applied": result,
                        "seq": item.seq,
                    }
                )
            per_conn.setdefault(item.conn, []).append(frame)
        for conn, frames in per_conn.items():
            await conn.send(b"".join(frames))

    async def _execute(self, item: _Item) -> None:
        """Run one non-ingest pipeline item (queries, control)."""
        conn = item.conn
        kind = item.kind
        if kind == "close":
            if item.req_id is not None:
                await conn.send(
                    pack_frame(
                        {"id": item.req_id, "ok": True, "closing": True}
                    )
                )
            self._conns.discard(conn)
            await conn.close()
            return
        if kind == "reject":
            self._stats.rejected += 1
            await conn.send(
                pack_frame(
                    {
                        "id": item.req_id,
                        "ok": False,
                        "error": encode_error(item.data),
                    }
                )
            )
            return
        try:
            if kind == "evaluate":
                self._stats.queries += 1
                result = self._profiler.evaluate(*item.data)
                payload = {
                    "id": item.req_id,
                    "ok": True,
                    "seq": self._seq,
                    "values": [
                        encode_value(q.kind, v) for q, v in result
                    ],
                }
            elif kind == "describe":
                info = self._profiler.describe()
                info["server"] = self.describe_server()
                payload = {"id": item.req_id, "ok": True, "info": info}
            elif kind == "checkpoint":
                self._stats.checkpoints += 1
                payload = {
                    "id": item.req_id,
                    "ok": True,
                    "seq": self._seq,
                    "state": self._profiler.to_state(),
                }
            elif kind == "ping":
                payload = {
                    "id": item.req_id,
                    "ok": True,
                    "pong": True,
                    "version": PROTOCOL_VERSION,
                    "seq": self._seq,
                }
            else:  # pragma: no cover - decoder emits no other kinds
                raise ProtocolError(f"unknown pipeline item {kind!r}")
        except Exception as exc:
            self._stats.rejected += 1
            payload = {
                "id": item.req_id,
                "ok": False,
                "error": encode_error(exc),
            }
        await conn.send(pack_frame(payload))

    def describe_server(self) -> dict[str, Any]:
        """The service block of ``describe()``: config + counters."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "strategy": self._strategy,
            "batch_max": self._batch_max,
            "linger_ms": self._linger * 1000.0,
            "queue_size": self._queue_size,
            "write_timeout": self._write_timeout,
            "seq": self._seq,
            "connections_open": len(self._conns),
            **self._stats.as_dict(),
        }


# ----------------------------------------------------------------------
# Blocking-world adapter
# ----------------------------------------------------------------------


class ServerThread:
    """Run a :class:`ProfileServer` on a daemon thread's event loop.

    The bridge for synchronous callers (the blocking
    :class:`~repro.server.client.ProfileClient`, doctests, examples):

    .. code-block:: python

        with ServerThread(Profiler.open(1000)) as server:
            client = ProfileClient(server.host, server.port)

    ``host``/``port`` are set once the server is listening (the
    constructor of the context manager blocks until then); errors
    during startup re-raise in the starting thread.
    """

    def __init__(self, profiler: Profiler, **server_kwargs) -> None:
        self._profiler = profiler
        self._kwargs = server_kwargs
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()),
            name="repro-profile-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error
        return self

    async def _amain(self) -> None:
        try:
            server = ProfileServer(self._profiler, **self._kwargs)
            await server.start()
        except BaseException as exc:  # startup failure -> caller
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.host, self.port = server.host, server.port
        self.server = server
        self._ready.set()
        await self._stop_event.wait()
        await server.stop()

    def stop(self, timeout: float = 10.0) -> None:
        """Request the graceful drain and join the thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
