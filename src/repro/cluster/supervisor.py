"""Replica process lifecycle: spawn, watch, respawn.

:class:`ReplicaSupervisor` turns ``python -m repro.serve`` into the
cluster's replica tier: one subprocess per partition, each serving a
dense non-strict profiler of exactly its partition capacity, each
publishing its bound port through an atomically written port file
(``--port-file``; tmp + rename, so a polling supervisor never reads a
half-written number) and its pid through a pid file (so external
chaos — a CI kill gate, an operator — can target a replica without
asking the supervisor).

The router drives recovery through one duck-typed method:
``await ensure_replica(p)`` returns the partition's current endpoint,
respawning the process first if it has died.  The supervisor never
watches proactively — the router notices a dead replica the instant a
send fails, and whoever notices calls ``ensure_replica``.

Live rescaling runs through **generations**: ``spawn_generation(n)``
boots a complete second replica tier (files named
``replica-g{gen}-{p}.*`` so the current tier's files — which external
chaos targets by name — never move) next to the serving one,
``commit_generation()`` adopts it and retires the old tier, and
``abort_generation()`` tears the staged tier down without a trace.
``reconfigure(n, generation)`` is the boot-time variant: a router
recovering a WAL whose committed layout disagrees with the configured
replica count calls it to rebuild the tier at the durable shape before
serving.

Respawning is rationed: more than ``max_respawn_burst`` respawns of
the *same* partition inside ``respawn_window`` seconds means the
replica is crash-looping — a bad binary, an OOM treadmill, a poisoned
snapshot — and blindly respawning forever converts a config problem
into an invisible availability problem.  The supervisor escalates to a
**sticky** terminal state instead: every further ``ensure_replica``
raises :class:`~repro.errors.ClusterUnhealthyError` (non-retryable)
and the router shuts the tier down rather than keep accepting batches
it cannot deliver.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import CapacityError, ClusterUnhealthyError
from repro.obs.registry import get_registry
from repro.obs.structlog import log_event
from repro.testing.faults import fault_point_sync

__all__ = ["ReplicaSupervisor"]

_log = logging.getLogger("repro.cluster.supervisor")


def _partition_capacity(m: int, p: int, n: int) -> int:
    return (m - p + n - 1) // n


class ReplicaSupervisor:
    """Manage ``n_replicas`` serve subprocesses for one universe.

    Parameters
    ----------
    capacity:
        Global universe size ``m``; replica ``p`` serves
        ``(m - p + n - 1) // n`` ids.
    n_replicas:
        Partition count.
    workdir:
        Directory for port files, pid files and per-replica logs.
    backend:
        Facade backend each replica opens (default ``auto``; use
        ``flat``/``exact`` — the cluster checkpoint assembles only
        single-profile replica states).
    codec:
        ``--codec`` forwarded to every replica (``binary`` offers the
        negotiated binary frame codec; ``json`` forces JSON).
    serve_args:
        Extra ``python -m repro.serve`` flags appended verbatim
        (e.g. ``["--batch-max", "2048"]``).
    boot_timeout:
        Seconds to wait for a (re)spawned replica's port file.
    max_respawn_burst / respawn_window:
        The crash-loop escalation threshold: strictly more than
        ``max_respawn_burst`` respawns of one partition within
        ``respawn_window`` seconds marks the cluster unhealthy —
        terminally (see the module docstring).
    """

    def __init__(
        self,
        capacity: int,
        n_replicas: int,
        *,
        workdir: str | Path,
        host: str = "127.0.0.1",
        backend: str = "auto",
        codec: str = "binary",
        serve_args: list[str] | None = None,
        boot_timeout: float = 30.0,
        python: str = sys.executable,
        max_respawn_burst: int = 5,
        respawn_window: float = 30.0,
    ) -> None:
        if n_replicas < 1:
            raise CapacityError(
                f"n_replicas must be >= 1, got {n_replicas}"
            )
        if capacity < n_replicas:
            raise CapacityError(
                f"capacity {capacity} cannot spread over {n_replicas} "
                f"replicas"
            )
        self._capacity = capacity
        self._n = n_replicas
        self._workdir = Path(workdir)
        self._host = host
        self._backend = backend
        self._codec = codec
        self._serve_args = list(serve_args or ())
        self._boot_timeout = boot_timeout
        self._python = python
        if max_respawn_burst < 1:
            raise CapacityError(
                f"max_respawn_burst must be >= 1, got {max_respawn_burst}"
            )
        self._max_burst = max_respawn_burst
        self._window = respawn_window
        self._procs: list[subprocess.Popen | None] = [None] * n_replicas
        self._ports: list[int | None] = [None] * n_replicas
        self._respawn_times: list[list[float]] = [
            [] for _ in range(n_replicas)
        ]
        self._unhealthy: str | None = None
        self._generation = 0
        self._staged: dict | None = None
        self.respawns = 0

    # -- paths ---------------------------------------------------------

    def _path(self, kind: str, p: int, gen: int) -> Path:
        """Per-replica file path; generation 0 keeps the legacy names.

        The bare ``replica-{p}.*`` names are load-bearing: external
        chaos (the CI kill gate, operators) targets replicas by pid
        file without asking the supervisor, so the serving tier's
        files never move.  Staged/rescaled generations get the
        ``replica-g{gen}-{p}.*`` prefix instead.
        """
        stem = f"replica-{p}" if gen == 0 else f"replica-g{gen}-{p}"
        return self._workdir / f"{stem}.{kind}"

    def port_file(self, p: int) -> Path:
        return self._path("port", p, self._generation)

    def pid_file(self, p: int) -> Path:
        return self._path("pid", p, self._generation)

    def log_file(self, p: int) -> Path:
        return self._path("log", p, self._generation)

    # -- lifecycle -----------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return self._n

    @property
    def endpoints(self) -> list[tuple[str, int]]:
        """Current ``(host, port)`` per partition (after :meth:`start`)."""
        if any(port is None for port in self._ports):
            raise RuntimeError("supervisor not started")
        return [(self._host, port) for port in self._ports]

    async def start(self) -> "ReplicaSupervisor":
        """Spawn every replica and wait until all ports are published."""
        self._workdir.mkdir(parents=True, exist_ok=True)
        for p in range(self._n):
            self._spawn(p)
        for p in range(self._n):
            self._ports[p] = await self._wait_port(p)
        return self

    def _launch(self, p: int, n: int, gen: int) -> subprocess.Popen:
        """Start one serve subprocess for partition ``p`` of an
        ``n``-way generation-``gen`` tier and publish its pid file."""
        fault_point_sync("supervisor.spawn")
        port_file = self._path("port", p, gen)
        port_file.unlink(missing_ok=True)
        cmd = [
            self._python,
            "-m",
            "repro.serve",
            "--capacity",
            str(_partition_capacity(self._capacity, p, n)),
            "--backend",
            self._backend,
            "--host",
            self._host,
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--codec",
            self._codec,
            "--role",
            "replica",
            "--partition",
            f"{p}/{n}",
            *self._serve_args,
        ]
        log = open(self._path("log", p, gen), "ab")
        try:
            proc = subprocess.Popen(
                cmd,
                stdout=log,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
            )
        finally:
            log.close()
        self._path("pid", p, gen).write_text(f"{proc.pid}\n")
        log_event(
            _log, f"replica {p} spawned (pid {proc.pid})",
            event="replica_spawn", partition=p, generation=gen,
            pid=proc.pid,
        )
        get_registry().counter("cluster.replica.spawns").inc()
        return proc

    def _spawn(self, p: int) -> None:
        self._kill_stale(self.pid_file(p), self._procs[p])
        self._procs[p] = self._launch(p, self._n, self._generation)

    def _kill_stale(
        self, pid_path: Path, own: subprocess.Popen | None
    ) -> None:
        """Kill a leftover replica from a dead supervisor, by pid file.

        A router SIGKILL orphans its replicas: a *new* supervisor in
        the same workdir has no Popen handle on them, but their pid
        files survive.  Spawning a second replica for the same
        partition next to a live orphan would split the partition's
        state, so the stale pid is killed first.  Only pids this
        supervisor does not own are touched, and only best-effort (the
        pid may be long dead or recycled — ESRCH/EPERM are fine).
        """
        try:
            stale = int(pid_path.read_text().strip())
        except (FileNotFoundError, ValueError):
            return
        if own is not None and own.pid == stale:
            return
        try:
            os.kill(stale, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass

    async def _await_port(
        self, proc: subprocess.Popen, port_file: Path, label: str
    ) -> int:
        """Poll for a replica's (atomically written) port file."""
        deadline = time.monotonic() + self._boot_timeout
        log_hint = port_file.with_suffix(".log")
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"{label} exited with code {proc.returncode} "
                    f"before binding (see {log_hint})"
                )
            try:
                text = port_file.read_text()
            except FileNotFoundError:
                text = ""
            if text.strip():
                return int(text.strip())
            await asyncio.sleep(0.02)
        raise RuntimeError(
            f"{label} did not publish a port within "
            f"{self._boot_timeout:g}s (see {log_hint})"
        )

    async def _wait_port(self, p: int) -> int:
        return await self._await_port(
            self._procs[p], self.port_file(p), f"replica {p}"
        )

    def alive(self, p: int) -> bool:
        proc = self._procs[p]
        return proc is not None and proc.poll() is None

    def pid(self, p: int) -> int:
        proc = self._procs[p]
        if proc is None:
            raise RuntimeError(f"replica {p} was never spawned")
        return proc.pid

    async def ensure_replica(self, p: int) -> tuple[str, int]:
        """The router's recovery hook: endpoint of a live replica ``p``.

        A dead process is respawned (fresh, empty — the router restores
        the snapshot and replays the journal on top) and its new port
        awaited.  A live process just returns its current endpoint —
        the caller's connection failure may have been transient.
        """
        if not 0 <= p < self._n:
            raise CapacityError(
                f"partition {p} out of range [0, {self._n})"
            )
        if self._unhealthy is not None:
            raise ClusterUnhealthyError(self._unhealthy)
        if not self.alive(p):
            self._note_respawn(p)
            self.respawns += 1
            get_registry().counter("cluster.replica.respawns").inc()
            log_event(
                _log, f"replica {p} died; respawning",
                event="replica_respawn", partition=p,
                respawns=self.respawns,
            )
            self._spawn(p)
            self._ports[p] = await self._wait_port(p)
        return (self._host, self._ports[p])

    def _note_respawn(self, p: int) -> None:
        """Record one respawn of ``p``; escalate on a storm.

        Sticky on purpose: once a partition crash-loops past the
        threshold, the answer is an operator (or a test teardown), not
        respawn attempt number fifty — so the unhealthy verdict never
        resets by itself.
        """
        now = time.monotonic()
        times = self._respawn_times[p]
        times.append(now)
        cutoff = now - self._window
        while times and times[0] < cutoff:
            times.pop(0)
        if len(times) > self._max_burst:
            self._unhealthy = (
                f"replica {p} respawned {len(times)} times within "
                f"{self._window:g}s (limit {self._max_burst}); the "
                f"partition is crash-looping and the cluster is "
                f"terminally unhealthy"
            )
            _log.error(
                self._unhealthy,
                extra={
                    "fields": {
                        "event": "cluster_unhealthy",
                        "partition": p,
                        "respawns_in_window": len(times),
                    }
                },
            )
            get_registry().counter("cluster.escalations").inc()
            raise ClusterUnhealthyError(self._unhealthy)

    @property
    def unhealthy(self) -> str | None:
        """The sticky escalation verdict (``None`` while healthy)."""
        return self._unhealthy

    @property
    def generation(self) -> int:
        """The serving tier's generation (0 until a rescale commits)."""
        return self._generation

    def kill(self, p: int, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` to replica ``p`` (the chaos hook for tests)."""
        os.kill(self.pid(p), sig)

    # -- generations (live rescale) ------------------------------------

    async def spawn_generation(self, n_new: int) -> list[tuple[str, int]]:
        """Boot a complete staged tier of ``n_new`` replicas.

        The staged generation serves nothing until
        :meth:`commit_generation` adopts it; the current tier keeps
        running untouched.  Returns the staged endpoints.  A boot
        failure tears down whatever partially spawned and re-raises —
        staging is all-or-nothing.
        """
        if self._unhealthy is not None:
            raise ClusterUnhealthyError(self._unhealthy)
        if self._staged is not None:
            raise RuntimeError(
                "a staged generation is already in flight"
            )
        if n_new < 1:
            raise CapacityError(f"n_new must be >= 1, got {n_new}")
        if self._capacity < n_new:
            raise CapacityError(
                f"capacity {self._capacity} cannot spread over "
                f"{n_new} replicas"
            )
        gen = self._generation + 1
        procs: list[subprocess.Popen] = []
        try:
            for q in range(n_new):
                self._kill_stale(self._path("pid", q, gen), None)
                procs.append(self._launch(q, n_new, gen))
            ports = []
            for q, proc in enumerate(procs):
                ports.append(
                    await self._await_port(
                        proc,
                        self._path("port", q, gen),
                        f"replica g{gen}-{q}",
                    )
                )
        except BaseException:
            self._stop_procs(procs, timeout=5.0)
            raise
        self._staged = {
            "generation": gen,
            "n": n_new,
            "procs": procs,
            "ports": ports,
        }
        return [(self._host, port) for port in ports]

    async def commit_generation(self) -> None:
        """Adopt the staged tier as the serving one; retire the old.

        The swap is instantaneous (list assignments); only the old
        tier's SIGTERM + reap runs off-loop, after the staged tier is
        already serving.
        """
        staged = self._staged
        if staged is None:
            raise RuntimeError("no staged generation to commit")
        old = [proc for proc in self._procs if proc is not None]
        self._staged = None
        self._generation = staged["generation"]
        self._n = staged["n"]
        self._procs = list(staged["procs"])
        self._ports = list(staged["ports"])
        self._respawn_times = [[] for _ in range(self._n)]
        await asyncio.to_thread(self._stop_procs, old, 10.0)

    async def abort_generation(self) -> None:
        """Tear down a staged tier that will never serve (idempotent)."""
        staged = self._staged
        if staged is None:
            return
        self._staged = None
        await asyncio.to_thread(
            self._stop_procs, staged["procs"], 5.0
        )

    async def reconfigure(
        self, n: int, generation: int
    ) -> list[tuple[str, int]]:
        """Rebuild the tier at a recovered WAL layout, before serving.

        The boot-time path: the router found a committed rescale in
        its WAL and the configured replica count is stale.  The
        freshly started (empty) tier is stopped and respawned at the
        durable shape — nothing has been restored into it yet, so no
        state moves.
        """
        if n < 1:
            raise CapacityError(f"n must be >= 1, got {n}")
        if self._capacity < n:
            raise CapacityError(
                f"capacity {self._capacity} cannot spread over {n} "
                f"replicas"
            )
        old = [proc for proc in self._procs if proc is not None]
        await asyncio.to_thread(self._stop_procs, old, 10.0)
        self._generation = generation
        self._n = n
        self._procs = [None] * n
        self._ports = [None] * n
        self._respawn_times = [[] for _ in range(n)]
        for p in range(n):
            self._spawn(p)
        for p in range(n):
            self._ports[p] = await self._wait_port(p)
        return self.endpoints

    # -- teardown ------------------------------------------------------

    @staticmethod
    def _stop_procs(procs, timeout: float = 10.0) -> None:
        """SIGTERM the given processes and reap them."""
        for proc in procs:
            if proc is None or proc.poll() is not None:
                continue
            try:
                proc.terminate()
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        for proc in procs:
            if proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(5.0)

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM every live replica — staged tier included — and
        reap them (idempotent)."""
        staged = self._staged
        self._staged = None
        procs = list(self._procs)
        if staged is not None:
            procs.extend(staged["procs"])
        self._stop_procs(procs, timeout)

    async def __aenter__(self) -> "ReplicaSupervisor":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        self.stop()
