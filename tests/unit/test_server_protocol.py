"""Unit tests for the wire protocol: framing, codecs, error transport."""

import asyncio
import struct

import pytest

from repro.api.plan import Query
from repro.core.queries import ModeResult, TopEntry
from repro.errors import (
    CapacityError,
    EmptyProfileError,
    FrequencyUnderflowError,
    UnsupportedQueryError,
)
from repro.server.protocol import (
    DEFAULT_MAX_FRAME,
    ProtocolError,
    RemoteError,
    decode_body,
    decode_error,
    decode_events,
    decode_queries,
    decode_value,
    encode_error,
    encode_queries,
    encode_value,
    pack_frame,
    read_frame,
)


def roundtrip_frames(data: bytes, max_frame: int = DEFAULT_MAX_FRAME):
    """Feed raw bytes through the asyncio frame reader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame(reader, max_frame)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(run())


class TestFraming:
    def test_pack_read_roundtrip(self):
        payloads = [{"id": 1, "op": "ping"}, {"id": 2, "x": [1, "a", None]}]
        data = b"".join(pack_frame(p) for p in payloads)
        assert roundtrip_frames(data) == payloads

    def test_clean_eof_is_none(self):
        assert roundtrip_frames(b"") == []

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            roundtrip_frames(b"\x00\x00")

    def test_eof_mid_body_raises(self):
        data = pack_frame({"id": 1, "op": "ping"})[:-3]
        with pytest.raises(ProtocolError, match="mid-frame"):
            roundtrip_frames(data)

    def test_oversized_frame_rejected_before_reading_body(self):
        huge = struct.pack(">I", 10_000_000) + b"x"
        with pytest.raises(ProtocolError, match="exceeds"):
            roundtrip_frames(huge, max_frame=1024)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_body(b"[1, 2, 3]")

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_body(b"{nope")


class TestEventCodec:
    def test_valid_dense_pairs(self):
        pairs = decode_events([[3, 1], [7, -2]], dense=True)
        assert pairs == [(3, 1), (7, -2)]

    def test_hashable_accepts_json_scalars(self):
        pairs = decode_events(
            [["ada", 1], [None, 2], [1.5, 1], [True, -1]], dense=False
        )
        assert pairs[0] == ("ada", 1)

    @pytest.mark.parametrize(
        "events",
        [
            {"not": "a list"},
            [[1]],
            [[1, 2, 3]],
            [[1, "x"]],
            [[1, 1.5]],
            [[1, True]],
        ],
    )
    def test_malformed_events_rejected(self, events):
        with pytest.raises(ProtocolError):
            decode_events(events, dense=True)

    @pytest.mark.parametrize("obj", ["a", None, 1.5, True])
    def test_dense_mode_requires_integer_ids(self, obj):
        with pytest.raises(ProtocolError, match="integers"):
            decode_events([[obj, 1]], dense=True)

    def test_hashable_mode_rejects_containers(self):
        with pytest.raises(ProtocolError, match="scalars"):
            decode_events([[[1, 2], 1]], dense=False)


class TestQueryCodec:
    def test_roundtrip_every_kind(self):
        queries = (
            Query.mode(),
            Query.least(),
            Query.max_frequency(),
            Query.min_frequency(),
            Query.top_k(3),
            Query.kth_most_frequent(2),
            Query.median(),
            Query.quantile(0.25),
            Query.histogram(),
            Query.support(0),
            Query.heavy_hitters(0.1),
            Query.active_count(),
            Query.frequency(7),
            Query.total(),
        )
        assert decode_queries(encode_queries(queries)) == queries

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown query kind"):
            decode_queries([{"kind": "drop_tables"}])

    def test_constructor_validation_applies(self):
        with pytest.raises(CapacityError):
            decode_queries([{"kind": "quantile", "args": [1.5]}])

    def test_bad_arity_rejected(self):
        with pytest.raises(ProtocolError, match="bad arguments"):
            decode_queries([{"kind": "top_k", "args": [1, 2]}])

    def test_malformed_descriptions_rejected(self):
        with pytest.raises(ProtocolError):
            decode_queries("mode")
        with pytest.raises(ProtocolError):
            decode_queries([{"args": []}])
        with pytest.raises(ProtocolError):
            decode_queries([{"kind": "mode", "args": "nope"}])


class TestValueCodec:
    def test_mode_roundtrip(self):
        value = ModeResult(frequency=4, count=2, example=9)
        assert decode_value("mode", encode_value("mode", value)) == value

    def test_mode_none_count_survives(self):
        value = ModeResult(frequency=4, count=None, example="hot")
        assert decode_value("mode", encode_value("mode", value)) == value

    def test_entry_lists_roundtrip(self):
        entries = [TopEntry(3, 9), TopEntry(1, 5)]
        for kind in ("top_k", "heavy_hitters"):
            assert decode_value(kind, encode_value(kind, entries)) == entries

    def test_kth_roundtrip(self):
        entry = TopEntry(7, 2)
        wire = encode_value("kth_most_frequent", entry)
        assert decode_value("kth_most_frequent", wire) == entry

    def test_histogram_roundtrips_to_tuples(self):
        hist = [(0, 3), (2, 1)]
        wire = encode_value("histogram", hist)
        assert decode_value("histogram", wire) == hist

    def test_scalars_pass_through(self):
        assert decode_value("quantile", encode_value("quantile", 3)) == 3


class TestErrorCodec:
    @pytest.mark.parametrize(
        "exc",
        [
            CapacityError("object id 9 out of range [0, 5)"),
            FrequencyUnderflowError("would go negative"),
            EmptyProfileError("no events"),
            ProtocolError("bad frame"),
        ],
    )
    def test_known_types_reconstruct(self, exc):
        decoded = decode_error(encode_error(exc))
        assert type(decoded) is type(exc)
        assert str(decoded) == str(exc)

    def test_unsupported_query_ships_both_fields(self):
        decoded = decode_error(
            encode_error(UnsupportedQueryError("heap-max", "median"))
        )
        assert isinstance(decoded, UnsupportedQueryError)
        assert decoded.profiler == "heap-max"
        assert decoded.query == "median"

    def test_unknown_type_degrades_to_remote_error(self):
        decoded = decode_error({"type": "WeirdError", "message": "boom"})
        assert isinstance(decoded, RemoteError)
        assert "WeirdError" in str(decoded)

    def test_malformed_error_payload(self):
        assert isinstance(decode_error("nope"), RemoteError)
