"""Integration: applications working together on realistic data."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.graph_shaving import core_decomposition, densest_subgraph
from repro.apps.leaderboard import Leaderboard
from repro.apps.topk_tracker import TopKTracker
from repro.streams.distributions import ZipfSampler
from repro.streams.generators import StreamConfig, generate_stream
from repro.streams.window import CountWindowProfiler


def test_planted_dense_subgraph_is_found():
    """A planted clique inside a sparse background must be recovered."""
    rng = np.random.default_rng(7)
    graph = nx.gnp_random_graph(300, 0.01, seed=3)
    clique_nodes = list(range(300, 330))
    for i, u in enumerate(clique_nodes):
        for v in clique_nodes[i + 1:]:
            graph.add_edge(u, v)
    # Sprinkle some cross edges.
    for _ in range(100):
        graph.add_edge(
            int(rng.integers(0, 300)), int(rng.integers(300, 330))
        )

    result = densest_subgraph(graph)
    planted_density = 29 / 2  # clique density |E|/|V| = (k-1)/2
    assert result.density >= planted_density / 2
    # The found subgraph must be dominated by planted nodes.
    overlap = len(result.vertices & set(clique_nodes))
    assert overlap >= 25


def test_core_numbers_on_scale_free_graph():
    graph = nx.barabasi_albert_graph(500, 3, seed=1)
    assert core_decomposition(graph) == nx.core_number(graph)


def test_topk_tracker_on_zipf_stream():
    config = StreamConfig(
        n_events=5000,
        universe=1000,
        p_add=1.0,
        pos_sampler=ZipfSampler(1000, exponent=1.3),
        seed=11,
        name="zipf",
    )
    stream = generate_stream(config)
    tracker = TopKTracker(10)
    for event in stream:
        tracker.like(int(event.obj))

    board = tracker.board()
    assert len(board) == 10
    # Zipf head: object 0 must be the most frequent by a wide margin.
    assert board[0].obj == 0
    frequencies = [entry.frequency for entry in board]
    assert frequencies == sorted(frequencies, reverse=True)
    # Board must equal a brute-force recount.
    counts = {}
    for event in stream:
        counts[int(event.obj)] = counts.get(int(event.obj), 0) + 1
    best = sorted(counts.values(), reverse=True)[:10]
    assert frequencies == best


def test_leaderboard_and_window_track_same_stream():
    config = StreamConfig(n_events=2000, universe=50, p_add=0.7, seed=2)
    stream = generate_stream(config)
    board = Leaderboard()
    window = CountWindowProfiler(500, capacity=50)
    for event in stream:
        board.update = None  # leaderboards use like/dislike
        if event.is_add:
            board.like(int(event.obj))
        else:
            board.dislike(int(event.obj))
        window.push(int(event.obj), event.action)

    # Whole-history scores equal stream net counts.
    net = {}
    for event in stream:
        net[int(event.obj)] = net.get(int(event.obj), 0) + (
            1 if event.is_add else -1
        )
    for obj, expected in net.items():
        assert board.score(obj) == expected

    # The windowed view only reflects the last 500 events.
    tail_net = {}
    for event in list(stream)[-500:]:
        tail_net[int(event.obj)] = tail_net.get(int(event.obj), 0) + (
            1 if event.is_add else -1
        )
    for obj in range(50):
        assert window.frequency(obj) == tail_net.get(obj, 0)


def test_shaving_uses_linear_work():
    """The S-Profile peel must touch each edge a bounded number of times."""
    graph = nx.gnp_random_graph(200, 0.05, seed=4)
    result = densest_subgraph(graph)
    assert len(result.peeling_order) == graph.number_of_nodes()
    # Density trace starts at |E|/|V| and is non-negative throughout.
    assert result.density_trace[0] == pytest.approx(
        graph.number_of_edges() / graph.number_of_nodes()
    )
    assert all(value >= 0 for value in result.density_trace)
