"""The Prometheus sidecar: a tiny GET-only asyncio HTTP endpoint.

Runs on the same event loop as the server it observes — scrapes read
the live registry with no cross-thread hop.  Deliberately minimal: it
answers ``GET /metrics`` (and ``/``) with text exposition, everything
else with 404, closes every connection after one response, and never
keeps state per client.  It is an observability tap, not a web server.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.obs.prometheus import render_prometheus

__all__ = ["MetricsExporter"]

_MAX_REQUEST_HEAD = 8192


class MetricsExporter:
    """Serve a registry snapshot as Prometheus text over HTTP.

    ``snapshot_fn`` is called per scrape and must return a
    ``MetricsRegistry.snapshot()``-shaped dict — passing a bound
    method keeps the exporter decoupled from who owns the registry
    (server, router, or a merged parent view).
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], dict],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        labels: dict | None = None,
    ) -> None:
        self._snapshot_fn = snapshot_fn
        self._host = host
        self._port = port
        self._labels = dict(labels) if labels else None
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("exporter not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._host

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer) -> None:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            writer.close()
            return
        try:
            request_line = head.split(b"\r\n", 1)[0].decode(
                "latin-1", "replace"
            )
            parts = request_line.split()
            method = parts[0] if parts else ""
            path = parts[1].split("?", 1)[0] if len(parts) > 1 else ""
            if method != "GET" or len(head) > _MAX_REQUEST_HEAD:
                await self._respond(
                    writer, 405, "method not allowed\n"
                )
            elif path in ("/", "/metrics"):
                body = render_prometheus(
                    self._snapshot_fn(), labels=self._labels
                )
                await self._respond(
                    writer,
                    200,
                    body,
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                await self._respond(writer, 404, "not found\n")
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    async def _respond(
        writer,
        status: int,
        body: str,
        *,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}[
            status
        ]
        payload = body.encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + payload
        )
        await writer.drain()
