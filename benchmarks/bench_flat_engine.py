"""Flat struct-of-arrays engine vs the block-object engine.

The pytest-benchmark face of ``python -m repro.bench trajectory``
(which writes the committed ``BENCH_core.json``): the figure-3 mode
workload driven through each engine's canonical path, plus the batch
ingest comparison.  Expected shape: FlatProfile ~2x on per-event
streams, >4x on dense batches.
"""

import pytest

from repro.core.flat import FlatProfile
from repro.core.profile import SProfile

N = 40_000
M = 4_000

BATCH = 10_000
BATCH_M = 2_000
BATCH_COUNT = 4


def _consume_mode_sprofile(profile, id_list, add_list):
    add = profile.add
    remove = profile.remove
    mode = profile.max_frequency
    for x, is_add in zip(id_list, add_list):
        if is_add:
            add(x)
        else:
            remove(x)
        mode()


def _consume_mode_flat(profile, id_list, add_list):
    profile.track_statistic(id_list, add_list, profile.capacity - 1)


@pytest.mark.parametrize("stream_name", ("stream1", "stream3"))
def test_mode_upkeep_sprofile(benchmark, stream_lists, stream_name):
    benchmark.group = f"fig3 mode upkeep {stream_name} (engines)"
    ids, adds = stream_lists(stream_name, N, M)

    def setup():
        return (SProfile(M), ids, adds), {}

    benchmark.pedantic(
        _consume_mode_sprofile, setup=setup, rounds=3, iterations=1
    )


@pytest.mark.parametrize("stream_name", ("stream1", "stream3"))
def test_mode_upkeep_flat(benchmark, stream_lists, stream_name):
    benchmark.group = f"fig3 mode upkeep {stream_name} (engines)"
    ids, adds = stream_lists(stream_name, N, M)

    def setup():
        return (FlatProfile(M), ids, adds), {}

    benchmark.pedantic(
        _consume_mode_flat, setup=setup, rounds=3, iterations=1
    )


def _ingest_batches(profile, batches):
    add_many = profile.add_many
    for batch in batches:
        add_many(batch)


@pytest.mark.parametrize("engine", (SProfile, FlatProfile))
def test_batch_ingest(benchmark, stream_lists, engine):
    benchmark.group = "batch-10k add_many (engines)"
    np = pytest.importorskip("numpy")
    ids, _ = stream_lists("stream1", BATCH * BATCH_COUNT, BATCH_M)
    arr = np.asarray(ids, dtype=np.int64)
    batches = [
        arr[i * BATCH : (i + 1) * BATCH] for i in range(BATCH_COUNT)
    ]

    def setup():
        return (engine(BATCH_M), batches), {}

    benchmark.pedantic(_ingest_batches, setup=setup, rounds=3, iterations=1)
