"""S-Profile: O(1)-per-update profiling of a dynamic array (Algorithm 1).

The profiler tracks ``m`` objects with dense ids ``0 .. m-1``.  Every
``add(x)`` / ``remove(x)`` changes the frequency of exactly one object by
exactly ±1 — the structure of log streams the paper exploits.  State:

- ``FtoT`` (here ``_ftot``): object id -> rank in the sorted array ``T``,
- ``TtoF`` (here ``_ttof``): rank -> object id,
- the block set with ``PtrB`` (rank -> block), see
  :mod:`repro.core.blockset`.

``T`` itself is never stored: ``T[rank] == PtrB[rank].f`` (paper eq. (1)).

An ``add`` swaps the object with the one at the *right edge* of its
block (both share the same frequency, so order is preserved), shrinks the
block by one and attaches the freed rank to the ``f+1`` block on its
right — extending it if it exists, creating a singleton block otherwise.
A ``remove`` mirrors the dance at the *left edge*.  Both touch a constant
number of pointers: O(1) worst case, no amortization.

Implementation notes (they matter for the paper's speed claims):

- ``add``/``remove`` inline the block create/drop bookkeeping and
  recycle emptied blocks through a free list without any function call;
  this mirrors the paper's C++ where everything inlines.  See
  ``benchmarks/bench_ablation_pool.py`` for the measured effect.
- Derived statistics (variance, active count) are computed on demand
  from the block walk in O(#blocks) instead of being maintained per
  event; the hot path carries exactly one counter increment.
- Bulk ingestion (:meth:`SProfile.add_many` / :meth:`SProfile.remove_many`
  / :meth:`SProfile.apply`) coalesces repeated keys and hoists every
  attribute lookup out of the per-event loop.  A key hit ``c`` times
  climbs the block structure in O(#blocks crossed) instead of O(c):
  because all elements of a block share one frequency, the object
  leapfrogs an entire block with a single edge swap.  See
  ``benchmarks/bench_batch_vs_loop.py`` for the measured effect.

Frequencies may go negative (the paper allows it; section 2.2 notes the
minimum frequency "maybe a negative number").  Construct with
``allow_negative=False`` to instead raise
:class:`~repro.errors.FrequencyUnderflowError` when a remove would
underflow zero.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.core.block import Block, BlockPool
from repro.core.blockset import BlockSet
from repro.core.queries import ProfileQueryMixin
from repro.errors import CapacityError, FrequencyUnderflowError

try:  # same numpy gating discipline as repro.core.flat
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback
    _np = None

__all__ = ["SProfile", "net_arrays", "net_deltas", "net_deltas_arrays"]


def net_deltas(deltas) -> dict:
    """Coalesce ``(key, delta)`` pairs (or a mapping) into a net map.

    The shared batch-normalization step of every ``apply``
    implementation (flat, dynamic, baseline), so their semantics
    cannot drift: mappings are taken item-wise, pair streams are
    summed per key.
    """
    items = deltas.items() if hasattr(deltas, "items") else deltas
    net: dict = {}
    for x, d in items:
        net[x] = net.get(x, 0) + d
    return net


def net_deltas_arrays(ids, deltas) -> dict:
    """:func:`net_deltas` over two parallel integer arrays.

    The vectorized coalescing step of the binary wire hot path: one
    ``unique`` + scatter-add pair replaces the per-event dict loop, so
    a decoded ``np.frombuffer`` batch nets without materializing one
    Python object per event.  Returns the same ``{key: net delta}``
    dict the pair-stream form produces (Python ints, zero-net keys
    included, first-occurrence key order).  Falls back to the scalar
    loop when NumPy is unavailable or the inputs are plain sequences.
    """
    if _np is not None:
        ids = _np.asarray(ids)
        deltas = _np.asarray(deltas)
        if ids.shape != deltas.shape:
            raise CapacityError(
                f"ids and deltas must be parallel arrays, got shapes "
                f"{ids.shape} and {deltas.shape}"
            )
        keys, first, inverse = _np.unique(
            ids, return_index=True, return_inverse=True
        )
        sums = _np.zeros(len(keys), dtype=_np.int64)
        _np.add.at(sums, inverse, deltas)
        order = _np.argsort(first, kind="stable")
        return dict(
            zip(keys[order].tolist(), sums[order].tolist())
        )
    if len(ids) != len(deltas):
        raise CapacityError(
            f"ids and deltas must be parallel arrays, got lengths "
            f"{len(ids)} and {len(deltas)}"
        )
    return net_deltas(zip(ids, deltas))


def net_arrays(ids, deltas):
    """Net two parallel integer arrays into ``(keys, sums)`` arrays.

    The all-arrays form of :func:`net_deltas_arrays` for consumers
    that never need a dict (the dense serving hot path): ``keys`` is
    the *sorted unique* int64 ids and ``sums`` their net deltas, both
    NumPy arrays — no per-key Python objects at all.  Key order
    differs from the dict forms (sorted, not first-occurrence), which
    is immaterial for dense integer ids: additive netting is
    order-free, and nothing registers keys positionally.
    """
    if _np is None:  # pragma: no cover - numpy-less fallback
        net = net_deltas_arrays(ids, deltas)
        keys = sorted(net)
        return keys, [net[k] for k in keys]
    ids = _np.asarray(ids)
    deltas = _np.asarray(deltas)
    if ids.shape != deltas.shape:
        raise CapacityError(
            f"ids and deltas must be parallel arrays, got shapes "
            f"{ids.shape} and {deltas.shape}"
        )
    keys, inverse = _np.unique(ids, return_inverse=True)
    sums = _np.zeros(len(keys), dtype=_np.int64)
    _np.add.at(sums, inverse, deltas)
    return keys, sums


class SProfile(ProfileQueryMixin):
    """The paper's profiler: O(1) updates, O(1) order-statistic queries.

    Parameters
    ----------
    capacity:
        ``m``, the maximum number of distinct objects.  Ids are dense
        integers in ``[0, capacity)``; wrap arbitrary ids with
        :class:`~repro.core.dynamic.DynamicProfiler`.
    allow_negative:
        Permit frequencies below zero (paper semantics, default).  When
        False, removing an object at frequency 0 raises
        :class:`~repro.errors.FrequencyUnderflowError`.
    track_freq_index:
        Maintain a frequency -> block dict so :meth:`support` and
        :meth:`objects_with_frequency` are O(1).  Slight per-update cost;
        see ``benchmarks/bench_ablation_freq_index.py``.
    recycle_blocks:
        Reuse emptied block objects through a free list (default).  Off,
        every block birth allocates a fresh object — the ablation knob
        for ``benchmarks/bench_ablation_pool.py``.
    pool:
        Block allocator.  By default a fresh
        :class:`~repro.core.block.BlockPool` bounded at
        ``max_free=capacity`` — at most ``m`` blocks are ever live, so
        retaining more idle ones would be a leak on long adversarial
        runs.  Pass an explicit pool to share or unbound it.

    Examples
    --------
    >>> p = SProfile(capacity=5)
    >>> for x in [1, 1, 3, 1, 2]:
    ...     p.add(x)
    >>> p.mode().frequency, p.mode().example
    (3, 1)
    >>> p.remove(1)
    >>> p.top_k(2)
    [TopEntry(obj=1, frequency=2), TopEntry(obj=3, frequency=1)]
    """

    #: Registry-facing metadata (duck-typed counterpart of ProfilerBase).
    name = "sprofile"
    SUPPORTED_QUERIES = frozenset(
        {
            "frequency",
            "mode",
            "least",
            "max_frequency",
            "min_frequency",
            "top_k",
            "kth_most_frequent",
            "median",
            "quantile",
            "histogram",
            "support",
        }
    )

    __slots__ = (
        "_m",
        "_ftot",
        "_ttof",
        "_blocks",
        "_ptrb",
        "_fidx",
        "_free",
        "_allow_negative",
        "_recycle",
        "_base_total",
        "_n_adds",
        "_n_removes",
    )

    def __init__(
        self,
        capacity: int,
        *,
        allow_negative: bool = True,
        track_freq_index: bool = False,
        recycle_blocks: bool = True,
        pool: BlockPool | None = None,
    ) -> None:
        if capacity < 0:
            raise CapacityError(f"capacity must be >= 0, got {capacity}")
        self._m = capacity
        self._ftot = list(range(capacity))
        self._ttof = list(range(capacity))
        # The pool is bounded by the universe size by default: at most
        # m blocks can ever be live, so idle blocks beyond that are
        # pure retention — long adversarial runs must not accumulate
        # them.  Pass an explicit pool to share or unbound it.
        if pool is None:
            pool = BlockPool(max_free=capacity)
        self._blocks = BlockSet(
            capacity, 0, track_freq_index=track_freq_index, pool=pool
        )
        self._sync_aliases()
        self._allow_negative = allow_negative
        self._recycle = recycle_blocks
        self._base_total = 0
        self._n_adds = 0
        self._n_removes = 0

    @classmethod
    def from_frequencies(
        cls,
        frequencies: Sequence[int],
        *,
        allow_negative: bool = True,
        track_freq_index: bool = False,
    ) -> "SProfile":
        """Bulk-build a profile from an initial frequency array.

        O(m log m) — one sort.  Used e.g. by graph shaving to start from a
        degree sequence instead of replaying every edge.
        """
        freqs = list(frequencies)
        if not allow_negative and any(f < 0 for f in freqs):
            raise FrequencyUnderflowError(
                "negative initial frequency with allow_negative=False"
            )
        self = cls(0, allow_negative=allow_negative)
        m = len(freqs)
        ttof = sorted(range(m), key=freqs.__getitem__)
        runs = _runs_from_sorted(ttof, freqs)
        self._install(
            ttof,
            runs,
            allow_negative=allow_negative,
            track_freq_index=track_freq_index,
        )
        self._base_total = sum(freqs)
        return self

    # ------------------------------------------------------------------
    # Updates (the O(1) hot path)
    # ------------------------------------------------------------------

    def add(self, x: int) -> None:
        """Process an "add" event for object ``x``.  O(1) worst case."""
        m = self._m
        if not 0 <= x < m:
            raise CapacityError(f"object id {x} out of range [0, {m})")
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        i = ftot[x]
        b = ptrb[i]
        r = b.r
        f = b.f
        self._n_adds += 1

        # Swap x with the element at the right edge of its block; both
        # hold frequency f, so the sorted order of T is untouched.
        if i != r:
            y = ttof[r]
            ttof[r] = x
            ttof[i] = y
            ftot[x] = r
            ftot[y] = i

        fidx = self._fidx
        f1 = f + 1
        nxt = r + 1

        if b.l == r:
            # x's block is a singleton.  Unless it must merge into an
            # adjacent f+1 block, bump its frequency in place — no block
            # is born or dies.  This is the hot pattern of skewed
            # streams (one popular object climbing on its own).
            if nxt < m:
                right = ptrb[nxt]
                if right.f == f1:
                    self._blocks._n_blocks -= 1
                    if fidx is not None and fidx.get(f) is b:
                        del fidx[f]
                    if self._recycle:
                        self._free.append(b)
                    right.l = r
                    ptrb[r] = right
                    return
            if fidx is not None:
                if fidx.get(f) is b:
                    del fidx[f]
                fidx[f1] = b
            b.f = f1
            return

        # General case: shrink x's old block from the right and attach
        # rank r to the f+1 block (extend it or create a singleton).
        b.r = r - 1
        if nxt < m:
            right = ptrb[nxt]
            if right.f == f1:
                right.l = r
                ptrb[r] = right
                return
        free = self._free
        if free:
            nb = free.pop()
            nb.l = r
            nb.r = r
            nb.f = f1
        else:
            nb = Block(r, r, f1)
        self._blocks._n_blocks += 1
        if fidx is not None:
            fidx[f1] = nb
        ptrb[r] = nb

    def remove(self, x: int) -> None:
        """Process a "remove" event for object ``x``.  O(1) worst case."""
        m = self._m
        if not 0 <= x < m:
            raise CapacityError(f"object id {x} out of range [0, {m})")
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        i = ftot[x]
        b = ptrb[i]
        l = b.l
        f = b.f

        if f <= 0 and not self._allow_negative:
            raise FrequencyUnderflowError(
                f"removing object {x} at frequency {f} would go negative"
            )
        self._n_removes += 1

        # Swap x with the element at the left edge of its block.
        if i != l:
            y = ttof[l]
            ttof[l] = x
            ttof[i] = y
            ftot[x] = l
            ftot[y] = i

        fidx = self._fidx
        f1 = f - 1
        prv = l - 1

        if b.r == l:
            # Singleton block: bump in place unless it must merge into
            # an adjacent f-1 block (mirror of the add fast path).
            if prv >= 0:
                left = ptrb[prv]
                if left.f == f1:
                    self._blocks._n_blocks -= 1
                    if fidx is not None and fidx.get(f) is b:
                        del fidx[f]
                    if self._recycle:
                        self._free.append(b)
                    left.r = l
                    ptrb[l] = left
                    return
            if fidx is not None:
                if fidx.get(f) is b:
                    del fidx[f]
                fidx[f1] = b
            b.f = f1
            return

        # General case: shrink x's old block from the left and attach
        # rank l to the f-1 block (extend it or create a singleton).
        b.l = l + 1
        if prv >= 0:
            left = ptrb[prv]
            if left.f == f1:
                left.r = l
                ptrb[l] = left
                return
        free = self._free
        if free:
            nb = free.pop()
            nb.l = l
            nb.r = l
            nb.f = f1
        else:
            nb = Block(l, l, f1)
        self._blocks._n_blocks += 1
        if fidx is not None:
            fidx[f1] = nb
        ptrb[l] = nb

    def update(self, x: int, is_add: bool) -> None:
        """Apply one log-stream tuple ``(x, c)``."""
        if is_add:
            self.add(x)
        else:
            self.remove(x)

    def add_count(self, x: int, count: int) -> None:
        """Apply ``count`` adds to ``x``.

        Semantically ``count`` unit steps, executed as a climb through
        the block structure: O(#blocks crossed) <= O(count), and O(1)
        when ``x`` already sits alone in its block."""
        if count < 0:
            raise CapacityError(f"count must be >= 0, got {count}")
        if count:
            self._bulk_add({x: count})

    def remove_count(self, x: int, count: int) -> None:
        """Apply ``count`` removes to ``x``.  Mirror of :meth:`add_count`."""
        if count < 0:
            raise CapacityError(f"count must be >= 0, got {count}")
        if count:
            self._bulk_remove({x: count})

    def consume(self, events: Iterable[tuple[int, bool]]) -> int:
        """Apply a sequence of ``(object, is_add)`` tuples; return count."""
        add = self.add
        remove = self.remove
        n = 0
        for x, is_add in events:
            if is_add:
                add(x)
            else:
                remove(x)
            n += 1
        return n

    def consume_arrays(self, ids, adds) -> int:
        """Apply parallel arrays of object ids and add flags.

        Accepts numpy arrays (converted once via ``tolist()`` — item
        access on ndarrays is far slower than on lists in the interpreter
        loop) or plain sequences.  This is the path every benchmark uses,
        for all profilers alike.
        """
        id_list = ids.tolist() if hasattr(ids, "tolist") else list(ids)
        add_list = adds.tolist() if hasattr(adds, "tolist") else list(adds)
        if len(id_list) != len(add_list):
            raise CapacityError(
                f"ids ({len(id_list)}) and adds ({len(add_list)}) differ"
            )
        add = self.add
        remove = self.remove
        for x, is_add in zip(id_list, add_list):
            if is_add:
                add(x)
            else:
                remove(x)
        return len(id_list)

    # ------------------------------------------------------------------
    # Batch ingestion (coalesced; O(unique keys + blocks crossed))
    # ------------------------------------------------------------------
    # Batch semantics, shared by add_many / remove_many / apply: the
    # batch is treated as an unordered multiset of events.  Repeated
    # keys coalesce into one climb, so the final frequency array (and
    # therefore every query answer) matches the per-event loop, while
    # object *identity* inside equal-frequency ties may differ — ties
    # are unordered in the paper's model.  Out-of-range ids and
    # strict-mode underflows are rejected before any mutation: a
    # failed batch leaves the profile untouched and may be
    # re-submitted (all-or-nothing, unlike ``consume``'s
    # event-at-a-time no-rollback contract).

    def add_many(self, xs: Iterable[int]) -> int:
        """Apply one add per element of ``xs``; return the event count.

        Equivalent to ``for x in xs: self.add(x)`` up to tie order.
        Repeated keys are coalesced: a key occurring ``c`` times costs
        O(#blocks crossed) <= O(c), and the per-event interpreter
        overhead (method dispatch, bound checks, counter bumps) is paid
        once per batch instead of once per event.
        """
        if hasattr(xs, "tolist"):
            xs = xs.tolist()
        counts = Counter(xs)
        if not counts:
            return 0
        if len(counts) * 2 >= self._m:
            n = sum(counts.values())
            self._apply_rebuild(counts)
            self._n_adds += n
            return n
        return self._bulk_add(counts)

    def remove_many(self, xs: Iterable[int]) -> int:
        """Apply one remove per element of ``xs``; return the event count.

        Mirror of :meth:`add_many`.  In strict mode a key removed more
        times than its current frequency raises
        :class:`~repro.errors.FrequencyUnderflowError` before *any* of
        the batch is applied (all-or-nothing, as in :meth:`apply`).
        """
        if hasattr(xs, "tolist"):
            xs = xs.tolist()
        counts = Counter(xs)
        if not counts:
            return 0
        if len(counts) * 2 >= self._m:
            n = sum(counts.values())
            self._apply_rebuild({x: -c for x, c in counts.items()})
            self._n_removes += n
            return n
        if not self._allow_negative:
            ptrb = self._ptrb
            ftot = self._ftot
            m = self._m
            for x, c in counts.items():
                if not 0 <= x < m:
                    raise CapacityError(
                        f"object id {x} out of range [0, {m})"
                    )
                f = ptrb[ftot[x]].f
                if c > f:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency {f} "
                        f"{c} times would go negative"
                    )
        return self._bulk_remove(counts)

    def apply(self, deltas) -> int:
        """Apply a batch of ``(object, delta)`` pairs (or a mapping).

        Deltas of either sign are accepted and summed per key; the net
        delta is applied as a climb.  Returns the number of net unit
        events applied (``sum(abs(net_delta))``), which is what the
        ``n_adds`` / ``n_removes`` counters are advanced by — opposing
        deltas for the same key cancel before touching the structure.
        In strict mode a key whose *net* final frequency would be
        negative raises (batch order is not observable: adds for a key
        are considered before its removes), and the raise happens
        before any of the batch is applied — a rejected ``apply``
        leaves the profile untouched, so callers may re-submit.

        >>> p = SProfile(capacity=4)
        >>> p.apply([(0, +3), (1, +1), (0, -1)])
        3
        >>> p.frequencies()
        [2, 1, 0, 0]
        """
        net = net_deltas(deltas)
        m = self._m
        adds: dict[int, int] = {}
        removes: dict[int, int] = {}
        for x, d in net.items():
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
            if d > 0:
                adds[x] = d
            elif d < 0:
                removes[x] = -d
        if (len(adds) + len(removes)) * 2 >= m and (adds or removes):
            n_add = sum(adds.values())
            n_rem = sum(removes.values())
            self._apply_rebuild(
                {x: net[x] for x in net if net[x]}
            )
            self._n_adds += n_add
            self._n_removes += n_rem
            return n_add + n_rem
        if removes and not self._allow_negative:
            # Pre-check every underflow before mutating anything, so a
            # strict-mode reject is all-or-nothing (add/remove key sets
            # are disjoint, so the adds cannot rescue a remove key).
            ptrb = self._ptrb
            ftot = self._ftot
            for x, c in removes.items():
                f = ptrb[ftot[x]].f
                if c > f:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency {f} "
                        f"{c} times (net) would go negative"
                    )
        n = 0
        if adds:
            n += self._bulk_add(adds)
        if removes:
            n += self._bulk_remove(removes)
        return n

    def _apply_rebuild(self, net: Mapping[int, int]) -> None:
        """Wholesale path for batches that touch much of the universe.

        When the coalesced batch names a large fraction of the ``m``
        keys, per-key climbs degenerate (a climb crosses up to one
        block per unit step in a dense frequency landscape), while
        recomputing the frequency array and re-sorting it once is
        O(m log m) with C-speed constants.  Keys must be pre-validated;
        strict-mode underflow is checked on the *net* result per key
        before any mutation, so a raise leaves this batch unapplied.
        """
        m = self._m
        for x in net:
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
        freqs = self.frequencies()
        if not self._allow_negative:
            for x, d in net.items():
                if freqs[x] + d < 0:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency {freqs[x]} "
                        f"{-d} times (net) would go negative"
                    )
        for x, d in net.items():
            freqs[x] += d
        ttof = sorted(range(m), key=freqs.__getitem__)
        self._install(
            ttof,
            _runs_from_sorted(ttof, freqs),
            allow_negative=self._allow_negative,
            track_freq_index=self._blocks.tracks_freq_index,
            audit=False,
        )

    def _bulk_add(self, counts: Mapping[int, int]) -> int:
        """Add ``counts[x]`` (> 0) to every key of ``counts``.

        Each key is one *climb*: detach ``x`` from its block (right-edge
        swap, as in ``add``), then leapfrog whole blocks whose frequency
        the target exceeds — all elements of a block share one
        frequency, so crossing a block is a single edge swap plus three
        pointer writes, O(1) regardless of block size — and finally
        land by joining the block at the target frequency or minting a
        singleton in the gap.  O(#blocks crossed + 1) per key, which is
        at most min(count, #blocks) and usually far less.
        """
        m = self._m
        for x in counts:
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        fidx = self._fidx
        free = self._free
        blocks = self._blocks
        recycle = self._recycle
        n = 0
        for x, c in counts.items():
            n += c
            i = ftot[x]
            b = ptrb[i]
            f = b.f
            target = f + c
            if b.l == b.r:
                # x already alone: its block travels (or retunes) with it.
                carry = b
            else:
                # Detach at the right edge; b keeps the rest.
                carry = None
                r = b.r
                if i != r:
                    y = ttof[r]
                    ttof[r] = x
                    ttof[i] = y
                    ftot[x] = r
                    ftot[y] = i
                b.r = r - 1
                i = r
            while True:
                nxt = i + 1
                if nxt < m:
                    right = ptrb[nxt]
                    rf = right.f
                    if rf <= target:
                        if rf == target:
                            # Land: join the target block's left edge.
                            if carry is not None:
                                blocks._n_blocks -= 1
                                if fidx is not None and fidx.get(f) is carry:
                                    del fidx[f]
                                if recycle:
                                    free.append(carry)
                            right.l = i
                            ptrb[i] = right
                            break
                        # Leapfrog the whole block: swap x with its
                        # right-edge element and shift the block left.
                        R = right.r
                        z = ttof[R]
                        ttof[i] = z
                        ttof[R] = x
                        ftot[z] = i
                        ftot[x] = R
                        right.l = i
                        right.r = R - 1
                        ptrb[i] = right
                        i = R
                        continue
                # Land in a gap (or past the topmost block).
                if carry is not None:
                    if fidx is not None:
                        if fidx.get(f) is carry:
                            del fidx[f]
                        fidx[target] = carry
                    carry.l = i
                    carry.r = i
                    carry.f = target
                else:
                    if free:
                        nb = free.pop()
                        nb.l = i
                        nb.r = i
                        nb.f = target
                    else:
                        nb = Block(i, i, target)
                    blocks._n_blocks += 1
                    if fidx is not None:
                        fidx[target] = nb
                    carry = nb
                ptrb[i] = carry
                break
        self._n_adds += n
        return n

    def _bulk_remove(self, counts: Mapping[int, int]) -> int:
        """Remove ``counts[x]`` (> 0) from every key; mirror of
        :meth:`_bulk_add` descending at the left edge."""
        m = self._m
        for x in counts:
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        fidx = self._fidx
        free = self._free
        blocks = self._blocks
        recycle = self._recycle
        strict = not self._allow_negative
        n = 0
        for x, c in counts.items():
            i = ftot[x]
            b = ptrb[i]
            f = b.f
            if strict and c > f:
                # Raised before any of this key's removes apply; keys
                # already processed stay applied (consume's contract).
                self._n_removes += n
                raise FrequencyUnderflowError(
                    f"removing object {x} at frequency {f} "
                    f"{c} times would go negative"
                )
            n += c
            target = f - c
            if b.l == b.r:
                carry = b
            else:
                carry = None
                l = b.l
                if i != l:
                    y = ttof[l]
                    ttof[l] = x
                    ttof[i] = y
                    ftot[x] = l
                    ftot[y] = i
                b.l = l + 1
                i = l
            while True:
                prv = i - 1
                if prv >= 0:
                    left = ptrb[prv]
                    lf = left.f
                    if lf >= target:
                        if lf == target:
                            # Land: join the target block's right edge.
                            if carry is not None:
                                blocks._n_blocks -= 1
                                if fidx is not None and fidx.get(f) is carry:
                                    del fidx[f]
                                if recycle:
                                    free.append(carry)
                            left.r = i
                            ptrb[i] = left
                            break
                        # Leapfrog: swap x with the block's left-edge
                        # element and shift the block right.
                        L = left.l
                        z = ttof[L]
                        ttof[i] = z
                        ttof[L] = x
                        ftot[z] = i
                        ftot[x] = L
                        left.l = L + 1
                        left.r = i
                        ptrb[i] = left
                        i = L
                        continue
                # Land in a gap (or below the bottommost block).
                if carry is not None:
                    if fidx is not None:
                        if fidx.get(f) is carry:
                            del fidx[f]
                        fidx[target] = carry
                    carry.l = i
                    carry.r = i
                    carry.f = target
                else:
                    if free:
                        nb = free.pop()
                        nb.l = i
                        nb.r = i
                        nb.f = target
                    else:
                        nb = Block(i, i, target)
                    blocks._n_blocks += 1
                    if fidx is not None:
                        fidx[target] = nb
                    carry = nb
                ptrb[i] = carry
                break
        self._n_removes += n
        return n

    # ------------------------------------------------------------------
    # Growth (used by DynamicProfiler; amortized O(1) with doubling)
    # ------------------------------------------------------------------

    def grow(self, extra: int) -> None:
        """Extend capacity by ``extra`` fresh objects at frequency 0.

        O(m + extra) rebuild: the new zero-frequency ranks are spliced at
        the position where frequency 0 belongs in the ascending order, so
        the operation is valid in both strict and negative modes.  With
        capacity doubling (as :class:`DynamicProfiler` drives it) the
        amortized cost per registered object is O(1).
        """
        if extra <= 0:
            raise CapacityError(f"extra must be positive, got {extra}")
        old_m = self._m
        new_m = old_m + extra

        # Rank where the zero run begins (first block with f >= 0).
        splice = old_m
        for block in self._blocks.iter_blocks():
            if block.f >= 0:
                splice = block.l
                break

        new_ttof = (
            self._ttof[:splice]
            + list(range(old_m, new_m))
            + self._ttof[splice:]
        )
        runs: list[tuple[int, int, int]] = []
        zero_emitted = False
        for block in self._blocks.iter_blocks():
            l, r, f = block.as_tuple()
            if f < 0:
                runs.append((l, r, f))
            elif f == 0:
                runs.append((l, r + extra, 0))
                zero_emitted = True
            else:
                if not zero_emitted:
                    runs.append((splice, splice + extra - 1, 0))
                    zero_emitted = True
                runs.append((l + extra, r + extra, f))
        if not zero_emitted:
            runs.append((splice, splice + extra - 1, 0))

        self._install(
            new_ttof,
            runs,
            allow_negative=self._allow_negative,
            track_freq_index=self._blocks.tracks_freq_index,
        )

    # ------------------------------------------------------------------
    # Maintained and derived statistics
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """``m`` — number of tracked object ids."""
        return self._m

    @property
    def total(self) -> int:
        """Sum of all frequencies: the current length of array ``A``."""
        return self._base_total + self._n_adds - self._n_removes

    @property
    def active_count(self) -> int:
        """Number of objects with non-zero frequency.  O(#blocks)."""
        zero = self._blocks.block_for_frequency(0)
        if zero is None:
            return self._m
        return self._m - (zero.r - zero.l + 1)

    @property
    def n_adds(self) -> int:
        return self._n_adds

    @property
    def n_removes(self) -> int:
        return self._n_removes

    @property
    def n_events(self) -> int:
        """Total log-stream tuples processed."""
        return self._n_adds + self._n_removes

    @property
    def block_count(self) -> int:
        """Current number of blocks (distinct frequencies)."""
        return self._blocks.n_blocks

    @property
    def allow_negative(self) -> bool:
        return self._allow_negative

    @property
    def mean_frequency(self) -> float:
        """Mean of the frequency array.  O(1)."""
        if self._m == 0:
            return 0.0
        return self.total / self._m

    @property
    def frequency_variance(self) -> float:
        """Population variance of frequencies.  O(#blocks)."""
        if self._m == 0:
            return 0.0
        sum_sq = 0
        for block in self._blocks.iter_blocks():
            sum_sq += block.f * block.f * (block.r - block.l + 1)
        mean = self.total / self._m
        variance = sum_sq / self._m - mean * mean
        # Guard the tiny negative residue floating-point cancellation
        # can leave when all frequencies are equal.
        return max(variance, 0.0)

    @property
    def blocks(self) -> BlockSet:
        """Read access to the underlying block set."""
        return self._blocks

    # O(1) overrides of the mixin's generic lookups — these sit inside
    # benchmark timing loops, so they skip the block_at plumbing.

    def max_frequency(self) -> int:
        """The largest frequency (the mode's frequency).  O(1)."""
        if self._m == 0:
            return self._blocks.rightmost().f  # raises EmptyProfileError
        return self._ptrb[self._m - 1].f

    def min_frequency(self) -> int:
        """The smallest frequency.  O(1)."""
        if self._m == 0:
            return self._blocks.leftmost().f  # raises EmptyProfileError
        return self._ptrb[0].f

    def median_frequency(self) -> int:
        """Lower median of the frequency array.  O(1)."""
        m = self._m
        if m == 0:
            return self._capacity_checked()  # raises EmptyProfileError
        return self._ptrb[(m - 1) // 2].f

    # ------------------------------------------------------------------
    # Structure management
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Reset every frequency to zero (keeps capacity and settings)."""
        track = self._blocks.tracks_freq_index
        self._ftot = list(range(self._m))
        self._ttof = list(range(self._m))
        self._blocks = BlockSet(
            self._m,
            0,
            track_freq_index=track,
            pool=BlockPool(max_free=self._m),
        )
        self._sync_aliases()
        self._base_total = 0
        self._n_adds = 0
        self._n_removes = 0

    def copy(self) -> "SProfile":
        """Independent deep copy of the profiler."""
        clone = SProfile(0, allow_negative=self._allow_negative)
        clone._install(
            list(self._ttof),
            self._blocks.as_tuples(),
            allow_negative=self._allow_negative,
            track_freq_index=self._blocks.tracks_freq_index,
        )
        clone._recycle = self._recycle
        clone._base_total = self._base_total
        clone._n_adds = self._n_adds
        clone._n_removes = self._n_removes
        return clone

    def snapshot(self):
        """Frozen point-in-time copy answering the same queries."""
        from repro.core.snapshot import ProfileSnapshot

        return ProfileSnapshot.of(self)

    def frequencies(self) -> list[int]:
        """Materialize the frequency array ``F`` (O(m); for inspection)."""
        out = [0] * self._m
        ttof = self._ttof
        for block in self._blocks.iter_blocks():
            f = block.f
            for rank in range(block.l, block.r + 1):
                out[ttof[rank]] = f
        return out

    def _install(
        self,
        ttof: list[int],
        runs: list[tuple[int, int, int]],
        *,
        allow_negative: bool,
        track_freq_index: bool,
        audit: bool = True,
    ) -> None:
        """Replace the permutation and block structure wholesale.

        ``audit=False`` skips the O(m) structural verification; only
        for runs that are correct by construction (see
        :meth:`~repro.core.blockset.BlockSet.from_runs`).
        """
        m = len(ttof)
        ftot = [0] * m
        for rank, obj in enumerate(ttof):
            ftot[obj] = rank
        self._m = m
        self._ttof = ttof
        self._ftot = ftot
        self._blocks = BlockSet.from_runs(
            m,
            runs,
            track_freq_index=track_freq_index,
            pool=BlockPool(max_free=m),
            audit=audit,
        )
        self._sync_aliases()
        self._allow_negative = allow_negative

    def _sync_aliases(self) -> None:
        """Refresh the hot-path aliases after a structure swap.

        ``_ptrb``, ``_fidx`` and ``_free`` alias block-set internals so
        the O(1) update path spends one attribute load fewer per event;
        any code replacing ``self._blocks`` must call this.
        """
        self._ptrb = self._blocks._ptrb
        self._fidx = self._blocks._freq_index
        self._free = self._blocks._pool._free

    def __repr__(self) -> str:
        return (
            f"SProfile(capacity={self._m}, total={self.total}, "
            f"blocks={self._blocks.n_blocks}, events={self.n_events})"
        )


def _runs_from_sorted(
    ttof: Sequence[int], freqs: Sequence[int]
) -> list[tuple[int, int, int]]:
    """Compute ``(l, r, f)`` runs of equal frequency along sorted ranks."""
    runs: list[tuple[int, int, int]] = []
    m = len(ttof)
    rank = 0
    while rank < m:
        f = freqs[ttof[rank]]
        start = rank
        while rank + 1 < m and freqs[ttof[rank + 1]] == f:
            rank += 1
        runs.append((start, rank, f))
        rank += 1
    return runs
