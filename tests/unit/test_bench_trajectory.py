"""Unit tests for the perf-trajectory runner's non-timing machinery.

The timers themselves run for seconds (exercised by the CI bench-smoke
job and ``benchmarks/``); here we pin the artifact schema, the ratio
extraction, and the regression-gate arithmetic on fabricated payloads.
"""

import json

import pytest

from repro.bench.trajectory import (
    SCALES,
    TRAJECTORY_VERSION,
    check_regressions,
    main,
)


def payload(single=2.0, batch=4.5, sharded=2.5, plan=1.7):
    def stream_entry(speedup):
        return {
            "sprofile_eps": 2e6,
            "flat_eps": 2e6 * speedup,
            "speedup": speedup,
        }

    return {
        "version": TRAJECTORY_VERSION,
        "scale": "full",
        "rounds": 1,
        "python": "3.11",
        "paths": {
            "single_event_mode": {
                "workload": "fig-3 (fabricated)",
                "streams": {
                    "stream1": stream_entry(single),
                    "stream2": stream_entry(single),
                },
                "geomean_speedup": single,
            },
            "batch_ingest": {
                "workload": "batch (fabricated)",
                "sprofile_eps": 7e6,
                "flat_eps": 7e6 * batch,
                "speedup": batch,
            },
            "sharded_batch": {
                "workload": "sharded (fabricated)",
                "sprofile_eps": 3e6,
                "flat_eps": 3e6 * sharded,
                "speedup": sharded,
            },
            "fused_plan": {
                "workload": "plan (fabricated)",
                "separate_plans_per_sec": 4000.0,
                "fused_plans_per_sec": 4000.0 * plan,
                "speedup": plan,
            },
        },
    }


class TestCheckRegressions:
    def test_identical_payloads_pass(self):
        assert check_regressions(payload(), payload()) == []

    def test_small_drift_within_tolerance_passes(self):
        current = payload(single=1.6)  # 20% below the 2.0 baseline
        assert check_regressions(current, payload(), 0.30) == []

    def test_big_drop_fails_with_named_key(self):
        current = payload(batch=2.0)  # >50% below the 4.5 baseline
        problems = check_regressions(current, payload(), 0.30)
        assert len(problems) == 1
        assert "batch_ingest.speedup" in problems[0]

    def test_per_stream_ratios_are_gated(self):
        current = payload()
        current["paths"]["single_event_mode"]["streams"]["stream2"][
            "speedup"
        ] = 0.9
        problems = check_regressions(current, payload(), 0.30)
        assert any("stream2" in p for p in problems)

    def test_keys_missing_from_baseline_are_ignored(self):
        base = payload()
        del base["paths"]["fused_plan"]
        current = payload(plan=0.1)
        assert check_regressions(current, base, 0.30) == []

    def test_improvements_never_fail(self):
        assert check_regressions(payload(single=9.9), payload()) == []

    def test_cross_scale_runs_are_never_compared(self):
        """Ratios shift with workload size; a quick run gated against
        a full-scale-only baseline must compare nothing rather than
        eat scale drift out of the tolerance."""
        current = payload(single=0.1, batch=0.1, sharded=0.1, plan=0.1)
        current["scale"] = "quick"
        assert check_regressions(current, payload(), 0.30) == []

    def test_both_scale_baseline_gates_matching_scale(self):
        quick_base = payload()
        quick_base["scale"] = "quick"
        both = payload()
        both["scale"] = "both"
        both["quick"] = quick_base
        good = payload()
        good["scale"] = "quick"
        assert check_regressions(good, both, 0.30) == []
        bad = payload(batch=1.0)
        bad["scale"] = "quick"
        problems = check_regressions(bad, both, 0.30)
        assert len(problems) == 1
        assert "quick.batch_ingest.speedup" in problems[0]


def parallel_path(cpus, speedups):
    """Fabricated parallel_batch entry: {workers -> speedup}."""
    max_w = max(int(w) for w in speedups)
    return {
        "workload": "parallel (fabricated)",
        "cpus": cpus,
        "max_workers": max_w,
        "flat_eps": 10e6,
        "workers": {
            str(w): {"eps": 10e6 * s, "speedup": s}
            for w, s in speedups.items()
        },
        "speedup": speedups[max_w],
    }


class TestParallelGate:
    """Parallel ratios gate only within the measuring machine's cores."""

    def test_worker_ratios_within_cpu_budget_are_gated(self):
        base = payload()
        base["paths"]["parallel_batch"] = parallel_path(
            4, {1: 1.0, 2: 1.8, 4: 3.0}
        )
        bad = payload()
        bad["paths"]["parallel_batch"] = parallel_path(
            4, {1: 1.0, 2: 0.5, 4: 3.0}
        )
        problems = check_regressions(bad, base, 0.30)
        assert any("parallel_batch.w2" in p for p in problems)

    def test_worker_ratios_beyond_cpu_budget_are_ignored(self):
        """A 1-core box measuring 4 workers measures IPC overhead, not
        parallelism — its w2/w4 ratios must not gate anything."""
        base = payload()
        base["paths"]["parallel_batch"] = parallel_path(
            4, {1: 1.0, 2: 1.8, 4: 3.0}
        )
        current = payload()
        current["paths"]["parallel_batch"] = parallel_path(
            1, {1: 1.0, 2: 0.2, 4: 0.1}
        )
        assert check_regressions(current, base, 0.30) == []

    def test_only_per_worker_keys_gate_within_the_core_budget(self):
        """Worker-sweep paths never gate through the headline
        "speedup" (its meaning shifts with the sweep), and wN keys
        above the machine's core count are excluded."""
        entries = dict(
            __import__("repro.bench.trajectory", fromlist=["x"])
            ._speedup_entries(
                {
                    "scale": "full",
                    "paths": {
                        "parallel_batch": parallel_path(
                            2, {1: 1.0, 2: 1.8, 4: 0.9}
                        )
                    },
                }
            )
        )
        assert "full.parallel_batch.w1.speedup" in entries
        assert "full.parallel_batch.w2.speedup" in entries
        assert "full.parallel_batch.w4.speedup" not in entries
        assert "full.parallel_batch.speedup" not in entries


class TestScales:
    def test_both_scales_define_the_same_knobs(self):
        assert set(SCALES) == {"full", "quick"}
        assert set(SCALES["full"]) == set(SCALES["quick"])

    def test_quick_is_smaller(self):
        assert SCALES["quick"]["single_n"] < SCALES["full"]["single_n"]
        assert (
            SCALES["quick"]["batch_count"] < SCALES["full"]["batch_count"]
        )


class TestCliCheckPath:
    def test_missing_baseline_warns_but_passes(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "repro.bench.trajectory.run_trajectory",
            lambda scale, **kw: payload(),
        )
        out = tmp_path / "out.json"
        code = main(
            [
                "--quick",
                "--out",
                str(out),
                "--check",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 0
        assert "first run" in capsys.readouterr().err
        assert json.loads(out.read_text())["version"] == TRAJECTORY_VERSION

    def test_regression_fails_unless_warn_only(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "repro.bench.trajectory.run_trajectory",
            lambda scale, **kw: payload(batch=1.0),
        )
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(payload()))
        out = tmp_path / "out.json"
        args = ["--out", str(out), "--check", str(baseline)]
        assert main(args) == 1
        assert "REGRESSION" in capsys.readouterr().err
        assert main(args + ["--warn-only"]) == 0

    def test_clean_run_reports_gate_passed(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "repro.bench.trajectory.run_trajectory",
            lambda scale, **kw: payload(),
        )
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(payload()))
        code = main(
            ["--out", str(tmp_path / "o.json"), "--check", str(baseline)]
        )
        assert code == 0
        assert "gate passed" in capsys.readouterr().out


class TestCommittedArtifact:
    def test_repo_baseline_is_valid_and_meets_targets(self):
        """The committed BENCH_core.json parses, matches the schema,
        and records the tentpole's acceptance ratios."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        artifact = root / "BENCH_core.json"
        assert artifact.exists(), "BENCH_core.json must be committed"
        data = json.loads(artifact.read_text())
        assert data["version"] == TRAJECTORY_VERSION
        # Committed as a combined payload so CI's quick runs gate
        # against same-scale ratios.
        assert data["scale"] == "both"
        assert data["quick"]["scale"] == "quick"
        paths = data["paths"]
        single = paths["single_event_mode"]
        # Floor at 1.6, not the headline "~2x": regenerating the
        # artifact across sessions measures 1.7-2.06 — the shared box
        # drifts between host phases where the flat loop tops out near
        # 4.4M ev/s and phases near 3.8M while SProfile holds ~2.2M
        # (verified code-identical across sessions by interleaving
        # checkouts).  The ratio-to-ratio CI gate with 30% tolerance
        # is the real regression tripwire; this floor only keeps the
        # committed artifact from drifting away from the documented
        # 1.7-2x claim.
        assert single["geomean_speedup"] >= 1.6
        assert paths["batch_ingest"]["speedup"] >= 4.0
        for stream in ("stream1", "stream2", "stream3"):
            assert single["streams"][stream]["flat_eps"] > 0
        # The parallel_batch path carries the worker-scaling curve and
        # the machine's core count (which scopes what the gate may
        # compare — see _speedup_entries).
        for section in (paths, data["quick"]["paths"]):
            par = section["parallel_batch"]
            assert par["cpus"] >= 1
            assert set(par["workers"]) == {"1", "2", "4"}
            assert par["flat_eps"] > 0
            # w1 isolates the array engine's in-place dense rebuild
            # (plus IPC) against the list engine — a same-core win the
            # committed artifact must keep showing.
            assert par["workers"]["1"]["speedup"] > 1.0
            if par["cpus"] >= par["max_workers"]:
                # On a machine that can host the full sweep, the
                # committed curve must meet the tentpole bar: >= 2.5x
                # at 4 workers and monotone 1 -> 2 -> 4.
                w = {int(k): v["speedup"] for k, v in par["workers"].items()}
                assert w[1] <= w[2] <= w[4]
                assert par["speedup"] >= 2.5


def serve_path(speedups, binary_speedups=None):
    """Fabricated serve entry: {client count -> speedup}."""
    top = str(max(int(c) for c in speedups))
    clients = {
        str(c): {
            "unbatched_eps": 10e3,
            "batched_eps": 10e3 * s,
            "speedup": s,
            "unbatched_p50_ms": 5.0,
            "unbatched_p99_ms": 9.0,
            "batched_p50_ms": 2.0,
            "batched_p99_ms": 4.0,
        }
        for c, s in speedups.items()
    }
    for c, s in (binary_speedups or {}).items():
        clients[str(c)].update(
            {
                "codec_json_eps": 300e3,
                "binary_eps": 300e3 * s,
                "binary_speedup": s,
                "binary_p50_ms": 1.0,
                "binary_p99_ms": 2.0,
            }
        )
    return {
        "workload": "serve (fabricated)",
        "events": 6400,
        "wire_batch": 64,
        "batch_max": 512,
        "linger_ms": 1.0,
        "clients": clients,
        "speedup": speedups[int(top)],
    }


class TestServeGate:
    """The serve path gates per client count, never via the headline."""

    def test_per_client_keys_gate(self):
        base = payload()
        base["paths"]["serve"] = serve_path({1: 8.0, 4: 7.0, 16: 6.0})
        bad = payload()
        bad["paths"]["serve"] = serve_path({1: 8.0, 4: 2.0, 16: 6.0})
        problems = check_regressions(bad, base, 0.30)
        assert len(problems) == 1
        assert "serve.c4" in problems[0]

    def test_binary_codec_ratio_gates_per_client_count(self):
        base = payload()
        base["paths"]["serve"] = serve_path(
            {1: 8.0, 16: 6.0}, {1: 9.0, 16: 9.0}
        )
        bad = payload()
        bad["paths"]["serve"] = serve_path(
            {1: 8.0, 16: 6.0}, {1: 9.0, 16: 3.0}
        )
        problems = check_regressions(bad, base, 0.30)
        assert len(problems) == 1
        assert "serve.binary.c16" in problems[0]

    def test_json_only_payload_never_gates_binary_keys(self):
        # A numpy-less measuring box emits no binary entries; the gate
        # must skip the binary key family, not fail it.
        base = payload()
        base["paths"]["serve"] = serve_path(
            {1: 8.0, 16: 6.0}, {1: 9.0, 16: 9.0}
        )
        current = payload()
        current["paths"]["serve"] = serve_path({1: 8.0, 16: 6.0})
        assert check_regressions(current, base, 0.30) == []

    def test_headline_speedup_is_not_a_gate_key(self):
        from repro.bench.trajectory import _speedup_entries

        entries = dict(
            _speedup_entries(
                {
                    "scale": "full",
                    "paths": {"serve": serve_path({1: 8.0, 16: 6.0})},
                }
            )
        )
        assert "full.serve.c1.speedup" in entries
        assert "full.serve.c16.speedup" in entries
        assert "full.serve.speedup" not in entries

    def test_serve_scale_knobs_exist_at_both_scales(self):
        for scale in ("full", "quick"):
            cfg = SCALES[scale]
            assert cfg["serve_clients"] == (1, 4, 16)
            assert cfg["serve_batch_max"] == 512
            assert cfg["serve_events"] % 16 == 0
            assert cfg["serve_codec_events"] % 16 == 0
            # Bulk-transfer frames: the codec duel needs every client
            # shipping multiple full frames even at 16 clients.
            assert cfg["serve_codec_events"] >= 16 * 2 * cfg["serve_codec_wire"]


class TestCommittedServeArtifact:
    def test_repo_baseline_meets_the_serving_bar(self):
        """The committed artifact must show micro-batching (batch-max
        512) sustaining >= 3x unbatched one-event-per-frame ingestion
        at 16 concurrent clients, at both scales, with ack-latency
        percentiles recorded."""
        import json as json_mod
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        data = json_mod.loads((root / "BENCH_core.json").read_text())
        for section in (data["paths"], data["quick"]["paths"]):
            serve = section["serve"]
            assert serve["batch_max"] == 512
            assert set(serve["clients"]) == {"1", "4", "16"}
            assert serve["clients"]["16"]["speedup"] >= 3.0
            assert serve["speedup"] == serve["clients"]["16"]["speedup"]
            for entry in serve["clients"].values():
                assert entry["unbatched_eps"] > 0
                assert entry["batched_eps"] > entry["unbatched_eps"]
                for key in (
                    "unbatched_p50_ms",
                    "unbatched_p99_ms",
                    "batched_p50_ms",
                    "batched_p99_ms",
                ):
                    assert entry[key] > 0

    def test_repo_baseline_meets_the_binary_codec_bar(self):
        """The committed artifact must show the binary codec beating
        JSON by >= 3x events/sec at 16 clients (both scales), measured
        at identical bulk-transfer batching knobs."""
        import json as json_mod
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        data = json_mod.loads((root / "BENCH_core.json").read_text())
        for section in (data["paths"], data["quick"]["paths"]):
            serve = section["serve"]
            assert serve["codec_wire"] >= 1024
            assert serve["binary_speedup"] >= 3.0
            top = serve["clients"]["16"]
            assert top["binary_speedup"] >= 3.0
            assert top["binary_eps"] > top["codec_json_eps"] > 0
            for entry in serve["clients"].values():
                assert entry["binary_speedup"] > 1.0
                assert entry["binary_p50_ms"] > 0
                assert entry["binary_p99_ms"] > 0


def cluster_path(cpus, speedups, failover=None):
    """Fabricated cluster entry: {replica count -> speedup}."""
    max_r = max(int(r) for r in speedups)
    out = {
        "workload": "cluster (fabricated)",
        "events": 16384,
        "wire_batch": 1024,
        "batch_max": 1024,
        "linger_ms": 1.0,
        "snapshot_every": 8,
        "codec": "binary",
        "cpus": cpus,
        "max_replicas": max_r,
        "direct_eps": 2e6,
        "replicas": {
            str(r): {"eps": 2e6 * s, "speedup": s}
            for r, s in speedups.items()
        },
        "speedup": speedups[max_r],
    }
    if failover is not None:
        promotion, migration = failover
        out["failover"] = {
            "workload": "failover (fabricated)",
            "prime_events": 8192,
            "promotion_ms": 50.0,
            "promotion_speed": promotion,
            "steady_eps": 150e3,
            "migrating_eps": 150e3 * migration,
            "migration_overhead": migration,
        }
    return out


class TestClusterGate:
    """Cluster ratios gate per replica count, within the core budget."""

    def test_replica_ratios_within_cpu_budget_are_gated(self):
        base = payload()
        base["paths"]["cluster"] = cluster_path(
            4, {1: 0.5, 2: 0.8, 4: 1.4}
        )
        bad = payload()
        bad["paths"]["cluster"] = cluster_path(
            4, {1: 0.5, 2: 0.2, 4: 1.4}
        )
        problems = check_regressions(bad, base, 0.30)
        assert len(problems) == 1
        assert "cluster.r2" in problems[0]

    def test_replica_ratios_beyond_cpu_budget_are_ignored(self):
        """A 1-core box hosting 4 replica subprocesses measures
        scheduling overhead, not replication — its r2/r4 ratios must
        not gate anything."""
        base = payload()
        base["paths"]["cluster"] = cluster_path(
            4, {1: 0.5, 2: 0.8, 4: 1.4}
        )
        current = payload()
        current["paths"]["cluster"] = cluster_path(
            1, {1: 0.5, 2: 0.1, 4: 0.05}
        )
        assert check_regressions(current, base, 0.30) == []

    def test_headline_speedup_is_not_a_gate_key(self):
        from repro.bench.trajectory import _speedup_entries

        entries = dict(
            _speedup_entries(
                {
                    "scale": "full",
                    "paths": {
                        "cluster": cluster_path(
                            2, {1: 0.5, 2: 0.8, 4: 1.4}
                        )
                    },
                }
            )
        )
        assert "full.cluster.r1.speedup" in entries
        assert "full.cluster.r2.speedup" in entries
        assert "full.cluster.r4.speedup" not in entries
        assert "full.cluster.speedup" not in entries

    def test_failover_ratios_are_gated(self):
        base = payload()
        base["paths"]["cluster"] = cluster_path(
            4, {1: 0.5, 2: 0.8, 4: 1.4}, failover=(1.2, 0.4)
        )
        slow_promote = payload()
        slow_promote["paths"]["cluster"] = cluster_path(
            4, {1: 0.5, 2: 0.8, 4: 1.4}, failover=(0.4, 0.4)
        )
        problems = check_regressions(slow_promote, base, 0.30)
        assert len(problems) == 1
        assert "cluster.failover.promotion_speed" in problems[0]

        slow_migrate = payload()
        slow_migrate["paths"]["cluster"] = cluster_path(
            4, {1: 0.5, 2: 0.8, 4: 1.4}, failover=(1.2, 0.1)
        )
        problems = check_regressions(slow_migrate, base, 0.30)
        assert len(problems) == 1
        assert "cluster.failover.migration_overhead" in problems[0]

    def test_failover_ratios_gate_even_on_one_core(self):
        """promotion_speed and migration_overhead are self-normalizing
        (same box runs both legs), so unlike the r2/r4 throughput
        ratios they gate without cpu scoping."""
        base = payload()
        base["paths"]["cluster"] = cluster_path(
            4, {1: 0.5, 2: 0.8, 4: 1.4}, failover=(1.2, 0.4)
        )
        current = payload()
        current["paths"]["cluster"] = cluster_path(
            1, {1: 0.5, 2: 0.8, 4: 1.4}, failover=(0.3, 0.4)
        )
        problems = check_regressions(current, base, 0.30)
        assert len(problems) == 1
        assert "cluster.failover.promotion_speed" in problems[0]

    def test_payload_without_failover_yields_no_failover_keys(self):
        from repro.bench.trajectory import _speedup_entries

        entries = dict(
            _speedup_entries(
                {
                    "scale": "full",
                    "paths": {
                        "cluster": cluster_path(
                            2, {1: 0.5, 2: 0.8, 4: 1.4}
                        )
                    },
                }
            )
        )
        assert not any("failover" in key for key in entries)

    def test_cluster_scale_knobs_exist_at_both_scales(self):
        for scale in ("full", "quick"):
            cfg = SCALES[scale]
            assert cfg["cluster_m"] >= cfg["cluster_wire"]
            assert cfg["cluster_events"] % cfg["cluster_wire"] == 0
            # The timed stream must cross several snapshot cycles so
            # the steady-state recovery-machinery price is measured.
            frames = cfg["cluster_events"] // cfg["cluster_wire"]
            assert frames >= 2 * cfg["cluster_snapshot_every"]


class TestCommittedClusterArtifact:
    def test_repo_baseline_records_the_replicated_tier(self):
        """The committed artifact carries the cluster path at both
        scales: router + 1/2/4 replicas vs direct serve, with the
        machine's core count scoping what the gate may compare."""
        import json as json_mod
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        data = json_mod.loads((root / "BENCH_core.json").read_text())
        for section in (data["paths"], data["quick"]["paths"]):
            clu = section["cluster"]
            assert clu["cpus"] >= 1
            assert set(clu["replicas"]) == {"1", "2", "4"}
            assert clu["direct_eps"] > 0
            assert clu["snapshot_every"] >= 1
            for entry in clu["replicas"].values():
                assert entry["eps"] > 0
                assert entry["speedup"] > 0
            assert (
                clu["speedup"]
                == clu["replicas"][str(clu["max_replicas"])]["speedup"]
            )

    def test_repo_baseline_records_failover(self):
        """Both scales carry the failover block: promotion downtime
        plus the double-write migration duel, with migration always
        costing something (steady > migrating throughput)."""
        import json as json_mod
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        data = json_mod.loads((root / "BENCH_core.json").read_text())
        for section in (data["paths"], data["quick"]["paths"]):
            failover = section["cluster"]["failover"]
            assert failover["prime_events"] >= 1
            assert failover["promotion_ms"] > 0
            assert failover["promotion_speed"] > 0
            assert failover["steady_eps"] > failover["migrating_eps"] > 0
            assert 0 < failover["migration_overhead"] < 1
            ratio = failover["migrating_eps"] / failover["steady_eps"]
            assert abs(failover["migration_overhead"] - ratio) < 1e-6
