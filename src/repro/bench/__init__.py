"""Benchmark harness regenerating the paper's evaluation.

Every figure of the paper's section 3 maps to an experiment definition
in :mod:`repro.bench.figures`; run them via::

    python -m repro bench --figure 3
    python -m repro bench --all

or through the pytest-benchmark files under ``benchmarks/``.

The harness measures what the paper measures: the wall-clock cost of
*processing the stream while keeping the statistic current* — each event
applies one ±1 update and reads the statistic (mode for figures 3-5,
median for figure 6).
"""

from repro.bench.figures import (
    FIGURES,
    FigureResult,
    SCALES,
    run_figure,
)
from repro.bench.reporting import format_figure, format_series_table
from repro.bench.runner import (
    SeriesResult,
    time_mode_workload,
    time_median_workload,
    time_update_only,
)
from repro.bench.trajectory import (
    TRAJECTORY_VERSION,
    check_regressions,
    run_trajectory,
)
from repro.bench.workloads import build_stream, workload_for

__all__ = [
    "FIGURES",
    "FigureResult",
    "SCALES",
    "SeriesResult",
    "TRAJECTORY_VERSION",
    "build_stream",
    "check_regressions",
    "format_figure",
    "format_series_table",
    "run_figure",
    "run_trajectory",
    "time_median_workload",
    "time_mode_workload",
    "time_update_only",
    "workload_for",
]
