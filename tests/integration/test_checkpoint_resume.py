"""Integration: checkpoint mid-stream, resume, converge with full run."""

from repro.core.checkpoint import load_profile, save_profile
from repro.core.profile import SProfile
from repro.core.validation import audit_profile
from repro.streams.generators import generate_stream, paper_stream


def test_checkpoint_resume_equals_uninterrupted_run(tmp_path):
    universe = 100
    stream = generate_stream(paper_stream("stream2", 6000, universe, seed=5))
    ids, adds = stream.arrays()

    # Uninterrupted run.
    full = SProfile(universe)
    full.consume_arrays(ids, adds)

    # Interrupted run: process half, checkpoint to disk, restore, finish.
    half = SProfile(universe)
    half.consume_arrays(ids[:3000], adds[:3000])
    path = tmp_path / "mid.json"
    save_profile(half, path)
    resumed = load_profile(path)
    resumed.consume_arrays(ids[3000:], adds[3000:])

    audit_profile(resumed)
    assert resumed.frequencies() == full.frequencies()
    assert resumed.total == full.total
    assert resumed.n_events == full.n_events
    assert resumed.mode() == full.mode()
    assert resumed.blocks.as_tuples() == full.blocks.as_tuples()


def test_snapshot_sequence_is_consistent_history(tmp_path):
    universe = 50
    stream = generate_stream(paper_stream("stream1", 2000, universe, seed=9))
    profile = SProfile(universe)
    snapshots = []
    for event in stream:
        profile.update(event.obj, event.is_add)
        if profile.n_events % 500 == 0:
            snapshots.append(profile.snapshot())

    # Totals along the snapshot history must match event accounting.
    assert [snap.n_events for snap in snapshots] == [500, 1000, 1500, 2000]
    for snap in snapshots:
        assert sum(snap.frequencies()) == snap.total
    # The last snapshot equals the live profile.
    assert snapshots[-1].frequencies() == profile.frequencies()
