"""Checkpointing: serialize a profiler to a plain dict and back.

The state format is JSON-safe (ints, lists, strings only) and versioned.
Restoring audits the rebuilt structure, so a corrupted or hand-edited
checkpoint fails loudly with :class:`~repro.errors.CheckpointError`
instead of silently producing wrong statistics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.flat import FlatProfile
from repro.core.profile import SProfile
from repro.core.validation import audit_profile
from repro.errors import CheckpointError, InvariantViolationError

__all__ = [
    "STATE_VERSION",
    "ARRAY_STATE_VERSION",
    "profile_to_state",
    "profile_from_state",
    "flat_profile_from_state",
    "flat_profile_to_array_state",
    "flat_profile_from_array_state",
    "save_profile",
    "load_profile",
]

#: Bump when the state layout changes incompatibly.
STATE_VERSION = 1

#: Bump when the buffer-level array state layout changes incompatibly.
ARRAY_STATE_VERSION = 1

_REQUIRED_KEYS = frozenset(
    {
        "version",
        "capacity",
        "allow_negative",
        "track_freq_index",
        "ttof",
        "runs",
        "n_adds",
        "n_removes",
    }
)


def profile_to_state(profile) -> dict[str, Any]:
    """Capture the full state of a profiler as a JSON-safe dict.

    Works on any profiler exposing the block-structured contract —
    :class:`~repro.core.profile.SProfile` and
    :class:`~repro.core.flat.FlatProfile` share one schema, so a
    checkpoint written by either engine restores into either
    (:func:`profile_from_state` / :func:`flat_profile_from_state`).
    """
    ttof = profile._ttof
    return {
        "version": STATE_VERSION,
        "capacity": profile.capacity,
        "allow_negative": profile.allow_negative,
        "track_freq_index": profile.blocks.tracks_freq_index,
        # tolist() (array engine) yields plain Python ints, keeping
        # np.int64 scalars out of the JSON-safe payload.
        "ttof": ttof.tolist() if hasattr(ttof, "tolist") else list(ttof),
        "runs": [list(run) for run in profile.blocks.as_tuples()],
        "n_adds": profile.n_adds,
        "n_removes": profile.n_removes,
    }


def _restore(state: dict[str, Any], install):
    """Shared validate/install/re-anchor/audit pipeline of both engines.

    ``install(ttof, runs, state)`` builds and returns the profile from
    the validated permutation and runs; everything around it — schema
    checks, counter restoration, the base-total re-anchor, and the
    post-restore audit — is engine-independent, so the two restore
    paths cannot drift.
    """
    if not isinstance(state, dict):
        raise CheckpointError(
            f"state must be a dict, got {type(state).__name__}"
        )
    missing = _REQUIRED_KEYS - state.keys()
    if missing:
        raise CheckpointError(f"state is missing keys: {sorted(missing)}")
    if state["version"] != STATE_VERSION:
        raise CheckpointError(
            f"state version {state['version']} unsupported "
            f"(expected {STATE_VERSION})"
        )
    capacity = state["capacity"]
    ttof = state["ttof"]
    runs = state["runs"]
    if not isinstance(capacity, int) or capacity < 0:
        raise CheckpointError(f"bad capacity: {capacity!r}")
    if len(ttof) != capacity:
        raise CheckpointError(
            f"ttof length {len(ttof)} != capacity {capacity}"
        )

    try:
        profile = install(
            [int(x) for x in ttof],
            [tuple(int(v) for v in run) for run in runs],
            state,
        )
    except (InvariantViolationError, ValueError, TypeError, IndexError) as exc:
        raise CheckpointError(
            f"state does not describe a valid profile: {exc}"
        ) from exc

    profile._n_adds = int(state["n_adds"])
    profile._n_removes = int(state["n_removes"])
    # Re-anchor the total: current block mass minus net event delta
    # gives the mass the profile carried before its first event.
    total = 0
    for block in profile.blocks.iter_blocks():
        total += block.f * (block.r - block.l + 1)
    profile._base_total = total - (profile._n_adds - profile._n_removes)

    try:
        audit_profile(profile)
    except InvariantViolationError as exc:
        raise CheckpointError(f"restored profile failed audit: {exc}") from exc
    return profile


def profile_from_state(state: dict[str, Any]) -> SProfile:
    """Rebuild a block-object profiler from :func:`profile_to_state`
    output.  Validates structure before and after the rebuild.
    """

    def install(ttof, runs, st):
        profile = SProfile(0, allow_negative=bool(st["allow_negative"]))
        profile._install(
            ttof,
            runs,
            allow_negative=bool(st["allow_negative"]),
            track_freq_index=bool(st["track_freq_index"]),
        )
        return profile

    return _restore(state, install)


def flat_profile_from_state(
    state: dict[str, Any], *, array_engine: bool = False
) -> FlatProfile:
    """Rebuild a :class:`~repro.core.flat.FlatProfile` from
    :func:`profile_to_state` output (same schema as the block-object
    engine; ``track_freq_index`` is accepted and ignored — the flat
    engine answers ``support`` from the run walk).

    ``array_engine=True`` restores onto numpy-buffer storage (requires
    numpy).  Validates structure before and after the rebuild.
    """

    def install(ttof, runs, st):
        profile = FlatProfile(
            0,
            allow_negative=bool(st["allow_negative"]),
            array_engine=array_engine,
        )
        profile._install_runs(ttof, runs)
        return profile

    return _restore(state, install)


def flat_profile_to_array_state(profile: FlatProfile) -> dict[str, Any]:
    """Buffer-level checkpoint of a flat profile: O(1) Python objects
    per buffer.

    For an array-engine profile the six structure entries are
    **zero-copy ndarray views** of the live buffers (``bl``/``bre``/
    ``bf`` sliced to the minted prefix) — no per-element boxing, no
    copying; freeze them (``.copy()``) before mutating the source if
    the state must outlive it.  List-engine profiles are converted
    through one C-speed ``np.asarray`` pass per buffer.

    Not JSON-safe (holds ndarrays); for the portable JSON schema use
    :func:`profile_to_state`.  Restore with
    :func:`flat_profile_from_array_state`.
    """
    import numpy as np

    bn = profile.block_slots
    if profile._array:
        ftot, ttof, ptrb = profile._ftot, profile._ttof, profile._ptrb
        bl = profile._bl[:bn]
        bre = profile._bre[:bn]
        bf = profile._bf[:bn]
    else:
        ftot = np.asarray(profile._ftot, dtype=np.int64)
        ttof = np.asarray(profile._ttof, dtype=np.int64)
        ptrb = np.asarray(profile._ptrb, dtype=np.int64)
        bl = np.asarray(profile._bl, dtype=np.int64)
        bre = np.asarray(profile._bre, dtype=np.int64)
        bf = np.asarray(profile._bf, dtype=np.int64)
    return {
        "version": ARRAY_STATE_VERSION,
        "capacity": profile._m,
        "allow_negative": profile._allow_negative,
        "block_slots": bn,
        "free_head": int(profile._free_head),
        "n_adds": profile._n_adds,
        "n_removes": profile._n_removes,
        "base_total": profile._base_total,
        "last_tracked": int(profile._last_tracked),
        "ftot": ftot,
        "ttof": ttof,
        "ptrb": ptrb,
        "bl": bl,
        "bre": bre,
        "bf": bf,
    }


def flat_profile_from_array_state(
    state: dict[str, Any], *, copy: bool = True
) -> FlatProfile:
    """Rebuild an array-engine :class:`FlatProfile` from
    :func:`flat_profile_to_array_state` output.

    ``copy=False`` adopts the provided arrays without copying (the
    caller relinquishes them).  The rebuilt structure is fully audited
    — including the permutation inverse, which the run-level schema
    gets for free but a raw buffer dump must prove.
    """
    import numpy as np

    if not isinstance(state, dict):
        raise CheckpointError(
            f"state must be a dict, got {type(state).__name__}"
        )
    required = {
        "version",
        "capacity",
        "allow_negative",
        "block_slots",
        "free_head",
        "n_adds",
        "n_removes",
        "base_total",
        "last_tracked",
        "ftot",
        "ttof",
        "ptrb",
        "bl",
        "bre",
        "bf",
    }
    missing = required - state.keys()
    if missing:
        raise CheckpointError(f"state is missing keys: {sorted(missing)}")
    if state["version"] != ARRAY_STATE_VERSION:
        raise CheckpointError(
            f"array state version {state['version']} unsupported "
            f"(expected {ARRAY_STATE_VERSION})"
        )
    m = int(state["capacity"])
    bn = int(state["block_slots"])
    if m < 0 or bn < 0 or bn > max(m, 1):
        raise CheckpointError(
            f"bad capacity/slot counts: m={m}, block_slots={bn}"
        )

    def adopt(key, length):
        arr = np.asarray(state[key], dtype=np.int64)
        if arr.ndim != 1 or arr.shape[0] != length:
            raise CheckpointError(
                f"{key} must be a length-{length} int64 array"
            )
        return arr.copy() if copy and arr is state[key] else arr

    profile = FlatProfile(
        0, allow_negative=bool(state["allow_negative"]), array_engine=True
    )
    profile._m = m
    profile._ftot = adopt("ftot", m)
    profile._ttof = adopt("ttof", m)
    profile._ptrb = adopt("ptrb", m)
    bl = adopt("bl", bn)
    bre = adopt("bre", bn)
    bf = adopt("bf", bn)
    slots = max(bn, 1)
    for name, src in (("_bl", bl), ("_bre", bre), ("_bf", bf)):
        buf = np.empty(slots, dtype=np.int64)
        buf[:bn] = src
        setattr(profile, name, buf)
    profile._bn = bn
    profile._free_head = int(state["free_head"])
    profile._n_adds = int(state["n_adds"])
    profile._n_removes = int(state["n_removes"])
    profile._base_total = int(state["base_total"])
    profile._last_tracked = int(state["last_tracked"])
    profile._sync_rank_tables(m)

    if m:
        ttof = profile._ttof
        if int(ttof.min()) < 0 or int(ttof.max()) >= m:
            raise CheckpointError("ttof holds out-of-range object ids")
        if not bool(
            (profile._ftot[ttof] == np.arange(m, dtype=np.int64)).all()
        ):
            raise CheckpointError("ftot is not the inverse of ttof")
    try:
        audit_profile(profile)
    except InvariantViolationError as exc:
        raise CheckpointError(
            f"restored profile failed audit: {exc}"
        ) from exc
    return profile


def save_profile(profile: SProfile, path: str | Path) -> None:
    """Write a profiler's state to ``path`` as JSON."""
    state = profile_to_state(profile)
    Path(path).write_text(json.dumps(state, separators=(",", ":")))


def load_profile(path: str | Path) -> SProfile:
    """Load a profiler previously written by :func:`save_profile`."""
    try:
        state = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
    return profile_from_state(state)
