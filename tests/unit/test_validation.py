"""Unit tests for the full-profile audit."""

import pytest

from repro.core.profile import SProfile
from repro.core.validation import audit_profile
from repro.errors import InvariantViolationError


class TestAuditPasses:
    def test_fresh_profile(self):
        audit_profile(SProfile(10))

    def test_after_events(self, small_profile):
        audit_profile(small_profile)

    def test_zero_capacity(self):
        audit_profile(SProfile(0))

    def test_bulk_built(self):
        audit_profile(SProfile.from_frequencies([3, -1, 0, 7]))


class TestAuditCatchesCorruption:
    def test_swapped_ftot_entries(self, small_profile):
        ftot = small_profile._ftot
        ftot[0], ftot[5] = ftot[5], ftot[0]  # breaks inverse coherence
        with pytest.raises(InvariantViolationError):
            audit_profile(small_profile)

    def test_duplicate_rank_in_ftot(self, small_profile):
        small_profile._ftot[0] = small_profile._ftot[1]
        with pytest.raises(InvariantViolationError):
            audit_profile(small_profile)

    def test_rank_out_of_range(self, small_profile):
        small_profile._ftot[0] = 99
        with pytest.raises(InvariantViolationError):
            audit_profile(small_profile)

    def test_tampered_event_counter(self, small_profile):
        small_profile._n_adds += 1  # total no longer matches block mass
        with pytest.raises(InvariantViolationError):
            audit_profile(small_profile)

    def test_tampered_block_frequency(self, small_profile):
        block = small_profile.blocks.block_at(0)
        block.f -= 1
        with pytest.raises(InvariantViolationError):
            audit_profile(small_profile)

    def test_array_length_mismatch(self, small_profile):
        small_profile._ftot.append(0)
        with pytest.raises(InvariantViolationError):
            audit_profile(small_profile)

    def test_strict_profile_with_negative_frequency(self):
        profile = SProfile(4)
        profile.remove(0)  # legal: negative allowed
        profile._allow_negative = False  # now the state is contraband
        with pytest.raises(InvariantViolationError):
            audit_profile(profile)
