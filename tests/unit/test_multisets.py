"""Unit tests for all five order-statistic multisets, via one contract.

Every multiset (treap, AVL, skip list, Fenwick, sorted list) must behave
identically to a plain sorted list of integers.  The shared contract is
parametrized over implementations; implementation-specific edge cases
follow in their own classes.
"""

import random

import pytest

from repro.baselines.avl import AVLMultiset
from repro.baselines.fenwick import FenwickMultiset
from repro.baselines.skiplist import IndexableSkipList
from repro.baselines.sortedlist import SortedListMultiset
from repro.baselines.treap import TreapMultiset

IMPLEMENTATIONS = {
    "treap": TreapMultiset,
    "avl": AVLMultiset,
    "skiplist": IndexableSkipList,
    "fenwick": FenwickMultiset,
    "sortedlist": SortedListMultiset,
}


@pytest.fixture(params=sorted(IMPLEMENTATIONS))
def impl(request):
    return IMPLEMENTATIONS[request.param]


class TestMultisetContract:
    def test_empty(self, impl):
        ms = impl()
        assert len(ms) == 0
        with pytest.raises(IndexError):
            ms.min()
        with pytest.raises(IndexError):
            ms.max()
        with pytest.raises(IndexError):
            ms.kth(0)
        assert list(ms.items()) == []
        assert ms.rank_lt(5) == 0
        assert ms.count_of(5) == 0

    def test_single_element(self, impl):
        ms = impl()
        ms.insert(7)
        assert len(ms) == 1
        assert ms.min() == ms.max() == 7
        assert ms.kth(0) == 7
        assert ms.count_of(7) == 1
        assert list(ms.items()) == [(7, 1)]

    def test_duplicates(self, impl):
        ms = impl()
        for value in (3, 3, 3, 1):
            ms.insert(value)
        assert len(ms) == 4
        assert ms.count_of(3) == 3
        assert [ms.kth(i) for i in range(4)] == [1, 3, 3, 3]
        assert ms.rank_lt(3) == 1
        assert ms.rank_lt(4) == 4

    def test_erase_one_of_duplicates(self, impl):
        ms = impl()
        for value in (5, 5, 2):
            ms.insert(value)
        ms.erase_one(5)
        assert ms.count_of(5) == 1
        assert len(ms) == 2

    def test_erase_absent_raises(self, impl):
        ms = impl()
        ms.insert(1)
        with pytest.raises(KeyError):
            ms.erase_one(2)

    def test_erase_to_empty(self, impl):
        ms = impl()
        ms.insert(4)
        ms.erase_one(4)
        assert len(ms) == 0
        assert ms.count_of(4) == 0

    def test_from_zeros(self, impl):
        ms = impl.from_zeros(100)
        assert len(ms) == 100
        assert ms.min() == ms.max() == 0
        assert ms.kth(50) == 0
        assert list(ms.items()) == [(0, 100)]

    def test_from_zeros_empty(self, impl):
        ms = impl.from_zeros(0)
        assert len(ms) == 0

    def test_kth_bounds(self, impl):
        ms = impl()
        ms.insert(1)
        with pytest.raises(IndexError):
            ms.kth(1)
        with pytest.raises(IndexError):
            ms.kth(-1)

    def test_negative_keys(self, impl):
        ms = impl()
        for value in (-5, 0, 3, -5):
            ms.insert(value)
        assert ms.min() == -5
        assert ms.max() == 3
        assert ms.count_of(-5) == 2
        assert ms.rank_lt(0) == 2
        assert [key for key, __ in ms.items()] == [-5, 0, 3]

    def test_randomized_against_model(self, impl):
        rng = random.Random(99)
        ms = impl()
        model: list[int] = []
        for step in range(600):
            if model and rng.random() < 0.4:
                value = rng.choice(model)
                ms.erase_one(value)
                model.remove(value)
            else:
                value = rng.randrange(-10, 30)
                ms.insert(value)
                model.append(value)
            model.sort()
            assert len(ms) == len(model)
            if model:
                index = rng.randrange(len(model))
                assert ms.kth(index) == model[index]
                assert ms.min() == model[0]
                assert ms.max() == model[-1]
                probe = rng.randrange(-12, 32)
                assert ms.rank_lt(probe) == sum(
                    1 for v in model if v < probe
                )

    def test_items_aggregates_counts(self, impl):
        ms = impl()
        for value in (1, 2, 2, 3, 3, 3):
            ms.insert(value)
        assert list(ms.items()) == [(1, 1), (2, 2), (3, 3)]

    def test_structure_check_after_churn(self, impl):
        rng = random.Random(5)
        ms = impl.from_zeros(30)
        values = [0] * 30
        for _ in range(300):
            old = rng.choice(values)
            values.remove(old)
            new = old + rng.choice((-1, 1))
            ms.erase_one(old)
            ms.insert(new)
            values.append(new)
        assert ms.check_structure()
        assert len(ms) == 30


class TestTreapSpecific:
    def test_deterministic_with_seed(self):
        a = TreapMultiset(seed=1)
        b = TreapMultiset(seed=1)
        for value in (4, 2, 9, 2):
            a.insert(value)
            b.insert(value)
        assert list(a.items()) == list(b.items())

    def test_repr(self):
        assert "TreapMultiset" in repr(TreapMultiset())


class TestAVLSpecific:
    def test_stays_balanced_under_sorted_inserts(self):
        ms = AVLMultiset()
        for value in range(200):
            ms.insert(value)
        assert ms.check_structure()
        # A valid AVL of 200 distinct keys has height <= 1.44*log2(201).
        assert ms._root.height <= 12

    def test_repr(self):
        assert "AVLMultiset" in repr(AVLMultiset())


class TestSkipListSpecific:
    def test_from_sorted_requires_order(self):
        with pytest.raises(ValueError):
            IndexableSkipList.from_sorted([3, 1, 2])

    def test_from_sorted_bulk(self):
        values = sorted([5, 1, 1, 8, 3])
        sl = IndexableSkipList.from_sorted(values)
        assert [sl.kth(i) for i in range(5)] == values
        assert sl.check_structure()

    def test_max_levels_validation(self):
        with pytest.raises(ValueError):
            IndexableSkipList(max_levels=0)

    def test_repr(self):
        assert "IndexableSkipList" in repr(IndexableSkipList())


class TestFenwickSpecific:
    def test_domain_grows_upward(self):
        ms = FenwickMultiset()
        ms.insert(1000)
        assert ms.count_of(1000) == 1
        lo, hi = ms.domain
        assert lo <= 1000 < hi

    def test_domain_grows_downward(self):
        ms = FenwickMultiset()
        ms.insert(-1000)
        assert ms.count_of(-1000) == 1
        lo, hi = ms.domain
        assert lo <= -1000 < hi

    def test_growth_preserves_contents(self):
        ms = FenwickMultiset()
        for value in (0, 1, 0):
            ms.insert(value)
        ms.insert(500)
        ms.insert(-500)
        assert ms.count_of(0) == 2
        assert ms.count_of(1) == 1
        assert [ms.kth(i) for i in range(5)] == [-500, 0, 0, 1, 500]
        assert ms.check_structure()

    def test_erase_outside_domain_raises(self):
        ms = FenwickMultiset()
        with pytest.raises(KeyError):
            ms.erase_one(10_000)

    def test_repr(self):
        assert "FenwickMultiset" in repr(FenwickMultiset())


class TestSortedListSpecific:
    def test_backing_list_is_sorted(self):
        ms = SortedListMultiset()
        for value in (5, 1, 3):
            ms.insert(value)
        assert ms._data == [1, 3, 5]

    def test_repr(self):
        assert "SortedListMultiset" in repr(SortedListMultiset())
