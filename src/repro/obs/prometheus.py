"""Render a registry snapshot as Prometheus text exposition (v0.0.4).

Dependency-free: the exposition format is plain text — `# TYPE` lines,
one sample per line, cumulative `_bucket{le="..."}` series for
histograms.  Metric names are mangled from the registry's dotted names
(``server.ingest.events`` → ``repro_server_ingest_events``); counters
gain the conventional ``_total`` suffix.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["mangle", "render_prometheus"]

_INVALID = re.compile(r"[^a-zA-Z0-9_]")

#: Every exported metric is namespaced under this prefix.
PREFIX = "repro"


def mangle(name: str) -> str:
    """Dotted registry name → valid Prometheus metric name."""
    flat = _INVALID.sub("_", name.replace(".", "_"))
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{PREFIX}_{flat}"


def _fmt(value: Any) -> str:
    if value is None:
        return "NaN"
    if value is True:
        return "1"
    if value is False:
        return "0"
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render_prometheus(snapshot: dict, *, labels: dict | None = None) -> str:
    """Registry snapshot (``MetricsRegistry.snapshot()``) → exposition text.

    ``labels`` (e.g. ``{"role": "router"}``) are attached to every
    sample.  Output ends with a trailing newline as the format
    requires; an empty snapshot renders to an empty document (still a
    valid scrape).
    """
    base = ""
    if labels:
        base = ",".join(
            f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
        )
    lines: list[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = mangle(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_braces(base)} {_fmt(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        metric = mangle(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_braces(base)} {_fmt(value)}")

    for name, hist in snapshot.get("histograms", {}).items():
        metric = mangle(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in hist.get("buckets", []):
            cumulative += count
            le = "+Inf" if bound == "+Inf" else _fmt(bound)
            pair = f'le="{le}"'
            label_str = f"{base},{pair}" if base else pair
            lines.append(
                f"{metric}_bucket{{{label_str}}} {_fmt(cumulative)}"
            )
        lines.append(
            f"{metric}_sum{_braces(base)} {_fmt(hist.get('sum', 0))}"
        )
        lines.append(
            f"{metric}_count{_braces(base)} {_fmt(hist.get('count', 0))}"
        )

    return "\n".join(lines) + ("\n" if lines else "")


def _braces(base: str) -> str:
    return f"{{{base}}}" if base else ""


def _escape(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )
