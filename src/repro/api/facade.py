"""The unified profiler facade: one front door, any backend.

:class:`Profiler` is the documented way into the package.  It replaces
the choose-an-implementation-first surfaces (``SProfile``,
``DynamicProfiler``, ``ShardedProfiler``, ``ProfileService``) with a
single factory::

    profiler = Profiler.open(capacity, backend="auto", keys="dense")

one ingest verb (:meth:`Profiler.ingest`, superseding the
``add``/``add_many``/``apply``/``submit`` zoo), one query surface, and
a fused multi-query plan (:meth:`Profiler.evaluate`, see
:mod:`repro.api.plan`).  Backends stay importable for code that needs
the raw structures; the facade guarantees they all answer through the
same vocabulary with the same edge semantics.

>>> p = Profiler.open(100, backend="exact")
>>> p.ingest([(7, True), (7, True), (3, True)])   # flag pairs
3
>>> p.ingest({7: +1, 5: +2})                      # a delta mapping
3
>>> p.mode().example, p.mode().frequency
(7, 3)
>>> p.quantile(1.0)
3

Hashable keys ride the same surface:

>>> likes = Profiler.open(keys="hashable")
>>> likes.ingest([("ada", +2), ("bob", +1)])
3
>>> likes.top_k(1)
[TopEntry(obj='ada', frequency=2)]
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Hashable, Iterator

from repro.api.backends import (
    ApproxProfiler,
    build_backend,
    resolve_backend,
    runs_view_for,
)
from repro.api.plan import Query, evaluate_fused, normalize_queries
from repro.api.results import EvalResult
from repro.core.checkpoint import (
    flat_profile_from_state,
    profile_from_state,
    profile_to_state,
)
from repro.core.dynamic import DynamicProfiler
from repro.core.flat import FlatProfile
from repro.core.interner import ObjectInterner
from repro.core.profile import (
    SProfile,
    net_arrays,
    net_deltas,
    net_deltas_arrays,
)
from repro.core.queries import ModeResult, TopEntry
from repro.engine.parallel import ParallelShardedProfiler
from repro.engine.sharding import ShardedProfiler
from repro.errors import (
    CapacityError,
    CheckpointError,
    FrequencyUnderflowError,
    UnsupportedQueryError,
)
from repro.obs.registry import resolve_registry
from repro.streams.events import Action, Event

__all__ = ["API_STATE_VERSION", "Profiler"]

#: Bump when the facade checkpoint layout changes incompatibly.
API_STATE_VERSION = 1

_KEY_MODES = ("dense", "hashable")


def _normalize_batch(batch) -> list[tuple[Any, int]]:
    """Flatten one ingest batch into ``(obj, delta)`` pairs.

    Accepted item shapes, freely mixed inside one iterable:

    - :class:`~repro.streams.events.Event` — one ±1 event;
    - ``(obj, Action)`` / ``(obj, bool)`` — one ±1 event (booleans are
      add/remove flags);
    - ``(obj, int)`` — a signed multi-event delta;
    - a mapping ``obj -> delta`` may be passed instead of an iterable.
    """
    if hasattr(batch, "items"):
        return [(obj, int(d)) for obj, d in batch.items()]
    deltas: list[tuple[Any, int]] = []
    for item in batch:
        if isinstance(item, Event):
            deltas.append((item.obj, 1 if item.is_add else -1))
            continue
        try:
            obj, action = item
        except (TypeError, ValueError) as exc:
            raise CapacityError(
                f"cannot interpret ingest item {item!r}: expected an "
                f"Event, an (obj, flag) pair or an (obj, delta) pair"
            ) from exc
        if isinstance(action, Action):
            deltas.append((obj, 1 if action is Action.ADD else -1))
        elif isinstance(action, bool):
            deltas.append((obj, 1 if action else -1))
        elif isinstance(action, int):
            deltas.append((obj, action))
        else:
            raise CapacityError(
                f"cannot interpret ingest item {item!r}: second element "
                f"must be an Action, bool flag or int delta"
            )
    return deltas


def _engine_stats(profile) -> dict[str, Any]:
    """Allocator/structure stats for one dense core (flat or block)."""
    if isinstance(profile, FlatProfile):
        return {
            "kind": "flat",
            "storage": "array" if profile.array_engine else "list",
            "block_count": profile.block_count,
            "block_slots": profile.block_slots,
            "free_slots": profile.free_slots,
        }
    pool = profile.blocks.pool
    stats = pool.stats
    return {
        "kind": "sprofile",
        "block_count": profile.block_count,
        "freq_index": profile.blocks.tracks_freq_index,
        "pool": {
            "free": pool.free_count,
            "max_free": pool.max_free,
            "created": stats.created,
            "recycled": stats.recycled,
            "released": stats.released,
        },
    }


class Profiler:
    """One profiler, any backend.  Construct via :meth:`open`.

    The facade owns three things the raw structures do not:

    - backend selection (``"auto"``/``"exact"``/``"sharded"``/
      ``"approx"``/any registry baseline) behind one contract;
    - key translation — ``keys="hashable"`` accepts arbitrary hashable
      ids over *every* backend, interning them to the dense universe
      the paper's structures require;
    - the fused query plan: :meth:`evaluate` answers a batch of
      :class:`~repro.api.plan.Query` descriptions in one block walk.
    """

    __slots__ = (
        "_impl",
        "_backend_name",
        "_keys",
        "_strict",
        "_interner",
        "_capacity",
        "_batches",
        "_events",
        "_obs",
        "_obs_batches",
        "_obs_events",
        "_obs_queries",
    )

    def __init__(
        self,
        impl,
        *,
        backend_name: str,
        keys: str,
        strict: bool,
        interner: ObjectInterner | None,
        capacity: int | None,
        obs=None,
    ) -> None:
        self._impl = impl
        self._backend_name = backend_name
        self._keys = keys
        self._strict = strict
        self._interner = interner
        self._capacity = capacity
        self._batches = 0
        self._events = 0
        # Preallocated instrument slots: the ingest hot path touches
        # bound counters only — no name lookups, and with obs disabled
        # the bound instruments are the shared no-op singletons.
        self._obs = resolve_registry(obs)
        self._obs_batches = self._obs.counter("profiler.ingest.batches")
        self._obs_events = self._obs.counter("profiler.ingest.events")
        self._obs_queries = self._obs.counter("profiler.queries")
        if isinstance(impl, (FlatProfile, ApproxProfiler)):
            impl._bind_obs(self._obs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        capacity: int | None = None,
        *,
        backend: str = "auto",
        shards: int | None = None,
        workers: int | None = None,
        keys: str = "dense",
        strict: bool = False,
        track_freq_index: bool = False,
        **options,
    ) -> "Profiler":
        """Open a profiler on the chosen backend.

        Parameters
        ----------
        capacity:
            Universe size ``m``.  Required for dense keys; optional for
            ``backend="exact", keys="hashable"`` (the universe grows)
            and ``backend="approx"`` (sketches are sublinear).
        backend:
            ``"auto"`` (parallel when ``workers`` is given or the
            dense universe is large on a multi-core machine, sharded
            when ``shards`` is given, the flat struct-of-arrays engine
            for dense keys, block-object exact otherwise), ``"flat"``,
            ``"exact"``, ``"sharded"``, ``"parallel"``, ``"approx"``
            or any name from
            :func:`repro.baselines.registry.available_profilers`.
        shards:
            Shard fan-out; implies the sharded backend under ``auto``.
        workers:
            Worker-process fan-out for the parallel backend (implied
            under ``auto``); ``workers=1`` runs the no-process inline
            serial fallback.  Close the profiler (context manager or
            :meth:`close`) to release the worker processes and shared
            memory.
        keys:
            ``"dense"`` — integer ids in ``[0, capacity)`` (the paper's
            setting); ``"hashable"`` — arbitrary hashable ids.
        strict:
            Forbid negative frequencies: a remove below zero raises
            :class:`~repro.errors.FrequencyUnderflowError` and rejects
            the whole batch.
        track_freq_index:
            Maintain the O(1) frequency->block index on block-structured
            backends.
        options:
            Backend-specific knobs (``approx``: ``counters``, ``eps``,
            ``delta``, ``seed``; ``flat``: ``array_engine=True`` hosts
            the struct-of-arrays state in ``int64`` ndarrays, the
            fastest target for vectorized batch ingest — see
            :meth:`ingest_arrays`).  ``obs`` selects the metrics
            registry: ``None``/``True`` — the process default
            (disabled under ``REPRO_OBS=0``), ``False`` — no-op
            instrumentation, or an explicit
            :class:`~repro.obs.MetricsRegistry`.
        """
        obs = options.pop("obs", None)
        if keys not in _KEY_MODES:
            raise CapacityError(
                f"keys must be one of {_KEY_MODES}, got {keys!r}"
            )
        if capacity is not None and capacity < 0:
            raise CapacityError(f"capacity must be >= 0, got {capacity}")
        if shards is not None and shards <= 0:
            raise CapacityError(f"shards must be positive, got {shards}")
        if workers is not None and workers <= 0:
            raise CapacityError(f"workers must be positive, got {workers}")
        name = resolve_backend(
            backend, keys, shards, track_freq_index, workers, capacity
        )
        impl, facade_interned = build_backend(
            backend,
            capacity,
            keys=keys,
            strict=strict,
            shards=shards,
            track_freq_index=track_freq_index,
            workers=workers,
            **options,
        )
        if name == "parallel" and isinstance(impl, FlatProfile):
            # Capacity-triggered auto-escalation degraded back to the
            # single-core flat engine (constrained shared memory; see
            # build_backend) — report what the caller actually got.
            name = "flat"
        return cls(
            impl,
            backend_name=name,
            keys=keys,
            strict=strict,
            interner=ObjectInterner() if facade_interned else None,
            capacity=capacity,
            obs=obs,
        )

    @classmethod
    def from_frequencies(
        cls, frequencies, *, strict: bool = False
    ) -> "Profiler":
        """Bulk-open an exact dense profiler from a frequency array.

        One sort (vectorized through NumPy when available) onto the
        flat struct-of-arrays engine; the entry point graph shaving
        uses to start from a degree sequence instead of replaying
        every edge.
        """
        profile = FlatProfile.from_frequencies(
            frequencies, allow_negative=not strict
        )
        return cls(
            profile,
            backend_name="flat",
            keys="dense",
            strict=strict,
            interner=None,
            capacity=profile.capacity,
        )

    # ------------------------------------------------------------------
    # Ingestion: the single write verb
    # ------------------------------------------------------------------

    def ingest(self, batch) -> int:
        """Apply one batch of events; return net unit events applied.

        Items may be :class:`~repro.streams.events.Event` objects,
        ``(obj, Action)`` / ``(obj, bool)`` flag pairs or
        ``(obj, delta)`` signed pairs, freely mixed; a mapping
        ``obj -> delta`` is accepted whole.  Deltas for one key are
        summed before anything is touched (batch semantics of
        :meth:`repro.core.profile.SProfile.apply`): opposing events
        cancel, tie order is unordered, and bad ids or strict-mode
        underflows reject the whole batch before any mutation.
        """
        deltas = _normalize_batch(batch)
        if self._interner is not None:
            payload = self._encode_interned(deltas)
        else:
            payload = deltas
        n = self._impl.apply(payload)
        self._batches += 1
        self._events += len(deltas)
        self._obs_batches.inc()
        self._obs_events.inc(len(deltas))
        return n

    def ingest_arrays(self, ids, deltas) -> int:
        """Apply one batch given as parallel integer arrays.

        The dense-key fast path of the binary wire protocol: ``ids``
        and ``deltas`` arrive as (NumPy) int64 arrays, coalescing
        happens vectorized (:func:`~repro.core.profile.
        net_deltas_arrays` — one ``unique`` + scatter-add instead of a
        per-event dict loop), and the net map feeds the same backend
        ``apply`` as :meth:`ingest` — identical batch semantics
        (all-or-nothing, strict-mode checks, same return value), zero
        per-event Python objects before the engine.

        Dense key mode only: hashable keys cannot ride raw integer
        arrays (use :meth:`ingest`).
        """
        if self._keys != "dense":
            raise CapacityError(
                "ingest_arrays() requires dense keys; hashable keys "
                "take the ingest() vocabulary"
            )
        apply_arrays = getattr(self._impl, "apply_arrays", None)
        if apply_arrays is not None:
            keys, sums = net_arrays(ids, deltas)
            n = apply_arrays(keys, sums)
        else:
            net = net_deltas_arrays(ids, deltas)
            n = self._impl.apply(net)
        self._batches += 1
        self._events += len(ids)
        self._obs_batches.inc()
        self._obs_events.inc(len(ids))
        return n

    def register(self, obj: Hashable) -> None:
        """Ensure ``obj`` is tracked (frequency 0 if new).

        Hashable keys only; dense universes are fully materialized.
        """
        if self._keys != "hashable":
            raise CapacityError(
                "register() applies to hashable keys; dense ids are "
                "always tracked"
            )
        if self._interner is not None:
            self._intern_new(obj)
        else:
            self._impl.register(obj)

    def _intern_new(self, obj: Hashable) -> int:
        interner = self._interner
        dense = interner.get(obj)
        if dense is None:
            if len(interner) >= (self._capacity or 0):
                raise CapacityError(
                    f"universe is full ({self._capacity} keys); cannot "
                    f"register {obj!r}"
                )
            dense = interner.intern(obj)
        return dense

    def _encode_interned(self, deltas) -> dict[int, int]:
        """Net, validate and dense-encode deltas for an interned backend.

        All-or-nothing: capacity overflow and strict-mode underflows
        (on known *and* never-seen keys) raise before anything is
        registered or mutated.
        """
        net = net_deltas(deltas)
        interner = self._interner
        get = interner.get
        fresh = []
        for obj, d in net.items():
            if d == 0:
                continue
            if get(obj) is None:
                if self._strict and d < 0:
                    raise FrequencyUnderflowError(
                        f"cannot remove never-seen object {obj!r} in "
                        f"strict mode"
                    )
                fresh.append(obj)
        if len(interner) + len(fresh) > (self._capacity or 0):
            raise CapacityError(
                f"batch registers {len(fresh)} new keys but only "
                f"{(self._capacity or 0) - len(interner)} slots remain "
                f"of {self._capacity}"
            )
        if self._strict:
            impl = self._impl
            for obj, d in net.items():
                if d >= 0:
                    continue
                dense = get(obj)
                if dense is not None and impl.frequency(dense) + d < 0:
                    raise FrequencyUnderflowError(
                        f"removing object {obj!r} at frequency "
                        f"{impl.frequency(dense)} {-d} times (net) would "
                        f"go negative"
                    )
        encoded: dict[int, int] = {}
        for obj, d in net.items():
            if d == 0:
                continue
            encoded[self._intern_new(obj)] = d
        return encoded

    # ------------------------------------------------------------------
    # Key translation helpers
    # ------------------------------------------------------------------

    def _encode_key(self, obj):
        if self._interner is None:
            return obj
        return self._interner.get(obj)

    def _decode_key(self, dense):
        """External name of a dense id.

        Interned universes are fixed at ``capacity``; a slot no key has
        claimed yet still exists at frequency 0 and reports its dense
        id (it has no external name until something registers it).
        """
        interner = self._interner
        if interner is None:
            return dense
        if dense < len(interner):
            return interner.external(dense)
        return dense

    def _decode_entry(self, entry: TopEntry) -> TopEntry:
        if self._interner is None:
            return entry
        return TopEntry(self._decode_key(entry.obj), entry.frequency)

    def _decode_mode(self, result: ModeResult) -> ModeResult:
        if self._interner is None:
            return result
        return ModeResult(
            frequency=result.frequency,
            count=result.count,
            example=self._decode_key(result.example),
        )

    def _unsupported(self, query: str) -> UnsupportedQueryError:
        return UnsupportedQueryError(self.backend_name, query)

    def _delegate_or_fuse(self, name: str, query: Query):
        """Call ``impl.<name>`` when it exists; otherwise answer from
        the fused walk (DynamicProfiler lacks a few of the optional
        queries that the run walk answers uniformly)."""
        method = getattr(self._impl, name, None)
        if method is not None:
            return method(*query.args)
        view = runs_view_for(
            self._impl,
            self._decode_key if self._interner is not None else None,
        )
        if view is None:
            raise self._unsupported(name)
        return evaluate_fused(view, (query,), frequency=self.frequency)[0]

    # ------------------------------------------------------------------
    # The query surface
    # ------------------------------------------------------------------

    def frequency(self, obj) -> int:
        """Net count of ``obj``; 0 for never-seen hashable keys.  O(1)."""
        if self._interner is not None:
            dense = self._interner.get(obj)
            if dense is None:
                return 0
            return self._impl.frequency(dense)
        return self._impl.frequency(obj)

    def mode(self) -> ModeResult:
        """Most frequent object(s)."""
        return self._decode_mode(self._impl.mode())

    def least(self) -> ModeResult:
        """Least frequent object(s)."""
        return self._decode_mode(self._impl.least())

    def max_frequency(self) -> int:
        return self._delegate_or_fuse("max_frequency", Query.max_frequency())

    def min_frequency(self) -> int:
        return self._delegate_or_fuse("min_frequency", Query.min_frequency())

    def top_k(self, k: int) -> list[TopEntry]:
        """The ``min(k, m)`` most frequent objects, descending."""
        return [self._decode_entry(e) for e in self._impl.top_k(k)]

    def bottom_k(self, k: int) -> list[TopEntry]:
        """The ``min(k, m)`` least frequent objects, ascending."""
        impl = self._impl
        bottom = getattr(impl, "bottom_k", None)
        if bottom is not None:
            return [self._decode_entry(e) for e in bottom(k)]
        iter_sorted = getattr(impl, "iter_sorted", None)
        if iter_sorted is None:
            raise self._unsupported("bottom_k")
        if k < 0:
            raise CapacityError(f"k must be >= 0, got {k}")
        out = []
        for entry in iter_sorted():
            if len(out) >= k:
                break
            out.append(self._decode_entry(entry))
        return out

    def kth_most_frequent(self, k: int) -> TopEntry:
        method = getattr(self._impl, "kth_most_frequent", None)
        if method is not None:
            return self._decode_entry(method(k))
        return self._delegate_or_fuse(
            "kth_most_frequent", Query.kth_most_frequent(k)
        )

    def median_frequency(self) -> int:
        """Lower median of the frequency array."""
        return self._impl.median_frequency()

    def quantile(self, q: float) -> int:
        """Frequency at quantile ``q``; semantics per
        :func:`~repro.core.queries.quantile_rank`."""
        return self._impl.quantile(q)

    def histogram(self) -> list[tuple[int, int]]:
        """``(frequency, #objects)`` pairs, ascending."""
        return self._impl.histogram()

    def support(self, f: int) -> int:
        """Number of objects at frequency exactly ``f``."""
        return self._impl.support(f)

    def heavy_hitters(self, phi: float) -> list[TopEntry]:
        """Objects with frequency strictly above ``phi * total``."""
        method = getattr(self._impl, "heavy_hitters", None)
        if method is not None:
            return [self._decode_entry(e) for e in method(phi)]
        return self._delegate_or_fuse(
            "heavy_hitters", Query.heavy_hitters(phi)
        )

    def objects_with_frequency(self, f: int, limit: int | None = None):
        """Objects at frequency exactly ``f`` (up to ``limit``)."""
        impl_query = getattr(self._impl, "objects_with_frequency", None)
        if impl_query is None:
            raise self._unsupported("objects_with_frequency")
        return [self._decode_key(o) for o in impl_query(f, limit=limit)]

    def majority(self):
        """The object holding more than half the mass, if any."""
        impl_query = getattr(self._impl, "majority", None)
        if impl_query is None:
            raise self._unsupported("majority")
        result = impl_query()
        if result is None or self._interner is None:
            return result
        return self._interner.external(result)

    def frequency_at_rank(self, rank: int) -> int:
        """``T[rank]`` — frequency at ascending sorted position."""
        impl_query = getattr(self._impl, "frequency_at_rank", None)
        if impl_query is None:
            raise self._unsupported("frequency_at_rank")
        return impl_query(rank)

    def object_at_rank(self, rank: int):
        """The object at ascending sorted position ``rank``."""
        impl_query = getattr(self._impl, "object_at_rank", None)
        if impl_query is None:
            raise self._unsupported("object_at_rank")
        return self._decode_key(impl_query(rank))

    def iter_sorted(self) -> Iterator[TopEntry]:
        """Yield ``(object, frequency)`` ascending by frequency."""
        impl = self._impl
        if isinstance(impl, DynamicProfiler):
            for obj, f in impl.items():
                yield TopEntry(obj, f)
            return
        iter_sorted = getattr(impl, "iter_sorted", None)
        if iter_sorted is None:
            raise self._unsupported("iter_sorted")
        for entry in iter_sorted():
            yield self._decode_entry(entry)

    def frequencies(self) -> list[int]:
        """Materialize the dense frequency array (inspection/tests)."""
        impl_query = getattr(self._impl, "frequencies", None)
        if impl_query is None:
            raise self._unsupported("frequencies")
        return impl_query()

    def snapshot(self):
        """Frozen point-in-time copy answering the same queries."""
        impl_query = getattr(self._impl, "snapshot", None)
        if impl_query is None:
            raise self._unsupported("snapshot")
        return impl_query()

    # ------------------------------------------------------------------
    # The fused multi-query plan
    # ------------------------------------------------------------------

    def evaluate(self, *queries: Query) -> EvalResult:
        """Answer every query in one block walk (see
        :mod:`repro.api.plan`).

        On block-structured backends (exact, sharded, hashable-exact)
        all walk-kind queries share a single descending run walk; on
        structureless backends (baselines, approx) each query
        dispatches to its standalone method.  Answers are identical
        either way up to tie order inside equal frequencies.
        """
        plan = normalize_queries(queries)
        self._obs_queries.inc(len(plan))
        view = runs_view_for(
            self._impl,
            self._decode_key if self._interner is not None else None,
        )
        if view is None:
            values = tuple(self._dispatch(q) for q in plan)
        else:
            # Point queries resolve through the facade so hashable
            # keys translate before reaching the backend.
            values = tuple(
                evaluate_fused(view, plan, frequency=self.frequency)
            )
        return EvalResult(queries=plan, values=values)

    def _dispatch(self, query: Query):
        """Standalone execution of one query (structureless backends)."""
        kind = query.kind
        args = query.args
        if kind == "frequency":
            return self.frequency(*args)
        if kind == "total":
            return self.total
        if kind == "median":
            return self.median_frequency()
        if kind == "active_count":
            return self.active_count
        method = getattr(self, kind)
        return method(*args)

    # ------------------------------------------------------------------
    # Capability introspection
    # ------------------------------------------------------------------

    def supports(self, query: str) -> bool:
        """Does this backend answer ``query`` (a Query kind name)?"""
        if query in ("frequency", "total"):
            return True
        declared = getattr(self._impl, "SUPPORTED_QUERIES", None)
        if declared is None:
            # DynamicProfiler answers the full exact surface.
            return True
        if query == "active_count":
            return (
                hasattr(self._impl, "active_count")
                or "support" in declared
            )
        if query == "heavy_hitters":
            return hasattr(self._impl, "heavy_hitters")
        return query in declared

    def describe(self) -> dict[str, Any]:
        """Engine introspection: backend identity plus structure stats.

        Always present: ``backend``, ``keys``, ``strict``,
        ``capacity``, ``total``, ``n_events``, ``batches_ingested``,
        ``events_ingested``.  Block-structured backends add an
        ``engine`` dict — block counts plus allocator state (the
        block-object engine reports its :class:`~repro.core.block.
        BlockPool` free list and bound; the flat engine reports minted
        and free array slots; the sharded engine nests one entry per
        shard core).
        """
        out: dict[str, Any] = {
            "backend": self._backend_name,
            "keys": self._keys,
            "strict": self._strict,
            "capacity": self.capacity,
            "total": self.total,
            "n_events": self.n_events,
            "batches_ingested": self._batches,
            "events_ingested": self._events,
        }
        impl = self._impl
        if isinstance(impl, DynamicProfiler):
            out["engine"] = {
                "kind": "dynamic",
                "physical_capacity": impl.physical_capacity,
                "phantom_slots": impl.phantom_count,
                "inner": _engine_stats(impl.profile),
            }
        elif isinstance(impl, ParallelShardedProfiler):
            merged = impl.merged_view()
            out["engine"] = {
                "kind": "parallel",
                "core": impl.core,
                "workers": impl.workers,
                "inline": impl.inline,
                "n_shards": impl.n_shards,
                "segment_bytes": impl.segment_bytes,
                "block_count": merged.block_count,
                "shards": [_engine_stats(s) for s in merged.shards],
            }
        elif isinstance(impl, ShardedProfiler):
            out["engine"] = {
                "kind": "sharded",
                "core": impl.core,
                "n_shards": impl.n_shards,
                "block_count": impl.block_count,
                "shards": [_engine_stats(s) for s in impl.shards],
            }
        elif isinstance(impl, (SProfile, FlatProfile)):
            out["engine"] = _engine_stats(impl)
        return out

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def obs_registry(self):
        """The metrics registry this facade counts into (no-op when
        obs is disabled)."""
        return self._obs

    def metrics_snapshot(self, detail: bool = True) -> dict[str, Any]:
        """Point-in-time obs snapshot for this profiler.

        Refreshes snapshot-time gauges from the engine's exact
        internal counters (``n_adds``/``n_removes`` cost nothing on
        the hot path — they were already maintained), then snapshots
        the registry.  The parallel backend additionally folds in
        every worker process's registry (counters merge exactly) and
        the shard-skew gauges.  ``{}`` when obs is disabled.
        """
        obs = self._obs
        impl = self._impl
        if obs.enabled:
            n_adds = getattr(impl, "n_adds", None)
            if n_adds is not None:
                obs.gauge("engine.adds").set(int(n_adds))
                obs.gauge("engine.removes").set(int(impl.n_removes))
        if isinstance(impl, ParallelShardedProfiler):
            return impl.metrics_snapshot(obs, detail=detail)
        return obs.snapshot(detail)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources.

        Meaningful for the parallel backend (stops the worker
        processes, unlinks the shared-memory segments; idempotent);
        a no-op everywhere else.  The facade is also a context
        manager::

            with Profiler.open(m, backend="parallel", workers=4) as p:
                p.ingest(batch)
        """
        release = getattr(self._impl, "close", None)
        if release is not None:
            release()

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def backend(self):
        """The wrapped implementation (full native surface)."""
        return self._impl

    @property
    def backend_name(self) -> str:
        return self._backend_name

    @property
    def keys(self) -> str:
        return self._keys

    @property
    def strict(self) -> bool:
        return self._strict

    @property
    def capacity(self) -> int:
        """Logical universe size (registered keys for hashable mode)."""
        if self._interner is not None:
            return self._capacity or 0
        return self._impl.capacity

    @property
    def total(self) -> int:
        return self._impl.total

    @property
    def active_count(self) -> int:
        count = getattr(self._impl, "active_count", None)
        if count is not None:
            return count
        if self.supports("support"):
            return self._impl.capacity - self._impl.support(0)
        raise self._unsupported("active_count")

    @property
    def n_events(self) -> int:
        return self._impl.n_events

    @property
    def n_shards(self) -> int:
        return getattr(self._impl, "n_shards", 1)

    @property
    def batches_ingested(self) -> int:
        return self._batches

    @property
    def events_ingested(self) -> int:
        """Raw items submitted to :meth:`ingest` (before coalescing)."""
        return self._events

    def __len__(self) -> int:
        """Tracked objects: dense capacity, or registered hashables."""
        if self._interner is not None:
            return len(self._interner)
        if isinstance(self._impl, DynamicProfiler):
            return len(self._impl)
        return self._impl.capacity

    def __contains__(self, obj) -> bool:
        if self._interner is not None:
            return obj in self._interner
        if isinstance(self._impl, DynamicProfiler):
            return obj in self._impl
        return isinstance(obj, int) and 0 <= obj < self._impl.capacity

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        """Full facade state as a JSON-safe dict.

        Supported for the exact (dense and hashable), sharded,
        parallel and approx backends; baselines do not checkpoint.
        Approx states are JSON-safe whenever the ingested keys are
        (see :meth:`ApproxProfiler.to_state
        <repro.api.backends.ApproxProfiler.to_state>`).
        """
        impl = self._impl
        if isinstance(impl, (SProfile, FlatProfile)):
            payload: Any = profile_to_state(impl)
        elif isinstance(impl, ParallelShardedProfiler):
            # Read in the parent from the zero-copy shard views (after
            # the epoch barrier) — live state is never pickled.
            payload = impl.shard_states()
        elif isinstance(impl, ShardedProfiler):
            payload = [profile_to_state(shard) for shard in impl.shards]
        elif isinstance(impl, DynamicProfiler):
            payload = profile_to_state(impl.profile)
        elif isinstance(impl, ApproxProfiler):
            payload = impl.to_state()
        else:
            raise CheckpointError(
                f"backend {self._backend_name!r} does not support "
                f"checkpointing"
            )
        catalog = None
        if self._interner is not None:
            catalog = list(self._interner)
        elif isinstance(impl, DynamicProfiler):
            catalog = list(impl._interner)
        state = {
            "version": API_STATE_VERSION,
            "backend": self._backend_name,
            "keys": self._keys,
            "strict": self._strict,
            "capacity": self._capacity,
            "shards": getattr(impl, "n_shards", None),
            "catalog": catalog,
            "batches": self._batches,
            "events": self._events,
            "profile": payload,
        }
        if isinstance(impl, (ShardedProfiler, ParallelShardedProfiler)):
            # Restore shards onto the same core engine; absent in
            # pre-flat checkpoints, which load as block-object cores.
            state["core"] = impl.core
        return state

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "Profiler":
        """Rebuild a facade from :meth:`to_state` output (audited)."""
        if not isinstance(state, dict):
            raise CheckpointError(
                f"state must be a dict, got {type(state).__name__}"
            )
        missing = {
            "version",
            "backend",
            "keys",
            "strict",
            "capacity",
            "shards",
            "catalog",
            "batches",
            "events",
            "profile",
        } - state.keys()
        if missing:
            raise CheckpointError(f"state is missing keys: {sorted(missing)}")
        if state["version"] != API_STATE_VERSION:
            raise CheckpointError(
                f"state version {state['version']} unsupported "
                f"(expected {API_STATE_VERSION})"
            )
        backend = state["backend"]
        keys = state["keys"]
        strict = bool(state["strict"])
        capacity = state["capacity"]
        catalog = state["catalog"]
        batches = state["batches"]
        events = state["events"]
        if keys not in _KEY_MODES:
            raise CheckpointError(f"bad keys mode: {keys!r}")
        if not isinstance(batches, int) or batches < 0:
            raise CheckpointError(f"bad batches counter: {batches!r}")
        if not isinstance(events, int) or events < 0:
            raise CheckpointError(f"bad events counter: {events!r}")

        interner = None
        if catalog is not None:
            interner = ObjectInterner()
            for obj in catalog:
                interner.intern(obj)
            if len(interner) != len(catalog):
                raise CheckpointError("catalog contains duplicate keys")
            if isinstance(capacity, int) and len(interner) > capacity:
                raise CheckpointError(
                    f"catalog holds {len(interner)} keys but capacity "
                    f"is {capacity}"
                )

        if backend in ("exact", "flat") and keys == "dense":
            if backend == "flat":
                impl: Any = flat_profile_from_state(state["profile"])
            else:
                impl = profile_from_state(state["profile"])
            if impl.allow_negative == strict:
                raise CheckpointError(
                    "strict flag disagrees with profile allow_negative"
                )
            interner = None
        elif backend == "flat" and keys == "hashable":
            # Facade-interned flat universe: fixed capacity, catalog
            # names the claimed dense slots; unclaimed slots must hold
            # no counted mass (mirror of the sharded-hashable check).
            if interner is None:
                raise CheckpointError("hashable checkpoint lacks a catalog")
            if not isinstance(capacity, int) or capacity < 0:
                raise CheckpointError(f"bad capacity: {capacity!r}")
            impl = flat_profile_from_state(state["profile"])
            if impl.capacity != capacity:
                raise CheckpointError(
                    f"profile capacity {impl.capacity} does not match "
                    f"declared capacity {capacity}"
                )
            if impl.allow_negative == strict:
                raise CheckpointError(
                    "strict flag disagrees with profile allow_negative"
                )
            for dense in range(len(interner), capacity):
                if impl.frequency(dense) != 0:
                    raise CheckpointError(
                        f"uncataloged slot {dense} holds non-zero frequency"
                    )
        elif backend == "exact" and keys == "hashable":
            if interner is None:
                raise CheckpointError("hashable checkpoint lacks a catalog")
            inner = profile_from_state(state["profile"])
            if inner.capacity < len(interner):
                raise CheckpointError(
                    f"profile capacity {inner.capacity} smaller than "
                    f"catalog size {len(interner)}"
                )
            for dense in range(len(interner), inner.capacity):
                if inner.frequency(dense) != 0:
                    raise CheckpointError(
                        f"phantom slot {dense} holds non-zero frequency"
                    )
            impl = DynamicProfiler.__new__(DynamicProfiler)
            impl._interner = interner
            impl._profile = inner
            impl._rebind()
            interner = None
        elif backend in ("sharded", "parallel"):
            shard_states = state["profile"]
            n_shards = state["shards"]
            if not isinstance(n_shards, int) or n_shards <= 0:
                raise CheckpointError(f"bad n_shards: {n_shards!r}")
            if not isinstance(shard_states, list):
                raise CheckpointError("sharded state must hold a list")
            if len(shard_states) != n_shards:
                raise CheckpointError(
                    f"{len(shard_states)} shard states for "
                    f"n_shards={n_shards}"
                )
            if not isinstance(capacity, int) or capacity < 0:
                raise CheckpointError(f"bad capacity: {capacity!r}")
            core = state.get("core", "sprofile")
            if backend == "parallel":
                if core != "flat":
                    raise CheckpointError(
                        f"parallel checkpoints host flat cores, "
                        f"got {core!r}"
                    )
                for s, shard_state in enumerate(shard_states):
                    if not isinstance(shard_state, dict):
                        raise CheckpointError(
                            "parallel shard states must be dicts"
                        )
                    declared = shard_state.get("capacity")
                    expected = (capacity - s + n_shards - 1) // n_shards
                    if declared != expected:
                        raise CheckpointError(
                            f"shard {s} capacity {declared!r} does not "
                            f"match partition of universe {capacity}"
                        )
                    if bool(shard_state.get("allow_negative")) == strict:
                        raise CheckpointError(
                            "strict flag disagrees with shard "
                            "allow_negative"
                        )
                # Worker-side restore: each state ships to its worker,
                # which rebuilds (with the full structural audit)
                # straight into the shared-memory segment.
                try:
                    impl = ParallelShardedProfiler.from_shard_states(
                        capacity,
                        shard_states,
                        workers=n_shards,
                        allow_negative=not strict,
                    )
                except (OSError, CapacityError):
                    # This environment cannot host the worker engine
                    # (constrained /dev/shm, exhausted process table,
                    # no numpy — the engine raises CapacityError for
                    # the latter).
                    # The shard states are ordinary flat-core states,
                    # so restore them into the serial sharded engine —
                    # identical answers, no processes — and relabel
                    # the facade honestly.
                    shards = tuple(
                        flat_profile_from_state(s) for s in shard_states
                    )
                    impl = ShardedProfiler(0, n_shards=n_shards, core=core)
                    impl._m = capacity
                    impl._shards = shards
                    backend = "sharded"
            else:
                if core not in ("sprofile", "flat"):
                    raise CheckpointError(f"bad shard core: {core!r}")
                restore = (
                    flat_profile_from_state if core == "flat"
                    else profile_from_state
                )
                shards = tuple(restore(s) for s in shard_states)
                for s, shard in enumerate(shards):
                    expected = (capacity - s + n_shards - 1) // n_shards
                    if shard.capacity != expected:
                        raise CheckpointError(
                            f"shard {s} capacity {shard.capacity} does "
                            f"not match partition of universe {capacity}"
                        )
                    if shard.allow_negative == strict:
                        raise CheckpointError(
                            "strict flag disagrees with shard "
                            "allow_negative"
                        )
                impl = ShardedProfiler(0, n_shards=n_shards, core=core)
                impl._m = capacity
                impl._shards = shards
            if keys == "dense":
                interner = None
            elif interner is not None:
                # Dense slots beyond the catalog have no name; a
                # truncated or tampered catalog must not leave counted
                # mass on anonymous slots.
                for dense in range(len(interner), capacity):
                    if impl.frequency(dense) != 0:
                        release = getattr(impl, "close", None)
                        if release is not None:
                            release()
                        raise CheckpointError(
                            f"uncataloged slot {dense} holds non-zero "
                            f"frequency"
                        )
        elif backend == "approx":
            impl = ApproxProfiler.from_state(state["profile"])
            interner = None
        else:
            raise CheckpointError(
                f"backend {backend!r} does not support checkpointing"
            )

        profiler = cls(
            impl,
            backend_name=backend,
            keys=keys,
            strict=strict,
            interner=interner,
            capacity=capacity,
        )
        profiler._batches = batches
        profiler._events = events
        return profiler

    def save(self, path: str | Path) -> None:
        """Write the facade checkpoint to ``path`` as JSON."""
        Path(path).write_text(
            json.dumps(self.to_state(), separators=(",", ":"))
        )

    @classmethod
    def load(cls, path: str | Path) -> "Profiler":
        """Load a checkpoint previously written by :meth:`save`."""
        try:
            state = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint is not valid JSON: {exc}"
            ) from exc
        return cls.from_state(state)

    def __repr__(self) -> str:
        return (
            f"Profiler(backend={self._backend_name!r}, keys={self._keys!r}, "
            f"capacity={self.capacity}, total={self.total}, "
            f"batches={self._batches})"
        )
