"""Unit tests for the BlockSet partition structure."""

import pytest

from repro.core.block import BlockPool
from repro.core.blockset import BlockSet
from repro.errors import EmptyProfileError, InvariantViolationError


class TestConstruction:
    def test_initial_single_block(self):
        bset = BlockSet(5)
        assert bset.capacity == 5
        assert bset.n_blocks == 1
        block = bset.block_at(0)
        assert block.as_tuple() == (0, 4, 0)
        assert all(bset.block_at(rank) is block for rank in range(5))

    def test_initial_frequency(self):
        bset = BlockSet(3, initial_frequency=7)
        assert bset.block_at(1).f == 7

    def test_zero_capacity(self):
        bset = BlockSet(0)
        assert bset.capacity == 0
        assert bset.n_blocks == 0
        assert list(bset.iter_blocks()) == []
        bset.audit()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockSet(-1)

    def test_custom_pool_is_used(self):
        pool = BlockPool()
        bset = BlockSet(3, pool=pool)
        assert bset.pool is pool
        assert pool.stats.created == 1

    def test_repr(self):
        assert "BlockSet" in repr(BlockSet(3))


class TestFromRuns:
    def test_valid_runs(self):
        runs = [(0, 1, -2), (2, 2, 0), (3, 5, 4)]
        bset = BlockSet.from_runs(6, runs)
        assert bset.as_tuples() == runs
        assert bset.n_blocks == 3

    def test_empty(self):
        bset = BlockSet.from_runs(0, [])
        assert bset.capacity == 0

    def test_gap_rejected(self):
        with pytest.raises(InvariantViolationError):
            BlockSet.from_runs(4, [(0, 1, 0), (3, 3, 1)])

    def test_overlap_rejected(self):
        with pytest.raises(InvariantViolationError):
            BlockSet.from_runs(4, [(0, 2, 0), (2, 3, 1)])

    def test_non_increasing_frequency_rejected(self):
        with pytest.raises(InvariantViolationError):
            BlockSet.from_runs(4, [(0, 1, 5), (2, 3, 5)])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(InvariantViolationError):
            BlockSet.from_runs(3, [(0, 3, 0)])

    def test_freq_index_built(self):
        bset = BlockSet.from_runs(
            3, [(0, 0, 1), (1, 2, 5)], track_freq_index=True
        )
        assert bset.block_for_frequency(5).as_tuple() == (1, 2, 5)


class TestAccess:
    def test_block_at_bounds(self):
        bset = BlockSet(3)
        with pytest.raises(IndexError):
            bset.block_at(3)
        with pytest.raises(IndexError):
            bset.block_at(-1)

    def test_leftmost_rightmost(self):
        bset = BlockSet.from_runs(4, [(0, 1, 0), (2, 3, 2)])
        assert bset.leftmost().f == 0
        assert bset.rightmost().f == 2

    def test_leftmost_empty_raises(self):
        with pytest.raises(EmptyProfileError):
            BlockSet(0).leftmost()
        with pytest.raises(EmptyProfileError):
            BlockSet(0).rightmost()

    def test_iter_blocks_ascending(self):
        runs = [(0, 0, -1), (1, 2, 0), (3, 3, 9)]
        bset = BlockSet.from_runs(4, runs)
        assert [b.as_tuple() for b in bset.iter_blocks()] == runs

    def test_iter_blocks_desc(self):
        runs = [(0, 0, -1), (1, 2, 0), (3, 3, 9)]
        bset = BlockSet.from_runs(4, runs)
        assert [b.as_tuple() for b in bset.iter_blocks_desc()] == runs[::-1]


class TestFrequencyLookup:
    @pytest.mark.parametrize("indexed", [True, False])
    def test_block_for_frequency_found(self, indexed):
        bset = BlockSet.from_runs(
            5, [(0, 1, -3), (2, 2, 0), (3, 4, 2)], track_freq_index=indexed
        )
        assert bset.block_for_frequency(-3).as_tuple() == (0, 1, -3)
        assert bset.block_for_frequency(0).as_tuple() == (2, 2, 0)
        assert bset.block_for_frequency(2).as_tuple() == (3, 4, 2)

    @pytest.mark.parametrize("indexed", [True, False])
    def test_block_for_frequency_missing(self, indexed):
        bset = BlockSet.from_runs(
            5, [(0, 1, -3), (2, 2, 0), (3, 4, 2)], track_freq_index=indexed
        )
        assert bset.block_for_frequency(1) is None
        assert bset.block_for_frequency(99) is None
        assert bset.block_for_frequency(-99) is None

    def test_tracks_freq_index_flag(self):
        assert BlockSet(2, track_freq_index=True).tracks_freq_index
        assert not BlockSet(2).tracks_freq_index


class TestCreateDrop:
    def test_create_registers(self):
        bset = BlockSet(4, track_freq_index=True)
        # Manually restructure: shrink the zero block and add a new one.
        zero = bset.block_at(0)
        zero.r = 2
        block = bset.create(3, 3, 5)
        bset._ptrb[3] = block
        assert bset.n_blocks == 2
        bset.audit()

    def test_drop_unregisters(self):
        bset = BlockSet(4, track_freq_index=True)
        zero = bset.block_at(0)
        zero.r = 2
        block = bset.create(3, 3, 5)
        bset._ptrb[3] = block
        # Undo it.
        zero.r = 3
        bset._ptrb[3] = zero
        bset.drop(block)
        assert bset.n_blocks == 1
        assert bset.block_for_frequency(5) is None
        bset.audit()


class TestAudit:
    def test_detects_bad_pointer(self):
        bset = BlockSet.from_runs(4, [(0, 1, 0), (2, 3, 1)])
        bset._ptrb[1] = bset.block_at(2)
        with pytest.raises(InvariantViolationError):
            bset.audit()

    def test_detects_wrong_counter(self):
        bset = BlockSet(4)
        bset._n_blocks = 2
        with pytest.raises(InvariantViolationError):
            bset.audit()

    def test_detects_desynced_index(self):
        bset = BlockSet(4, track_freq_index=True)
        bset._freq_index[99] = bset.block_at(0)
        with pytest.raises(InvariantViolationError):
            bset.audit()


class TestFromRunsTrustedPath:
    def test_audit_false_still_rejects_overlapping_runs(self):
        import pytest

        from repro.core.blockset import BlockSet
        from repro.errors import InvariantViolationError

        with pytest.raises(InvariantViolationError):
            BlockSet.from_runs(4, [(0, 2, 1), (1, 3, 5)], audit=False)

    def test_audit_false_still_rejects_gapped_runs(self):
        import pytest

        from repro.core.blockset import BlockSet
        from repro.errors import InvariantViolationError

        with pytest.raises(InvariantViolationError):
            BlockSet.from_runs(4, [(0, 1, 1), (3, 3, 5)], audit=False)

    def test_audit_false_accepts_valid_runs(self):
        from repro.core.blockset import BlockSet

        blocks = BlockSet.from_runs(4, [(0, 1, 1), (2, 3, 5)], audit=False)
        blocks.audit()
        assert blocks.n_blocks == 2
