"""Workload construction shared by the harness and ``benchmarks/``.

Streams are deterministic in (name, n, m, seed), and the most recently
built ones are memoized so pytest-benchmark rounds and figure sweeps do
not regenerate identical arrays.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import StreamConfigError
from repro.streams.adversarial import (
    root_thrash_stream,
    single_hot_object_stream,
    staircase_stream,
)
from repro.streams.generators import (
    LogStream,
    PAPER_STREAM_NAMES,
    generate_stream,
    paper_stream,
)

__all__ = ["build_stream", "workload_for", "WORKLOAD_NAMES"]

#: Workloads accepted by :func:`build_stream`.
WORKLOAD_NAMES = PAPER_STREAM_NAMES + (
    "root-thrash",
    "single-hot",
    "staircase",
)


@lru_cache(maxsize=32)
def _cached(name: str, n_events: int, universe: int, seed: int) -> LogStream:
    if name in PAPER_STREAM_NAMES:
        return generate_stream(
            paper_stream(name, n_events, universe, seed=seed)
        )
    if name == "root-thrash":
        return root_thrash_stream(n_events, universe)
    if name == "single-hot":
        return single_hot_object_stream(n_events, universe)
    if name == "staircase":
        return staircase_stream(n_events, universe)
    raise StreamConfigError(
        f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
    )


def build_stream(
    name: str, n_events: int, universe: int, *, seed: int = 0
) -> LogStream:
    """Materialize a named workload (memoized)."""
    return _cached(name, n_events, universe, seed)


def workload_for(figure: int) -> tuple[str, ...]:
    """The stream names a given paper figure sweeps over."""
    if figure in (3, 4):
        return PAPER_STREAM_NAMES
    if figure == 5:
        return ("stream1",)
    if figure == 6:
        return ("stream1",)
    raise StreamConfigError(f"paper has no figure {figure}")
