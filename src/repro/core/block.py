"""Blocks: maximal equal-frequency runs of the sorted frequency array.

A block ``(l, r, f)`` states that ranks ``l..r`` (inclusive) of the
conceptual sorted array ``T`` all hold frequency ``f`` (paper section 2.1).
Blocks are the unit the S-Profile update algorithm manipulates: an update
touches at most two blocks, which is what makes it O(1).

Blocks are allocated through a :class:`BlockPool` free list.  The update
loop creates and destroys a block on almost every event; recycling spares
the allocator and, more importantly for CPython, spares ``__init__``
dispatch.  The pool is a measured design choice — see
``benchmarks/bench_ablation_pool.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Block", "BlockPool", "PoolStats"]


class Block:
    """A maximal run of equal frequency in the sorted array ``T``.

    Attributes
    ----------
    l:
        First rank (inclusive) covered by this block.
    r:
        Last rank (inclusive) covered by this block.
    f:
        The frequency shared by every rank in ``[l, r]``.  A block's
        frequency never changes during its lifetime; only its bounds move.
    """

    __slots__ = ("l", "r", "f")

    def __init__(self, l: int, r: int, f: int) -> None:
        self.l = l
        self.r = r
        self.f = f

    def __len__(self) -> int:
        """Number of ranks covered.  Zero or negative means 'emptied'."""
        return self.r - self.l + 1

    def __contains__(self, rank: int) -> bool:
        return self.l <= rank <= self.r

    def as_tuple(self) -> tuple[int, int, int]:
        """Return ``(l, r, f)`` — the paper's triple notation."""
        return (self.l, self.r, self.f)

    def __repr__(self) -> str:
        return f"Block(l={self.l}, r={self.r}, f={self.f})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return self is other or self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        # Identity hash: blocks are mutable containers, and the block set
        # relies on identity when relinking pointers.
        return id(self)


@dataclass(frozen=True)
class PoolStats:
    """Allocation counters exposed for ablation benchmarks and tests."""

    created: int
    recycled: int
    released: int

    @property
    def recycle_ratio(self) -> float:
        """Fraction of acquisitions served from the free list."""
        total = self.created + self.recycled
        if total == 0:
            return 0.0
        return self.recycled / total


class BlockPool:
    """Free list of :class:`Block` instances.

    Parameters
    ----------
    max_free:
        Upper bound on the number of idle blocks retained.  ``None`` keeps
        every released block.  The live block set never exceeds ``m``
        blocks, so the free list is bounded by ``m`` in practice anyway.
    """

    __slots__ = ("_free", "_max_free", "_created", "_recycled", "_released")

    def __init__(self, max_free: int | None = None) -> None:
        if max_free is not None and max_free < 0:
            raise ValueError(f"max_free must be >= 0 or None, got {max_free}")
        self._free: list[Block] = []
        self._max_free = max_free
        self._created = 0
        self._recycled = 0
        self._released = 0

    def acquire(self, l: int, r: int, f: int) -> Block:
        """Return a block set to ``(l, r, f)``, reusing a freed one if any."""
        free = self._free
        if free:
            block = free.pop()
            block.l = l
            block.r = r
            block.f = f
            self._recycled += 1
            return block
        self._created += 1
        return Block(l, r, f)

    def release(self, block: Block) -> None:
        """Hand a block back to the pool.

        The caller must guarantee no live pointer still references it.
        """
        self._released += 1
        if self._max_free is None or len(self._free) < self._max_free:
            self._free.append(block)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def max_free(self) -> int | None:
        """Retention bound on idle blocks (``None``: unbounded)."""
        return self._max_free

    @property
    def stats(self) -> PoolStats:
        return PoolStats(
            created=self._created,
            recycled=self._recycled,
            released=self._released,
        )

    def __repr__(self) -> str:
        return f"BlockPool(free={len(self._free)}, stats={self.stats})"
