"""Integration: the parallel backend against the rest of the system.

Longer randomized streams through the facade, plus checkpoint
round-trips between ``backend="parallel"`` and every other
checkpointable backend — a parallel checkpoint must restore and keep
answering exactly like the serial engines fed the same stream.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api import Profiler, Query

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.parallel

M = 48
CHECKPOINT_BACKENDS = ("flat", "exact", "sharded", "parallel")


def open_backend(name, **kwargs):
    extra = {}
    if name == "sharded":
        extra["shards"] = 3
    if name == "parallel":
        extra["workers"] = 2
    extra.update(kwargs)
    return Profiler.open(M, backend=name, **extra)


def drive(profiler, seed, batches=12, batch_size=400):
    rng = random.Random(seed)
    for _ in range(batches):
        batch = [
            (rng.randrange(M), rng.randrange(-2, 4))
            for _ in range(batch_size)
        ]
        profiler.ingest(batch)


def assert_same_answers(a, b):
    assert a.frequencies() == b.frequencies()
    assert a.total == b.total
    assert a.histogram() == b.histogram()
    assert a.mode().frequency == b.mode().frequency
    assert a.mode().count == b.mode().count
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert a.quantile(q) == b.quantile(q)
    assert [e.frequency for e in a.top_k(10)] == [
        e.frequency for e in b.top_k(10)
    ]


class TestStreamEquivalence:
    def test_long_stream_matches_flat(self):
        with open_backend("parallel") as parallel:
            flat = Profiler.open(M, backend="flat")
            drive(parallel, seed=7)
            drive(flat, seed=7)
            assert_same_answers(parallel, flat)

    def test_fused_plan_matches_standalone(self):
        with open_backend("parallel") as parallel:
            drive(parallel, seed=11)
            plan = (
                Query.mode(),
                Query.top_k(5),
                Query.histogram(),
                Query.quantile(0.5),
                Query.support(0),
                Query.total(),
            )
            result = parallel.evaluate(*plan)
            assert result["histogram"] == parallel.histogram()
            assert result[Query.quantile(0.5)] == parallel.quantile(0.5)
            assert result[Query.support(0)] == parallel.support(0)
            assert result["total"] == parallel.total


class TestCheckpointRoundTrips:
    """parallel <-> every other checkpointable backend."""

    def test_parallel_state_is_json_safe_and_versioned(self, tmp_path):
        with open_backend("parallel") as p:
            drive(p, seed=3)
            state = p.to_state()
            text = json.dumps(state)
            assert state["backend"] == "parallel"
            assert state["core"] == "flat"
            path = tmp_path / "parallel.json"
            path.write_text(text)
            expected = p.frequencies()
        restored = Profiler.load(path)
        try:
            assert restored.backend_name == "parallel"
            assert restored.frequencies() == expected
        finally:
            restored.close()

    @pytest.mark.parametrize("other", CHECKPOINT_BACKENDS)
    def test_restored_parallel_answers_like_backend(self, other):
        """Save parallel, restore, and compare the restored profiler
        against `other` fed the identical stream."""
        with open_backend("parallel") as p:
            drive(p, seed=21)
            state = p.to_state()
        restored = Profiler.from_state(state)
        peer = open_backend(other)
        try:
            drive(peer, seed=21)
            assert_same_answers(restored, peer)
            # The restored engine keeps ingesting correctly.
            restored.ingest({0: +5})
            peer.ingest({0: +5})
            assert restored.frequency(0) == peer.frequency(0)
        finally:
            restored.close()
            peer.close()

    @pytest.mark.parametrize("other", ("flat", "exact", "sharded"))
    def test_other_backend_checkpoints_reload_beside_parallel(self, other):
        """The reverse direction: any serial checkpoint restores and
        answers exactly like a live parallel engine on the same
        stream."""
        peer = open_backend(other)
        drive(peer, seed=33)
        restored = Profiler.from_state(peer.to_state())
        with open_backend("parallel") as p:
            drive(p, seed=33)
            assert_same_answers(restored, p)
        peer.close()
        restored.close()

    def test_strict_round_trip_preserves_strictness(self):
        with Profiler.open(
            M, backend="parallel", workers=2, strict=True
        ) as p:
            p.ingest({1: 3})
            state = p.to_state()
        restored = Profiler.from_state(state)
        try:
            assert restored.strict
            with pytest.raises(Exception) as excinfo:
                restored.ingest({1: -10})
            assert "negative" in str(excinfo.value)
            assert restored.frequency(1) == 3
        finally:
            restored.close()

    def test_hashable_keys_round_trip(self):
        with Profiler.open(
            16, backend="parallel", workers=2, keys="hashable"
        ) as p:
            p.ingest([("ada", +2), ("bob", +1), ("eve", +4)])
            state = p.to_state()
            json.dumps(state)
        restored = Profiler.from_state(state)
        try:
            assert restored.frequency("eve") == 4
            assert restored.top_k(1)[0].obj == "eve"
        finally:
            restored.close()
