"""Fenwick-tree multiset over the frequency value domain — baseline #4.

Instead of ordering *objects*, this structure counts how many objects sit
at each frequency *value* and keeps prefix sums in a binary indexed tree:
updates are O(log F) and the k-th order statistic is one binary-lifting
descent, where F is the width of the value domain seen so far.

This baseline is not in the paper; it is included because it is the
natural "bucket the frequencies" answer a practitioner would try, and it
illustrates that S-Profile also beats structures indexed by value rather
than by rank (see ``benchmarks/bench_profiler_field.py``).  The domain
grows geometrically in both directions, so negative frequencies are
supported.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["FenwickMultiset"]


class FenwickMultiset:
    """Multiset of integers backed by a binary indexed tree.

    The value domain is ``[lo, lo + size)`` with ``size`` a power of two;
    inserting outside the domain triggers an O(size) geometric rebuild
    (amortized O(1) per insert).
    """

    def __init__(self, lo: int = 0, span: int = 2) -> None:
        size = 1
        while size < span:
            size <<= 1
        self._lo = lo
        self._size = size
        self._tree = [0] * (size + 1)
        self._counts = [0] * size
        self._len = 0

    @classmethod
    def from_zeros(cls, count: int) -> "FenwickMultiset":
        """Bulk-build with ``count`` zeros.  O(1) domain, O(1) work."""
        self = cls(lo=0, span=2)
        if count > 0:
            self._counts[0] = count
            self._rebuild_tree()
            self._len = count
        return self

    def __len__(self) -> int:
        return self._len

    @property
    def domain(self) -> tuple[int, int]:
        """Current covered value range ``[lo, hi)``."""
        return (self._lo, self._lo + self._size)

    def insert(self, key: int) -> None:
        """Add one occurrence of ``key``.  O(log F) amortized."""
        if not self._lo <= key < self._lo + self._size:
            self._grow_to_cover(key)
        index = key - self._lo
        self._counts[index] += 1
        self._tree_add(index, 1)
        self._len += 1

    def erase_one(self, key: int) -> None:
        """Remove one occurrence of ``key``; KeyError if absent."""
        index = key - self._lo
        if not 0 <= index < self._size or self._counts[index] == 0:
            raise KeyError(key)
        self._counts[index] -= 1
        self._tree_add(index, -1)
        self._len -= 1

    def kth(self, index: int) -> int:
        """The ``index``-th smallest element (0-based).  O(log F)."""
        if not 0 <= index < self._len:
            raise IndexError(f"index {index} out of range [0, {self._len})")
        remaining = index + 1
        position = 0
        bitmask = self._size
        tree = self._tree
        while bitmask:
            probe = position + bitmask
            if probe <= self._size and tree[probe] < remaining:
                remaining -= tree[probe]
                position = probe
            bitmask >>= 1
        return self._lo + position

    def rank_lt(self, key: int) -> int:
        """Number of elements strictly below ``key``.  O(log F)."""
        index = key - self._lo
        if index <= 0:
            return 0
        if index >= self._size:
            return self._len
        return self._prefix(index)

    def count_of(self, key: int) -> int:
        """Multiplicity of ``key``.  O(1)."""
        index = key - self._lo
        if not 0 <= index < self._size:
            return 0
        return self._counts[index]

    def min(self) -> int:
        if self._len == 0:
            raise IndexError("min of empty multiset")
        return self.kth(0)

    def max(self) -> int:
        if self._len == 0:
            raise IndexError("max of empty multiset")
        return self.kth(self._len - 1)

    def items(self) -> Iterator[tuple[int, int]]:
        """Yield ``(key, count)`` ascending.  O(F)."""
        lo = self._lo
        for index, count in enumerate(self._counts):
            if count:
                yield lo + index, count

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _tree_add(self, index: int, delta: int) -> None:
        position = index + 1
        tree = self._tree
        size = self._size
        while position <= size:
            tree[position] += delta
            position += position & (-position)

    def _prefix(self, index: int) -> int:
        """Sum of counts at domain indices ``< index``."""
        acc = 0
        tree = self._tree
        while index > 0:
            acc += tree[index]
            index -= index & (-index)
        return acc

    def _grow_to_cover(self, key: int) -> None:
        lo = self._lo
        hi = self._lo + self._size
        new_lo = lo
        new_hi = hi
        while key < new_lo:
            new_lo -= max(new_hi - new_lo, 2)
        while key >= new_hi:
            new_hi += max(new_hi - new_lo, 2)
        span = new_hi - new_lo
        size = 1
        while size < span:
            size <<= 1
        new_counts = [0] * size
        offset = lo - new_lo
        new_counts[offset : offset + self._size] = self._counts
        self._lo = new_lo
        self._size = size
        self._counts = new_counts
        self._rebuild_tree()

    def _rebuild_tree(self) -> None:
        """O(size) Fenwick construction from the counts array."""
        size = self._size
        tree = [0] * (size + 1)
        counts = self._counts
        for index in range(1, size + 1):
            tree[index] += counts[index - 1]
            parent = index + (index & (-index))
            if parent <= size:
                tree[parent] += tree[index]
        self._tree = tree

    def check_structure(self) -> bool:
        """O(F log F) verification used by tests."""
        if sum(self._counts) != self._len:
            return False
        if any(count < 0 for count in self._counts):
            return False
        for index in range(self._size + 1):
            expected = sum(self._counts[:index])
            if self._prefix(index) != expected:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"FenwickMultiset(len={self._len}, domain={self.domain})"
        )
