"""End-to-end serving-stack tests: real process, real sockets.

Covers what the unit tests cannot: the ``python -m repro.serve`` CLI
as a subprocess (port file handshake, SIGTERM graceful drain, exit
code 0), the quickstart example against an external server, and the
checkpoint-download parity matrix across every checkpointable backend
row of ``docs/api.md`` — including the ``approx`` row this PR adds.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Profiler, Query
from repro.server import ProfileClient, ServerThread

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")


def spawn_server(tmp_path, *extra_args):
    port_file = tmp_path / "port.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text())
        if proc.poll() is not None:
            raise AssertionError(
                f"server died at startup:\n{proc.stdout.read()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("server never wrote its port file")


class TestServeCli:
    def test_serve_sigterm_drains_and_exits_zero(self, tmp_path):
        proc, port = spawn_server(tmp_path, "--capacity", "500")
        try:
            with ProfileClient("127.0.0.1", port) as client:
                assert client.ingest({7: 3, 2: 1}) == 4
                assert client.mode().example == 7
                state = client.checkpoint()
            assert Profiler.from_state(state).frequency(7) == 3
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out
        assert "draining" in out
        assert "drained:" in out

    def test_quickstart_example_against_external_server(self, tmp_path):
        proc, port = spawn_server(tmp_path, "--capacity", "10000")
        try:
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC + os.pathsep + env.get(
                "PYTHONPATH", ""
            )
            env["REPRO_SERVER_PORT"] = str(port)
            example = subprocess.run(
                [
                    sys.executable,
                    str(REPO_ROOT / "examples" / "quickstart_server.py"),
                ],
                capture_output=True,
                text=True,
                timeout=60,
                env=env,
            )
            assert example.returncode == 0, example.stdout + example.stderr
            assert "checkpoint restored locally" in example.stdout
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out


#: Every checkpointable backend row served + downloaded + restored.
BACKEND_ROWS = [
    pytest.param(
        lambda: Profiler.open(40, backend="flat"), [(3, 5), (7, 2)],
        id="flat",
    ),
    pytest.param(
        lambda: Profiler.open(40, backend="exact"), [(3, 5), (7, 2)],
        id="exact",
    ),
    pytest.param(
        lambda: Profiler.open(40, backend="sharded", shards=3),
        [(3, 5), (7, 2)],
        id="sharded",
    ),
    pytest.param(
        lambda: Profiler.open(40, backend="parallel", workers=1),
        [(3, 5), (7, 2)],
        id="parallel-inline",
    ),
    pytest.param(
        lambda: Profiler.open(keys="hashable"),
        [("ada", 5), ("bob", 2)],
        id="exact-hashable",
    ),
    pytest.param(
        lambda: Profiler.open(8, backend="flat", keys="hashable"),
        [("ada", 5), ("bob", 2)],
        id="flat-interned",
    ),
    pytest.param(
        lambda: Profiler.open(backend="approx", counters=16),
        [("ada", 5), ("bob", 2)],
        id="approx",
    ),
]


class TestCheckpointDownloadMatrix:
    @pytest.mark.parametrize("codec", ["json", "auto"])
    @pytest.mark.parametrize("make_profiler,events", BACKEND_ROWS)
    def test_wire_checkpoint_restores_identically(
        self, make_profiler, events, codec
    ):
        profiler = make_profiler()
        with ServerThread(profiler) as server:
            with ProfileClient(
                server.host, server.port, codec=codec
            ) as client:
                offered = "binary" in (client.hello.get("codecs") or [])
                if codec == "auto" and offered:
                    # Where the server offers binary, auto negotiates
                    # it; the checkpoint must ride it identically.
                    assert client.codec == "binary"
                client.ingest(events)
                state = json.loads(json.dumps(client.checkpoint()))
                mode = client.mode()
                top = client.top_k(2)
        restored = Profiler.from_state(state)
        try:
            for key, count in events:
                assert restored.frequency(key) == count
            assert restored.mode().frequency == mode.frequency
            assert [e.frequency for e in restored.top_k(2)] == [
                e.frequency for e in top
            ]
        finally:
            restored.close()

    @pytest.mark.parametrize("codec", ["json", "auto"])
    @pytest.mark.parametrize("make_profiler,events", BACKEND_ROWS)
    def test_wire_restore_round_trip(self, make_profiler, events, codec):
        """Download from server A, upload into server B over the wire:
        the restored service answers like the original."""
        profiler = make_profiler()
        with ServerThread(profiler) as server:
            with ProfileClient(
                server.host, server.port, codec=codec
            ) as client:
                client.ingest(events)
                state = client.checkpoint()
                mode = client.mode()
        target = make_profiler()
        with ServerThread(target) as server:
            with ProfileClient(
                server.host, server.port, codec=codec
            ) as client:
                client.restore(state)
                for key, count in events:
                    assert client.frequency(key) == count
                assert client.mode().frequency == mode.frequency
                # The restored state keeps serving ingest.
                key0, count0 = events[0]
                assert client.ingest([(key0, 1)]) == 1
                assert client.frequency(key0) == count0 + 1
