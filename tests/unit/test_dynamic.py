"""Unit tests for DynamicProfiler (growable universe, arbitrary ids)."""

import pytest

from repro.core.dynamic import DynamicProfiler
from repro.core.validation import audit_profile
from repro.errors import (
    CapacityError,
    EmptyProfileError,
    FrequencyUnderflowError,
    UnknownObjectError,
)


class TestRegistration:
    def test_add_registers(self):
        profiler = DynamicProfiler()
        profiler.add("ada")
        assert "ada" in profiler
        assert len(profiler) == 1
        assert profiler.frequency("ada") == 1

    def test_register_without_event(self):
        profiler = DynamicProfiler()
        profiler.register("bob")
        assert profiler.frequency("bob") == 0
        assert len(profiler) == 1
        assert profiler.n_events == 0

    def test_unknown_frequency_is_zero(self):
        profiler = DynamicProfiler()
        assert profiler.frequency("ghost") == 0
        assert "ghost" not in profiler

    def test_growth_doubles_capacity(self):
        profiler = DynamicProfiler(initial_capacity=8)
        for i in range(9):
            profiler.add(f"user{i}")
        assert len(profiler) == 9
        assert profiler.physical_capacity >= 16
        audit_profile(profiler.profile)

    def test_many_registrations(self):
        profiler = DynamicProfiler()
        for i in range(500):
            profiler.add(i)
        assert len(profiler) == 500
        assert profiler.total == 500
        assert profiler.mode().frequency == 1
        audit_profile(profiler.profile)

    def test_negative_initial_capacity_rejected(self):
        with pytest.raises(CapacityError):
            DynamicProfiler(initial_capacity=-1)


class TestRemoveSemantics:
    def test_remove_known(self):
        profiler = DynamicProfiler()
        profiler.add("x")
        profiler.remove("x")
        assert profiler.frequency("x") == 0

    def test_remove_unknown_registers_at_minus_one(self):
        profiler = DynamicProfiler()
        profiler.remove("y")
        assert profiler.frequency("y") == -1
        assert profiler.least().frequency == -1

    def test_strict_remove_unknown_raises(self):
        profiler = DynamicProfiler(allow_negative=False)
        with pytest.raises(FrequencyUnderflowError):
            profiler.remove("never-seen")
        assert "never-seen" not in profiler

    def test_strict_remove_at_zero_raises(self):
        profiler = DynamicProfiler(allow_negative=False)
        profiler.add("x")
        profiler.remove("x")
        with pytest.raises(FrequencyUnderflowError):
            profiler.remove("x")

    def test_update_dispatch(self):
        profiler = DynamicProfiler()
        profiler.update("a", True)
        profiler.update("a", False)
        assert profiler.frequency("a") == 0
        assert profiler.n_events == 2


class TestPhantomAwareQueries:
    def test_mode_ignores_phantoms(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        result = profiler.mode()
        assert result.frequency == 1
        assert result.example == "a"
        assert result.count == 1

    def test_mode_at_zero_with_ties(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.register("a")
        profiler.register("b")
        result = profiler.mode()
        assert result.frequency == 0
        assert result.count == 2
        assert result.example in ("a", "b")

    def test_mode_all_negative(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.remove("a")
        profiler.remove("b")
        result = profiler.mode()
        assert result.frequency == -1
        assert result.count == 2

    def test_least_skips_phantom_zero_block(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.add("a")
        result = profiler.least()
        # Only "a" is registered; the least frequency must be 2, not the
        # phantoms' zero.
        assert result.frequency == 2
        assert result.example == "a"

    def test_least_zero_with_real_zeros(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.register("b")
        result = profiler.least()
        assert result.frequency == 0
        assert result.example == "b"
        assert result.count == 1

    def test_empty_raises(self):
        profiler = DynamicProfiler()
        with pytest.raises(EmptyProfileError):
            profiler.mode()
        with pytest.raises(EmptyProfileError):
            profiler.median_frequency()

    def test_median_over_registered_only(self):
        profiler = DynamicProfiler(initial_capacity=64)
        for __ in range(3):
            profiler.add("hot")
        profiler.add("warm")
        profiler.register("cold")
        # Registered frequencies: [0, 1, 3] -> median 1.
        assert profiler.median_frequency() == 1

    def test_quantiles_over_registered_only(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.remove("low")        # -1
        profiler.add("mid")           # 1
        profiler.add("high")
        profiler.add("high")          # 2
        assert profiler.quantile(0.0) == -1
        assert profiler.quantile(1.0) == 2
        with pytest.raises(CapacityError):
            profiler.quantile(2.0)

    def test_top_k_excludes_phantoms(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.register("b")
        entries = profiler.top_k(10)
        assert [entry.obj for entry in entries] == ["a", "b"]

    def test_top_k_negative_k_rejected(self):
        with pytest.raises(CapacityError):
            DynamicProfiler().top_k(-1)

    def test_bottom_k_excludes_phantoms(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.register("b")
        entries = profiler.bottom_k(10)
        assert [entry.obj for entry in entries] == ["b", "a"]

    def test_histogram_subtracts_phantoms(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.register("b")
        assert profiler.histogram() == [(0, 1), (1, 1)]

    def test_histogram_drops_empty_zero_entry(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        assert profiler.histogram() == [(1, 1)]

    def test_support(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.register("b")
        assert profiler.support(0) == 1
        assert profiler.support(1) == 1
        assert profiler.support(5) == 0

    def test_objects_with_frequency_filters_phantoms(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.register("b")
        assert profiler.objects_with_frequency(0) == ["b"]
        assert profiler.objects_with_frequency(1) == ["a"]
        assert profiler.objects_with_frequency(0, limit=0) == []

    def test_majority(self):
        profiler = DynamicProfiler()
        for __ in range(3):
            profiler.add("big")
        profiler.add("small")
        assert profiler.majority() == "big"
        assert DynamicProfiler().majority() is None

    def test_items_sorted_ascending(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.add("a")
        profiler.add("b")
        profiler.register("c")
        items = list(profiler.items())
        assert items == [("c", 0), ("b", 1), ("a", 2)]


class TestSnapshotAndTranslation:
    def test_snapshot_logical_universe(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        profiler.add("a")
        profiler.register("b")
        snap = profiler.snapshot()
        assert snap.capacity == 2
        assert sorted(snap.frequencies()) == [0, 2]
        assert snap.total == 2

    def test_snapshot_external_translation(self):
        profiler = DynamicProfiler(initial_capacity=64)
        profiler.add("a")
        snap = profiler.snapshot()
        dense_mode = snap.mode().example
        assert profiler.external(dense_mode) == "a"

    def test_external_out_of_range(self):
        profiler = DynamicProfiler()
        profiler.add("a")
        with pytest.raises(UnknownObjectError):
            profiler.external(1)

    def test_counts(self):
        profiler = DynamicProfiler(initial_capacity=8)
        profiler.add("a")
        profiler.remove("b")
        assert profiler.total == 0
        assert profiler.active_count == 2
        assert profiler.phantom_count == profiler.physical_capacity - 2
        assert profiler.allow_negative

    def test_repr(self):
        assert "DynamicProfiler" in repr(DynamicProfiler())


class TestDynamicBatchAtomicity:
    def test_rejected_strict_apply_registers_nothing(self):
        import pytest

        from repro.core.dynamic import DynamicProfiler
        from repro.errors import FrequencyUnderflowError

        profiler = DynamicProfiler(allow_negative=False)
        profiler.add("seen")
        with pytest.raises(FrequencyUnderflowError):
            profiler.apply([("brand_new", +1), ("never_seen", -1)])
        assert len(profiler) == 1
        assert "brand_new" not in profiler
        with pytest.raises(FrequencyUnderflowError):
            profiler.apply([("other_new", +1), ("seen", -2)])
        assert len(profiler) == 1
        assert profiler.frequency("seen") == 1
