"""Unit tests for the exact phi-heavy-hitters query and bulk counts."""

import pytest

from repro.core.profile import SProfile
from repro.errors import CapacityError


def oracle_hitters(freqs, phi):
    total = sum(freqs)
    if total <= 0:
        return set()
    return {x for x, f in enumerate(freqs) if f > phi * total}


class TestHeavyHitters:
    def test_known_case(self):
        profile = SProfile(5)
        profile.add_count(0, 6)
        profile.add_count(1, 3)
        profile.add_count(2, 1)
        # total = 10; phi = 0.25 -> only objects above 2.5
        hitters = profile.heavy_hitters(0.25)
        assert {entry.obj for entry in hitters} == {0, 1}
        assert hitters[0].obj == 0  # descending frequency order

    def test_majority_special_case(self):
        profile = SProfile(4)
        profile.add_count(2, 5)
        profile.add_count(3, 2)
        hitters = profile.heavy_hitters(0.5)
        assert [entry.obj for entry in hitters] == [2]
        assert profile.majority() == 2

    def test_no_hitters(self):
        profile = SProfile(4)
        for x in range(4):
            profile.add(x)
        assert profile.heavy_hitters(0.5) == []

    def test_all_mass_one_object(self):
        profile = SProfile(3)
        profile.add_count(1, 10)
        hitters = profile.heavy_hitters(0.99)
        assert [entry.obj for entry in hitters] == [1]

    def test_zero_total(self):
        profile = SProfile(3)
        assert profile.heavy_hitters(0.1) == []
        profile.remove(0)  # negative total
        assert profile.heavy_hitters(0.1) == []

    def test_phi_validation(self):
        profile = SProfile(3)
        with pytest.raises(CapacityError):
            profile.heavy_hitters(0.0)
        with pytest.raises(CapacityError):
            profile.heavy_hitters(1.5)

    def test_matches_oracle_on_random_states(self, rng):
        for _ in range(30):
            m = rng.randrange(1, 30)
            profile = SProfile(m)
            freqs = [0] * m
            for _ in range(rng.randrange(0, 200)):
                x = rng.randrange(m)
                is_add = rng.random() < 0.8
                profile.update(x, is_add)
                freqs[x] += 1 if is_add else -1
            for phi in (0.01, 0.1, 0.3, 0.5, 0.9, 1.0):
                found = {entry.obj for entry in profile.heavy_hitters(phi)}
                assert found == oracle_hitters(freqs, phi), (m, phi)

    def test_works_on_snapshot(self):
        profile = SProfile(4)
        profile.add_count(0, 5)
        profile.add(1)
        snap = profile.snapshot()
        assert [entry.obj for entry in snap.heavy_hitters(0.5)] == [0]


class TestBulkCounts:
    def test_add_count(self):
        profile = SProfile(3)
        profile.add_count(1, 4)
        assert profile.frequency(1) == 4
        assert profile.n_adds == 4

    def test_remove_count(self):
        profile = SProfile(3)
        profile.add_count(1, 4)
        profile.remove_count(1, 6)
        assert profile.frequency(1) == -2

    def test_zero_count_is_noop(self):
        profile = SProfile(3)
        profile.add_count(1, 0)
        profile.remove_count(1, 0)
        assert profile.n_events == 0

    def test_negative_count_rejected(self):
        profile = SProfile(3)
        with pytest.raises(CapacityError):
            profile.add_count(1, -1)
        with pytest.raises(CapacityError):
            profile.remove_count(1, -1)


class TestDynamicConsume:
    def test_consume_pairs(self):
        from repro.core.dynamic import DynamicProfiler

        profiler = DynamicProfiler()
        count = profiler.consume(
            [("a", True), ("b", True), ("a", True), ("b", False)]
        )
        assert count == 4
        assert profiler.frequency("a") == 2
        assert profiler.frequency("b") == 0
