"""Client libraries for the profiling service.

Two clients, one vocabulary — both mirror the facade verbs
(``ingest`` / ``evaluate`` / ``describe`` / checkpoint download) and
re-raise server-side rejections as the library's own exception types:

- :class:`AsyncProfileClient` — asyncio; supports **pipelining**: any
  number of requests may be in flight, responses are matched by id, so
  a writer saturates the server's micro-batching flusher instead of
  paying one round trip per wire batch.  ``ingest(..., wait=False)``
  returns the pending ack as an :class:`asyncio.Future`.
- :class:`ProfileClient` — blocking sockets, strictly request/response;
  the right tool for scripts, examples and REPLs (pair it with
  :class:`~repro.server.service.ServerThread` for in-process use).

Both accept the facade's full event vocabulary (``Event`` objects,
``(obj, flag)`` / ``(obj, delta)`` pairs, delta mappings) — batches
are normalized to wire pairs with the facade's own normalizer, so the
wire contract cannot drift from the in-process one.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import struct
from time import perf_counter
from typing import Any

from repro.api.facade import _normalize_batch
from repro.api.plan import Query, normalize_queries
from repro.api.results import EvalResult
from repro.server.protocol import (
    DEFAULT_MAX_FRAME,
    ProtocolError,
    decode_body,
    decode_error,
    decode_value,
    encode_queries,
    pack_frame,
    read_frame,
)

__all__ = ["AsyncProfileClient", "ProfileClient"]

_LEN = struct.Struct(">I")


class AsyncProfileClient:
    """Pipelining asyncio client.  Construct via :meth:`connect`.

    >>> client = await AsyncProfileClient.connect(port=port)  # doctest: +SKIP
    >>> await client.ingest([(7, +2), (3, +1)])               # doctest: +SKIP
    3
    """

    def __init__(self, reader, writer, hello: dict) -> None:
        self._reader = reader
        self._writer = writer
        self._hello = hello
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._recv_task = asyncio.create_task(self._recv_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> "AsyncProfileClient":
        """Open a connection and consume the server hello frame."""
        reader, writer = await asyncio.open_connection(host, port)
        hello = await read_frame(reader, max_frame)
        if hello is None or hello.get("server") != "repro.server":
            writer.close()
            raise ProtocolError(
                f"{host}:{port} did not answer with a repro.server hello"
            )
        return cls(reader, writer, hello)

    @property
    def hello(self) -> dict:
        """The server's hello frame (backend, keys, capacity, ...)."""
        return self._hello

    # -- plumbing ------------------------------------------------------

    async def _recv_loop(self) -> None:
        try:
            while True:
                msg = await read_frame(self._reader)
                if msg is None:
                    break
                future = self._pending.pop(msg.get("id"), None)
                if future is None or future.done():
                    continue
                if msg.get("ok"):
                    future.set_result(msg)
                else:
                    exc = decode_error(msg.get("error"))
                    exc.remote_seq = msg.get("seq")
                    future.set_exception(exc)
        except (ProtocolError, ConnectionError, OSError) as exc:
            self._fail_pending(exc)
        finally:
            self._fail_pending(
                ConnectionError("server connection closed")
            )

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _send(self, op: str, **fields) -> asyncio.Future:
        if self._closed:
            raise ConnectionError("client is closed")
        if self._recv_task.done():
            # The receiver is gone; a future registered now would
            # never resolve.
            raise ConnectionError("server connection closed")
        req_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self._writer.write(pack_frame({"id": req_id, "op": op, **fields}))
        # drain() is the client-side backpressure valve: a no-op while
        # the transport buffer is shallow, suspends when the server
        # stops reading.
        await self._writer.drain()
        return future

    async def request(self, op: str, **fields) -> dict:
        """Send one raw request and await its response payload."""
        return await (await self._send(op, **fields))

    # -- the facade verbs ----------------------------------------------

    async def ingest(self, batch, *, wait: bool = True):
        """Apply one wire batch; return net unit events applied.

        With ``wait=False`` the pending ack is returned as a Future
        resolving to the response payload (``{"applied": n, "seq": s}``)
        — the pipelining hook: keep a window of futures in flight and
        award the ack latency to the micro-batch flush that served it.
        """
        pairs = [[obj, d] for obj, d in _normalize_batch(batch)]
        future = await self._send("ingest", events=pairs)
        if not wait:
            return future
        return (await future)["applied"]

    async def evaluate(self, *queries: Query) -> EvalResult:
        """The fused multi-query plan, one round trip."""
        plan = normalize_queries(queries)
        resp = await self.request(
            "evaluate", queries=encode_queries(plan)
        )
        values = tuple(
            decode_value(q.kind, v)
            for q, v in zip(plan, resp["values"])
        )
        return EvalResult(queries=plan, values=values)

    async def describe(self) -> dict[str, Any]:
        """Engine introspection plus the ``server`` stats block."""
        return (await self.request("describe"))["info"]

    async def checkpoint(self) -> dict[str, Any]:
        """Download the facade checkpoint (``Profiler.to_state()``)."""
        return (await self.request("checkpoint"))["state"]

    async def ping(self) -> float:
        """Round-trip time through the ordered pipeline, in seconds."""
        start = perf_counter()
        await self.request("ping")
        return perf_counter() - start

    # Single-query conveniences (one evaluate round trip each).

    async def frequency(self, obj) -> int:
        return (await self.evaluate(Query.frequency(obj)))[0]

    async def mode(self):
        return (await self.evaluate(Query.mode()))[0]

    async def top_k(self, k: int):
        return (await self.evaluate(Query.top_k(k)))[0]

    async def total(self) -> int:
        return (await self.evaluate(Query.total()))[0]

    # -- lifecycle -----------------------------------------------------

    async def aclose(self) -> None:
        """Graceful close: drain in-flight acks, say goodbye, hang up."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._recv_task.done():
                raise ConnectionError("server connection closed")
            req_id = next(self._ids)
            future = asyncio.get_running_loop().create_future()
            self._pending[req_id] = future
            self._writer.write(pack_frame({"id": req_id, "op": "close"}))
            await self._writer.drain()
            await asyncio.wait_for(future, 10.0)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        self._recv_task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncProfileClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class ProfileClient:
    """Blocking request/response client over a plain socket.

    >>> client = ProfileClient("127.0.0.1", port)   # doctest: +SKIP
    >>> client.ingest({7: +2, 3: +1})               # doctest: +SKIP
    3
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rwb")
        self._max_frame = max_frame
        self._ids = itertools.count(1)
        self._closed = False
        self.hello = self._read_frame()
        if self.hello is None or self.hello.get("server") != "repro.server":
            self.close()
            raise ProtocolError(
                f"{host}:{port} did not answer with a repro.server hello"
            )

    def _read_frame(self):
        head = self._file.read(_LEN.size)
        if not head:
            return None
        if len(head) < _LEN.size:
            raise ProtocolError("connection closed mid-frame")
        (length,) = _LEN.unpack(head)
        if length > self._max_frame:
            raise ProtocolError(
                f"frame of {length} bytes exceeds the "
                f"{self._max_frame}-byte cap"
            )
        body = self._file.read(length)
        if len(body) < length:
            raise ProtocolError("connection closed mid-frame")
        return decode_body(body)

    def request(self, op: str, **fields) -> dict:
        """Send one request and block for its response payload."""
        if self._closed:
            raise ConnectionError("client is closed")
        req_id = next(self._ids)
        self._file.write(pack_frame({"id": req_id, "op": op, **fields}))
        self._file.flush()
        while True:
            msg = self._read_frame()
            if msg is None:
                raise ConnectionError("server connection closed")
            if msg.get("id") != req_id:
                continue  # stale frame (e.g. from a broken predecessor)
            if msg.get("ok"):
                return msg
            exc = decode_error(msg.get("error"))
            exc.remote_seq = msg.get("seq")
            raise exc

    # -- the facade verbs ----------------------------------------------

    def ingest(self, batch) -> int:
        """Apply one wire batch; return net unit events applied."""
        pairs = [[obj, d] for obj, d in _normalize_batch(batch)]
        return self.request("ingest", events=pairs)["applied"]

    def evaluate(self, *queries: Query) -> EvalResult:
        """The fused multi-query plan, one round trip."""
        plan = normalize_queries(queries)
        resp = self.request("evaluate", queries=encode_queries(plan))
        values = tuple(
            decode_value(q.kind, v)
            for q, v in zip(plan, resp["values"])
        )
        return EvalResult(queries=plan, values=values)

    def describe(self) -> dict[str, Any]:
        return self.request("describe")["info"]

    def checkpoint(self) -> dict[str, Any]:
        return self.request("checkpoint")["state"]

    def ping(self) -> float:
        start = perf_counter()
        self.request("ping")
        return perf_counter() - start

    def frequency(self, obj) -> int:
        return self.evaluate(Query.frequency(obj))[0]

    def mode(self):
        return self.evaluate(Query.mode())[0]

    def top_k(self, k: int):
        return self.evaluate(Query.top_k(k))[0]

    def total(self) -> int:
        return self.evaluate(Query.total())[0]

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Graceful close (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            req_id = next(self._ids)
            self._file.write(pack_frame({"id": req_id, "op": "close"}))
            self._file.flush()
            while True:
                msg = self._read_frame()
                if msg is None or (
                    msg.get("id") == req_id and "closing" in msg
                ):
                    break
        except (ProtocolError, ConnectionError, OSError, ValueError):
            pass
        finally:
            try:
                self._file.close()
            except (OSError, ValueError):
                pass
            self._sock.close()

    def __enter__(self) -> "ProfileClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
