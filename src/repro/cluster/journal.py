"""Per-partition replay journals for the cluster router.

The journal IS the recovery buffer: every wire batch the router
accepts is partitioned and appended here — tagged with its ``seq``
serialization token — *before* anything is sent to a replica.  A
replica that dies is brought back by restoring its partition's last
snapshot and replaying the journal entries behind it in ``seq`` order;
because the restore rewinds the replica to the snapshot first, a send
that raced the crash (applied on the old process, or half-delivered)
is wiped and the replay is exact, never double-counted.

Entries are only ever dropped by :meth:`PartitionJournal.clear`, which
the router calls immediately after a successful snapshot: the router's
pipeline is synchronous (one flusher task appends, delivers, then
snapshots), so at snapshot time every entry present has been delivered
on the replica's ordered connection *before* the checkpoint request —
the snapshot covers them all by construction.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["JournalEntry", "PartitionJournal"]


class JournalEntry:
    """One partitioned wire batch: parallel id/delta columns + seq."""

    __slots__ = ("seq", "ids", "deltas")

    def __init__(self, seq: int, ids, deltas) -> None:
        self.seq = seq
        self.ids = ids
        self.deltas = deltas

    def __len__(self) -> int:
        return len(self.ids)

    def __repr__(self) -> str:
        return f"JournalEntry(seq={self.seq}, events={len(self.ids)})"


class PartitionJournal:
    """Seq-ordered post-snapshot wire batches for one partition."""

    __slots__ = ("partition", "_entries", "snapshot_seq", "appended_total")

    def __init__(self, partition: int) -> None:
        self.partition = partition
        self._entries: list[JournalEntry] = []
        #: ``seq`` high-water mark covered by the partition's snapshot
        #: (0 before the first snapshot: "empty replica" is the
        #: implicit snapshot every replica process boots with).
        self.snapshot_seq = 0
        self.appended_total = 0

    def append(self, seq: int, ids, deltas) -> JournalEntry:
        """Record one partitioned wire batch (before it is sent)."""
        if self._entries and seq <= self._entries[-1].seq:
            raise ValueError(
                f"journal seq must be monotonic: {seq} after "
                f"{self._entries[-1].seq}"
            )
        entry = JournalEntry(seq, ids, deltas)
        self._entries.append(entry)
        self.appended_total += 1
        return entry

    def entries(self) -> Iterator[JournalEntry]:
        """The replay tape, in ``seq`` order."""
        return iter(self._entries)

    def clear(self, snapshot_seq: int) -> int:
        """A snapshot covering ``snapshot_seq`` landed; drop the tape.

        Returns the number of entries retired.  Every current entry is
        covered (see the module docstring), so this asserts rather
        than filters — a partial truncation would mean the router's
        synchronous-pipeline invariant broke.
        """
        if self._entries and self._entries[-1].seq > snapshot_seq:
            raise ValueError(
                f"snapshot at seq {snapshot_seq} does not cover journal "
                f"tail at seq {self._entries[-1].seq}"
            )
        retired = len(self._entries)
        self._entries = []
        self.snapshot_seq = max(self.snapshot_seq, snapshot_seq)
        return retired

    @property
    def last_seq(self) -> int:
        """Highest ``seq`` this partition has seen (journal or snapshot)."""
        if self._entries:
            return self._entries[-1].seq
        return self.snapshot_seq

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PartitionJournal(partition={self.partition}, "
            f"entries={len(self._entries)}, "
            f"snapshot_seq={self.snapshot_seq})"
        )
