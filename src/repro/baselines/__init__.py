"""Baseline profilers the paper compares S-Profile against.

Every class here maintains the same frequency array under the same ±1
event stream, differing only in the machinery that keeps order
statistics queryable:

- :class:`~repro.baselines.bucket.BucketProfiler` — no machinery;
  queries re-scan.  The ground-truth oracle for the test suite.
- :class:`~repro.baselines.heap.HeapProfiler` — indexed binary heap
  (paper section 3.1 comparator): O(log m) updates, O(1) mode.
- :class:`~repro.baselines.tree_profiler.TreeProfiler` over an
  order-statistic multiset (treap, AVL, skip list, Fenwick, sorted
  list) — the paper's balanced-tree comparator (section 3.2, GNU PBDS
  stand-in): O(log m) updates, O(log m) quantiles.

Use :func:`~repro.baselines.registry.make_profiler` to construct any of
them (and S-Profile itself) by name.
"""

from repro.baselines.avl import AVLMultiset
from repro.baselines.base import ProfilerBase, QUERY_NAMES
from repro.baselines.bucket import BucketProfiler
from repro.baselines.fenwick import FenwickMultiset
from repro.baselines.heap import HeapProfiler, IndexedBinaryHeap
from repro.baselines.registry import (
    available_profilers,
    make_profiler,
    profiler_supports,
)
from repro.baselines.skiplist import IndexableSkipList
from repro.baselines.sortedlist import SortedListMultiset
from repro.baselines.treap import TreapMultiset
from repro.baselines.tree_profiler import TreeProfiler

__all__ = [
    "AVLMultiset",
    "BucketProfiler",
    "FenwickMultiset",
    "HeapProfiler",
    "IndexableSkipList",
    "IndexedBinaryHeap",
    "ProfilerBase",
    "QUERY_NAMES",
    "SortedListMultiset",
    "TreapMultiset",
    "TreeProfiler",
    "available_profilers",
    "make_profiler",
    "profiler_supports",
]
