"""repro.api — the unified public facade of the profiling system.

One factory selects any backend behind one contract::

    from repro.api import Profiler, Query

    profiler = Profiler.open(1_000_000, backend="auto")
    profiler.ingest(events)                      # one write verb
    profiler.mode()                              # one query surface
    profiler.evaluate(Query.mode(),              # fused: one block walk
                      Query.top_k(10),
                      Query.histogram(),
                      Query.quantile(0.99))

See :mod:`repro.api.facade` for the facade, :mod:`repro.api.plan` for
the query-plan layer, :mod:`repro.api.backends` for backend selection
and :mod:`repro.api.results` for the versioned result containers.
``docs/api.md`` documents the surface with a migration table from the
pre-facade entry points.
"""

from repro.api.backends import ApproxProfiler, available_backends
from repro.api.facade import API_STATE_VERSION, Profiler
from repro.api.plan import Query
from repro.api.results import (
    RESULT_VERSION,
    EvalResult,
    ModeResult,
    TopEntry,
)

__all__ = [
    "API_STATE_VERSION",
    "ApproxProfiler",
    "EvalResult",
    "ModeResult",
    "Profiler",
    "Query",
    "RESULT_VERSION",
    "TopEntry",
    "available_backends",
]
