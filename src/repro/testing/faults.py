"""Deterministic fault injection for the cluster/serving stack.

The hardening tests need to crash, delay and drop at *exact* moments
— "after the WAL fsync but before the fan-out", "between 2PC prepare
and commit" — and need the same schedule to replay bit-for-bit on
every run.  This module provides that as a seeded schedule of named
**fault points**:

- Production code declares points with :func:`fault_point` (async) or
  :func:`fault_point_sync` (sync):  ``await fault_point("router.fanout")``.
  With no schedule armed the call is one module-attribute check — the
  serving hot path pays nothing.
- Tests build a :class:`FaultSchedule` — either explicit triggers
  (``[("router.fanout", 2, "crash")]`` = crash the 3rd time that point
  fires) or :meth:`FaultSchedule.random` (a seeded draw over a menu of
  points) — and :func:`arm` it around the scenario.

Actions
-------
``"error"``
    Raise :class:`InjectedFault` (a :class:`ConnectionError`): the
    connection-shaped failure every retry/recovery path must absorb.
``"crash"``
    Raise :class:`SimulatedCrash` (``BaseException``-derived so no
    ``except Exception`` recovery path can swallow it): process death
    at this instruction.  The cluster router converts it into an
    in-process SIGKILL equivalent (abort every connection, stop
    serving, leave all state exactly as the dying process would);
    drivers then boot a fresh router on the same journal dir.
``float``
    ``asyncio.sleep(x)`` at the point (sync points ``time.sleep``):
    the injected-delay knob for deadline and circuit-breaker tests.
``callable``
    Run it (e.g. ``lambda: supervisor.crash(p)`` — kill a *different*
    process at this point, which is how "replica dies between prepare
    and commit" is scheduled deterministically).

Schedules also parse from a compact spec string
(:meth:`FaultSchedule.from_spec`, ``point:occurrence:action[:arg]``
comma-separated) so the CI chaos job can inject real delays into a
live ``python -m repro.cluster`` process via ``--faults`` /
``REPRO_FAULTS``.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Iterable

__all__ = [
    "FaultSchedule",
    "InjectedFault",
    "SimulatedCrash",
    "active_schedule",
    "arm",
    "disarm",
    "fault_point",
    "fault_point_sync",
]


class InjectedFault(ConnectionError):
    """A scheduled connection-shaped failure (retry paths must absorb it)."""

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(
            f"injected fault at {point!r} (occurrence {occurrence})"
        )
        self.point = point
        self.occurrence = occurrence


class SimulatedCrash(BaseException):
    """Scheduled process death at a fault point.

    Deliberately *not* an :class:`Exception`: no ``except Exception``
    recovery path may swallow it — only the component that models the
    crash (e.g. the router's crash converter) catches it explicitly,
    exactly as SIGKILL gives real code no chance to clean up.
    """

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(
            f"simulated crash at {point!r} (occurrence {occurrence})"
        )
        self.point = point
        self.occurrence = occurrence


class FaultSchedule:
    """A deterministic map from (fault point, occurrence) to an action.

    ``triggers`` is an iterable of ``(point, occurrence, action)``:
    the ``occurrence``-th time (0-based) that ``point`` fires, run
    ``action``.  Occurrence counting is per point name, monotonic over
    the armed lifetime, and exposed in :attr:`counts` so tests can
    assert a schedule actually fired (a trigger that never fires is a
    stale point name — :meth:`unfired` names them).
    """

    def __init__(
        self,
        triggers: Iterable[tuple[str, int, Any]] = (),
    ) -> None:
        self._triggers: dict[tuple[str, int], Any] = {}
        for point, occurrence, action in triggers:
            self.add(point, occurrence, action)
        self.counts: dict[str, int] = {}
        self.fired: list[tuple[str, int, Any]] = []

    def add(self, point: str, occurrence: int, action: Any) -> None:
        if occurrence < 0:
            raise ValueError(
                f"occurrence must be >= 0, got {occurrence}"
            )
        self._validate_action(action)
        self._triggers[(str(point), int(occurrence))] = action

    @staticmethod
    def _validate_action(action: Any) -> None:
        if action in ("error", "crash"):
            return
        if isinstance(action, bool):
            raise ValueError(f"invalid fault action {action!r}")
        if isinstance(action, (int, float)):
            if action < 0:
                raise ValueError(
                    f"delay action must be >= 0, got {action}"
                )
            return
        if callable(action):
            return
        raise ValueError(
            f"invalid fault action {action!r}; expected 'error', "
            f"'crash', a delay in seconds, or a callable"
        )

    # -- construction helpers ------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        points: Iterable[str],
        *,
        n_faults: int = 3,
        actions: tuple = ("error", "crash", 0.002),
        max_occurrence: int = 8,
    ) -> "FaultSchedule":
        """A seeded draw: ``n_faults`` triggers over ``points``.

        Same seed, same schedule — the property suite's replayable
        chaos source.  Occurrences are drawn in ``[0, max_occurrence)``
        so faults land inside a short scenario, not past its end.
        """
        rng = random.Random(seed)
        points = sorted(points)
        if not points:
            raise ValueError("need at least one fault point")
        schedule = cls()
        for _ in range(n_faults):
            schedule.add(
                rng.choice(points),
                rng.randrange(max_occurrence),
                rng.choice(actions),
            )
        return schedule

    @classmethod
    def from_spec(cls, spec: str) -> "FaultSchedule":
        """Parse ``point:occurrence:action[:arg]`` comma-separated.

        ``action`` is ``error``, ``crash`` or ``delay`` (whose ``arg``
        is seconds).  The CLI/env form used by the CI chaos job, e.g.
        ``router.fanout:3:delay:0.05,supervisor.spawn:1:error``.
        """
        schedule = cls()
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields = chunk.split(":")
            if len(fields) not in (3, 4):
                raise ValueError(
                    f"bad fault spec {chunk!r}; expected "
                    f"point:occurrence:action[:arg]"
                )
            point, occurrence, action = fields[0], int(fields[1]), fields[2]
            if action == "delay":
                if len(fields) != 4:
                    raise ValueError(
                        f"delay spec {chunk!r} needs seconds, e.g. "
                        f"{chunk}:0.05"
                    )
                schedule.add(point, occurrence, float(fields[3]))
            elif action in ("error", "crash"):
                if len(fields) != 3:
                    raise ValueError(
                        f"{action} spec {chunk!r} takes no argument"
                    )
                schedule.add(point, occurrence, action)
            else:
                raise ValueError(
                    f"unknown fault action {action!r} in {chunk!r}"
                )
        return schedule

    # -- firing --------------------------------------------------------

    def poll(self, point: str):
        """Count one occurrence of ``point``; return the due action.

        Returns ``(action, occurrence)`` or ``None``.  Pure
        bookkeeping — the caller (the module-level fault point
        helpers) performs the action, so ``poll`` stays synchronous
        and testable.
        """
        occurrence = self.counts.get(point, 0)
        self.counts[point] = occurrence + 1
        action = self._triggers.get((point, occurrence))
        if action is None:
            return None
        self.fired.append((point, occurrence, action))
        return action, occurrence

    def unfired(self) -> list[tuple[str, int]]:
        """Triggers that never fired (stale point names, short runs)."""
        fired = {(p, o) for p, o, _ in self.fired}
        return sorted(k for k in self._triggers if k not in fired)

    def __len__(self) -> int:
        return len(self._triggers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule({len(self._triggers)} triggers, "
            f"{len(self.fired)} fired)"
        )


#: The armed schedule (module-level: fault points are process-wide,
#: like the faults they simulate).  ``None`` = every point is free.
_ACTIVE: FaultSchedule | None = None


def arm(schedule: FaultSchedule) -> FaultSchedule:
    """Arm ``schedule`` process-wide; returns it (for chaining)."""
    global _ACTIVE
    _ACTIVE = schedule
    return schedule


def disarm() -> None:
    """Disarm fault injection (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


def active_schedule() -> FaultSchedule | None:
    return _ACTIVE


def _perform_sync(point: str, due) -> None:
    action, occurrence = due
    if action == "error":
        raise InjectedFault(point, occurrence)
    if action == "crash":
        raise SimulatedCrash(point, occurrence)
    if isinstance(action, (int, float)):
        time.sleep(action)
        return
    action()


async def fault_point(point: str) -> None:
    """Async fault point: sleep, raise or call per the armed schedule."""
    schedule = _ACTIVE
    if schedule is None:
        return
    due = schedule.poll(point)
    if due is None:
        return
    action, occurrence = due
    if action == "error":
        raise InjectedFault(point, occurrence)
    if action == "crash":
        raise SimulatedCrash(point, occurrence)
    if isinstance(action, (int, float)):
        await asyncio.sleep(action)
        return
    result = action()
    if asyncio.iscoroutine(result):
        await result


def fault_point_sync(point: str) -> None:
    """Sync fault point (journal/WAL code paths, supervisor spawns)."""
    schedule = _ACTIVE
    if schedule is None:
        return
    due = schedule.poll(point)
    if due is None:
        return
    _perform_sync(point, due)
