"""FlatProfile: Algorithm 1 on parallel flat integer arrays.

:class:`~repro.core.profile.SProfile` is already O(1) per event, but in
CPython every one of those O(1) steps pays object overhead: each rank
resolves through a list of :class:`~repro.core.block.Block` instances
(pointer chase + slot-attribute dispatch), and block birth/death churns
the :class:`~repro.core.block.BlockPool` free list through bound-method
calls.  ``FlatProfile`` stores the *same* structure as parallel flat
integer arrays — the struct-of-arrays layout Tarjan–Zwick use to keep
resizable-array items at raw-array speed, and the layout profile-sketch
estimators assume —

- ``_ftot`` / ``_ttof``: the paper's FtoT / TtoF permutations, plain
  int lists;
- ``_ptrb``: rank -> *block id* (an int), the paper's PtrB;
- ``_bl`` / ``_bre`` / ``_bf``: block id -> left rank / exclusive
  right bound / frequency, three parallel int lists replacing Block
  objects.  Blocks are **half-open** ``[l, re)`` internally: the
  exclusive bound doubles as (a) the rank index of the right
  neighbour's pointer and (b) the shrunken bound after an add detaches
  the right edge, so the dominant update path re-uses loaded ints
  instead of allocating ``r±1`` objects (CPython only caches ints up
  to 256; rank arithmetic above that allocates).  The read API
  (:class:`_FlatBlockReader`) still presents the paper's inclusive
  ``(l, r, f)`` triples;
- ``_prev`` / ``_nxt``: rank predecessor/successor tables
  (``prev[k] == k-1``, ``nxt[k] == k+1``).  CPython only caches small
  ints, so every ``r±1`` on a rank above 256 *allocates* an int
  object; reading the neighbour rank out of an immutable table turns
  all rank arithmetic in the hot loops into allocation-free list
  loads — the single biggest constant-factor lever measured here
  (+30-50% on the fused paths);
- dead block ids are recycled through an intrusive free list threaded
  through ``_bl`` (``_bl[dead] = next dead id``, head in
  ``_free_head``) — no pool object, no ``append``/``pop`` calls.

Every update therefore touches only integer loads and stores on lists.
The payoff is largest on the stream-consumption paths
(:meth:`FlatProfile.consume_arrays`,
:meth:`FlatProfile.track_statistic`), which inline the whole update
into one loop with every lookup hoisted to a local — there is no
per-event method dispatch at all.  ``benchmarks/`` and
``python -m repro.bench trajectory`` measure the effect (~2x per-event
throughput, >4x batch ingestion; see ``BENCH_core.json``).

Two structural notes:

- The live block *count* is never maintained on the hot path: every
  minted slot is either live or on the free list, so ``block_count``
  is derived by walking the runs (O(#blocks)).
- Statistic upkeep inside the fused loops exploits a property of the
  ±1 update: an add changes the sorted array ``T`` at exactly one rank
  (the right edge ``r`` of the touched block, ``T[r] = f+1``) and a
  remove at exactly its left edge ``l``.  Keeping *any* fixed-rank
  statistic (mode = rank ``m-1``, median = rank ``(m-1)//2``, minimum
  = rank 0) current is therefore at most a single compare per event —
  and free for the mode, whose compare folds into branches the update
  takes anyway.

Batch ingestion mirrors :class:`SProfile`'s two regimes: sparse batches
climb the block structure per key; dense batches rebuild wholesale —
vectorized through NumPy when it is importable (one ``bincount`` to
coalesce, one ``argsort`` + run-length encode to rebuild, all C speed),
with a pure-Python fallback.

**The array engine** (``array_engine=True``) keeps the same structure in
preallocated ``int64`` NumPy buffers instead of Python lists.  The
block-slot arrays grow by amortized doubling (the Tarjan–Zwick
resizable-array discipline), so state is a handful of contiguous
buffers:

- zero-copy snapshots and checkpoints — exporting state is O(buffers)
  Python objects (see
  :func:`repro.core.checkpoint.flat_profile_to_array_state`), not O(m)
  boxed ints;
- external hosting — :meth:`FlatProfile.attach_buffers` wraps buffers
  *owned by someone else* (a ``multiprocessing.shared_memory`` segment;
  see :mod:`repro.engine.parallel`), with scalar state mirrored in a
  small header so a read-only view in another process stays current;
- the vectorized batch paths write **in place** into the buffers, so a
  shared-memory mapping never goes stale.

The per-event hot loops still run at list speed: the fused stream paths
materialize list mirrors, run the canonical loops, and write the result
back into the buffers in one C-speed pass per array — an O(m + batch)
round-trip that amortizes over any real batch and keeps exactly one
copy of the update logic.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.block import Block
from repro.core.queries import ProfileQueryMixin
from repro.errors import (
    CapacityError,
    EmptyProfileError,
    FrequencyUnderflowError,
    InvariantViolationError,
)

try:  # optional vectorized coalesce/rebuild path
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the test env
    _np = None

__all__ = ["FlatProfile", "HEADER_SLOTS"]

#: ``int64`` slots reserved for the scalar-state header of a
#: buffer-attached (e.g. shared-memory hosted) profile.
HEADER_SLOTS = 16

# Header layout: scalar state a cross-process read view must see.
(
    _H_MAGIC,
    _H_M,
    _H_BN,
    _H_FREE,
    _H_ADDS,
    _H_REMOVES,
    _H_BASE,
    _H_TRACKED,
    _H_NEG,
) = range(9)

_HEADER_MAGIC = 0x53504C41  # "SPLA"


class _FlatBlockReader:
    """Read-only :class:`~repro.core.blockset.BlockSet` facade over the
    flat arrays.

    Materializes :class:`~repro.core.block.Block` values (inclusive
    ``(l, r, f)``, the paper's notation) on demand so every block-walk
    consumer of the package — the query mixin,
    :func:`~repro.core.validation.audit_profile`, snapshots, the
    sharded merges, the fused-plan runs views — drives a
    ``FlatProfile`` unchanged.  The view is stateless: it reads the
    live arrays, so it never goes stale.
    """

    __slots__ = ("_p",)

    def __init__(self, profile: "FlatProfile") -> None:
        self._p = profile

    @property
    def capacity(self) -> int:
        return self._p._m

    @property
    def n_blocks(self) -> int:
        return self._p.block_count

    @property
    def tracks_freq_index(self) -> bool:
        return False

    def block_at(self, rank: int) -> Block:
        p = self._p
        if not 0 <= rank < p._m:
            raise IndexError(f"rank {rank} out of range [0, {p._m})")
        b = p._ptrb[rank]
        # int() keeps np.int64 scalars (array engine) out of Block
        # fields — downstream consumers JSON-serialize and hash them.
        return Block(int(p._bl[b]), int(p._bre[b]) - 1, int(p._bf[b]))

    def leftmost(self) -> Block:
        self._require_nonempty()
        return self.block_at(0)

    def rightmost(self) -> Block:
        self._require_nonempty()
        return self.block_at(self._p._m - 1)

    def iter_blocks(self) -> Iterator[Block]:
        p = self._p
        ptrb = p._ptrb
        bl = p._bl
        bre = p._bre
        bf = p._bf
        m = p._m
        rank = 0
        while rank < m:
            b = ptrb[rank]
            re = int(bre[b])
            yield Block(int(bl[b]), re - 1, int(bf[b]))
            rank = re

    def iter_blocks_desc(self) -> Iterator[Block]:
        p = self._p
        ptrb = p._ptrb
        bl = p._bl
        bre = p._bre
        bf = p._bf
        rank = p._m - 1
        while rank >= 0:
            b = ptrb[rank]
            l = int(bl[b])
            yield Block(l, int(bre[b]) - 1, int(bf[b]))
            rank = l - 1

    def block_for_frequency(self, f: int) -> Block | None:
        for block in self.iter_blocks():
            if block.f == f:
                return block
            if block.f > f:
                return None
        return None

    def as_tuples(self) -> list[tuple[int, int, int]]:
        return [block.as_tuple() for block in self.iter_blocks()]

    def audit(self) -> None:
        """Verify the flat structural invariants (mirror of
        :meth:`~repro.core.blockset.BlockSet.audit`, plus free-list
        coherence)."""
        p = self._p
        m = p._m
        if len(p._ptrb) != m:
            raise InvariantViolationError(
                f"ptrb length {len(p._ptrb)} != capacity {m}"
            )
        # Array engine: slots = minted prefix of the preallocated
        # buffers; the buffers themselves just have to agree and cover.
        slots = p.block_slots
        if p._array:
            if not (len(p._bl) == len(p._bre) == len(p._bf) >= slots):
                raise InvariantViolationError(
                    "block buffers disagree on capacity: "
                    f"l={len(p._bl)} re={len(p._bre)} f={len(p._bf)} "
                    f"minted={slots}"
                )
        elif len(p._bre) != slots or len(p._bf) != slots:
            raise InvariantViolationError(
                "block arrays disagree on slot count: "
                f"l={len(p._bl)} re={len(p._bre)} f={len(p._bf)}"
            )
        live: set[int] = set()
        prev_f: int | None = None
        rank = 0
        while rank < m:
            b = p._ptrb[rank]
            if not 0 <= b < slots:
                raise InvariantViolationError(
                    f"ptrb[{rank}] = {b} outside slot range [0, {slots})"
                )
            l, re, f = p._bl[b], p._bre[b], p._bf[b]
            if l != rank:
                raise InvariantViolationError(
                    f"block {b} [{l}, {re}) f={f} does not start at "
                    f"rank {rank}"
                )
            if re <= l or re > m:
                raise InvariantViolationError(
                    f"block {b} [{l}, {re}) f={f} has bad bounds"
                )
            if prev_f is not None and f <= prev_f:
                raise InvariantViolationError(
                    f"block frequencies not strictly increasing at "
                    f"block {b} [{l}, {re}) f={f}"
                )
            for inner in range(l, re):
                if p._ptrb[inner] != b:
                    raise InvariantViolationError(
                        f"ptrb[{inner}] does not point at covering block {b}"
                    )
            live.add(b)
            prev_f = f
            rank = re
        # Free list: walks dead slots only, visits each at most once,
        # and together with the live set covers every minted slot.
        seen_free: set[int] = set()
        head = int(p._free_head)
        while head >= 0:
            if head >= slots:
                raise InvariantViolationError(
                    f"free list points outside the {slots} minted "
                    f"slots: {head}"
                )
            if head in live:
                raise InvariantViolationError(
                    f"free list contains live block {head}"
                )
            if head in seen_free:
                raise InvariantViolationError(
                    f"free list cycles through block {head}"
                )
            seen_free.add(head)
            head = int(p._bl[head])
        if m > 0 and len(live) + len(seen_free) != slots:
            raise InvariantViolationError(
                f"{slots} slots minted but {len(live)} live + "
                f"{len(seen_free)} free"
            )

    def _require_nonempty(self) -> None:
        if self._p._m == 0:
            raise EmptyProfileError("block set has zero capacity")

    def __repr__(self) -> str:
        return (
            f"_FlatBlockReader(capacity={self._p._m}, "
            f"n_blocks={self.n_blocks})"
        )


class FlatProfile(ProfileQueryMixin):
    """The paper's profiler on flat struct-of-arrays storage.

    Drop-in for :class:`~repro.core.profile.SProfile` (same update and
    query surface, same batch semantics, same checkpoint schema) with
    the hot path rewritten to touch only integer list loads/stores.
    Open through the facade as ``Profiler.open(m, backend="flat")`` —
    it is also what ``backend="auto"`` picks for dense keys.

    Parameters
    ----------
    capacity:
        ``m``, the number of dense object ids.
    allow_negative:
        Permit frequencies below zero (paper semantics, default).  When
        False a remove below zero raises
        :class:`~repro.errors.FrequencyUnderflowError`; the fused
        stream loops then route through the guarded per-event methods.

    Examples
    --------
    >>> p = FlatProfile(capacity=5)
    >>> for x in [1, 1, 3, 1, 2]:
    ...     p.add(x)
    >>> p.mode().frequency, p.mode().example
    (3, 1)
    >>> p.remove(1)
    >>> p.top_k(2)
    [TopEntry(obj=1, frequency=2), TopEntry(obj=3, frequency=1)]
    """

    #: Registry-facing metadata (duck-typed counterpart of ProfilerBase).
    name = "flat"
    SUPPORTED_QUERIES = frozenset(
        {
            "frequency",
            "mode",
            "least",
            "max_frequency",
            "min_frequency",
            "top_k",
            "kth_most_frequent",
            "median",
            "quantile",
            "histogram",
            "support",
        }
    )

    __slots__ = (
        "_m",
        "_ftot",
        "_ttof",
        "_ptrb",
        "_bl",
        "_bre",
        "_bf",
        "_prev",
        "_nxt",
        "_free_head",
        "_blocks",
        "_last_tracked",
        "_allow_negative",
        "_base_total",
        "_n_adds",
        "_n_removes",
        "_array",
        "_bn",
        "_header",
        "_obs",
        "_obs_grows",
    )

    def __init__(
        self,
        capacity: int,
        *,
        allow_negative: bool = True,
        array_engine: bool = False,
        obs=None,
    ) -> None:
        if capacity < 0:
            raise CapacityError(f"capacity must be >= 0, got {capacity}")
        if array_engine and _np is None:
            raise CapacityError("array_engine=True requires numpy")
        self._m = capacity
        self._array = bool(array_engine)
        self._header = None
        self._bn = 0
        if array_engine:
            self._ftot = _np.arange(capacity, dtype=_np.int64)
            self._ttof = _np.arange(capacity, dtype=_np.int64)
            self._ptrb = _np.zeros(capacity, dtype=_np.int64)
            slots = max(1, min(8, capacity)) if capacity else 1
            self._bl = _np.empty(slots, dtype=_np.int64)
            self._bre = _np.empty(slots, dtype=_np.int64)
            self._bf = _np.empty(slots, dtype=_np.int64)
            if capacity:
                self._bl[0] = 0
                self._bre[0] = capacity
                self._bf[0] = 0
                self._bn = 1
            self._prev = _np.arange(-1, capacity, dtype=_np.int64)
            self._nxt = _np.arange(1, capacity + 2, dtype=_np.int64)
        else:
            self._ftot = list(range(capacity))
            self._ttof = list(range(capacity))
            if capacity:
                self._ptrb = [0] * capacity
                self._bl = [0]
                self._bre = [capacity]
                self._bf = [0]
            else:
                self._ptrb = []
                self._bl = []
                self._bre = []
                self._bf = []
            self._prev = list(range(-1, capacity))
            self._nxt = list(range(1, capacity + 2))
        self._free_head = -1
        self._blocks = _FlatBlockReader(self)
        self._last_tracked = 0
        self._allow_negative = allow_negative
        self._base_total = 0
        self._n_adds = 0
        self._n_removes = 0
        self._bind_obs(obs)

    def _bind_obs(self, obs) -> None:
        """Resolve the obs knob and preallocate this profile's slots.

        Grow events are the only counter the core increments itself —
        ingest totals are already maintained exactly in
        ``_n_adds``/``_n_removes`` (and mirrored through the shared
        header), so snapshot-time gauges read them for free instead of
        taxing the fused loop with a second count.
        """
        from repro.obs.registry import resolve_registry

        self._obs = resolve_registry(obs)
        self._obs_grows = self._obs.counter("engine.grow.events")

    @classmethod
    def from_frequencies(
        cls,
        frequencies: Sequence[int],
        *,
        allow_negative: bool = True,
        array_engine: bool = False,
    ) -> "FlatProfile":
        """Bulk-build a profile from an initial frequency array.

        One sort — vectorized through NumPy when available (``argsort``
        + run-length encode at C speed), O(m log m) either way.
        """
        if not hasattr(frequencies, "__len__"):
            frequencies = list(frequencies)
        if _np is not None:
            freqs = _np.asarray(frequencies, dtype=_np.int64)
            if not allow_negative and freqs.size and int(freqs.min()) < 0:
                raise FrequencyUnderflowError(
                    "negative initial frequency with allow_negative=False"
                )
            self = cls(
                0, allow_negative=allow_negative, array_engine=array_engine
            )
            self._install_freqs_np(freqs)
            self._base_total = int(freqs.sum())
            return self
        if array_engine:
            raise CapacityError("array_engine=True requires numpy")
        freqs = list(frequencies)
        if not allow_negative and any(f < 0 for f in freqs):
            raise FrequencyUnderflowError(
                "negative initial frequency with allow_negative=False"
            )
        self = cls(0, allow_negative=allow_negative)
        m = len(freqs)
        ttof = sorted(range(m), key=freqs.__getitem__)
        self._install_runs(ttof, _runs_from_sorted(ttof, freqs))
        self._base_total = sum(freqs)
        return self

    # ------------------------------------------------------------------
    # External buffers (shared-memory hosting)
    # ------------------------------------------------------------------

    @classmethod
    def attach_buffers(
        cls,
        header,
        ftot,
        ttof,
        ptrb,
        bl,
        bre,
        bf,
        *,
        fresh: bool = False,
        allow_negative: bool = True,
    ) -> "FlatProfile":
        """Wrap externally owned ``int64`` buffers as an array-engine
        profile.

        The buffers (typically views into one
        ``multiprocessing.shared_memory`` segment; see
        :mod:`repro.engine.parallel`) stay owned by the caller: the
        profile mutates them in place, never reallocates them, and
        mirrors its scalar state (minted slots, free-list head, event
        counters) into ``header`` (``HEADER_SLOTS`` int64s) after
        :meth:`_sync_header` so a read-only view of the same buffers in
        another process can :meth:`_load_header` and stay current.

        ``fresh=True`` initializes the buffers to the empty profile;
        ``fresh=False`` adopts whatever state the header describes (it
        must carry the magic stamp of a previous ``fresh`` attach).

        The block-slot buffers must hold ``max(m, 1)`` slots — the
        most the structure can ever mint — because externally owned
        buffers cannot grow.
        """
        if _np is None:
            raise CapacityError("attach_buffers requires numpy")
        m = int(ftot.shape[0])
        if int(ttof.shape[0]) != m or int(ptrb.shape[0]) != m:
            raise CapacityError(
                "ftot/ttof/ptrb buffers disagree on capacity"
            )
        slots = int(bl.shape[0])
        if int(bre.shape[0]) != slots or int(bf.shape[0]) != slots:
            raise CapacityError("block buffers disagree on slot count")
        if slots < max(m, 1):
            raise CapacityError(
                f"{slots} block slots cannot host capacity {m} "
                f"(need max(m, 1); external buffers cannot grow)"
            )
        if int(header.shape[0]) < HEADER_SLOTS:
            raise CapacityError(
                f"header needs {HEADER_SLOTS} int64 slots, "
                f"got {int(header.shape[0])}"
            )
        self = cls.__new__(cls)
        self._m = m
        self._array = True
        self._header = header
        self._ftot = ftot
        self._ttof = ttof
        self._ptrb = ptrb
        self._bl = bl
        self._bre = bre
        self._bf = bf
        # The rank tables are pure functions of m — every attachment
        # computes its own; they are never shared.
        self._prev = _np.arange(-1, m, dtype=_np.int64)
        self._nxt = _np.arange(1, m + 2, dtype=_np.int64)
        self._blocks = _FlatBlockReader(self)
        if fresh:
            self._allow_negative = bool(allow_negative)
            header[_H_MAGIC] = _HEADER_MAGIC
            header[_H_M] = m
            self._reset_array_state()
            self._last_tracked = 0
            self._base_total = 0
            self._n_adds = 0
            self._n_removes = 0
            self._sync_header()
        else:
            if int(header[_H_MAGIC]) != _HEADER_MAGIC:
                raise CapacityError(
                    "buffers do not carry a flat-profile header stamp"
                )
            if int(header[_H_M]) != m:
                raise CapacityError(
                    f"header capacity {int(header[_H_M])} does not "
                    f"match buffer capacity {m}"
                )
            self._allow_negative = bool(int(header[_H_NEG]))
            self._load_header()
        self._bind_obs(None)
        return self

    def _sync_header(self) -> None:
        """Publish scalar state to the shared header (no-op on owned
        buffers)."""
        h = self._header
        if h is None:
            return
        h[_H_BN] = self._bn
        h[_H_FREE] = int(self._free_head)
        h[_H_ADDS] = self._n_adds
        h[_H_REMOVES] = self._n_removes
        h[_H_BASE] = self._base_total
        h[_H_TRACKED] = int(self._last_tracked)
        h[_H_NEG] = 1 if self._allow_negative else 0

    def _load_header(self) -> None:
        """Adopt the scalar state another process published via
        :meth:`_sync_header` (the array buffers are live views already,
        so this refresh is O(1))."""
        h = self._header
        self._bn = int(h[_H_BN])
        self._free_head = int(h[_H_FREE])
        self._n_adds = int(h[_H_ADDS])
        self._n_removes = int(h[_H_REMOVES])
        self._base_total = int(h[_H_BASE])
        self._last_tracked = int(h[_H_TRACKED])

    def release_buffers(self) -> None:
        """Drop every reference to externally owned buffers so their
        owner can close the backing mapping (``mmap.close`` refuses
        while exports exist).  The profile is unusable afterwards;
        owned-buffer profiles are unaffected (no-op)."""
        if self._header is None:
            return
        self._header = None
        self._ftot = None
        self._ttof = None
        self._ptrb = None
        self._bl = None
        self._bre = None
        self._bf = None
        self._prev = None
        self._nxt = None
        self._m = 0
        self._bn = 0

    def _reset_array_state(self) -> None:
        """Reset the array buffers to the empty profile, in place."""
        m = self._m
        self._ftot[:] = _np.arange(m, dtype=_np.int64)
        self._ttof[:] = self._ftot
        if m:
            self._ptrb[:] = 0
            self._bl[0] = 0
            self._bre[0] = m
            self._bf[0] = 0
            self._bn = 1
        else:
            self._bn = 0
        self._free_head = -1

    # ------------------------------------------------------------------
    # Updates (the O(1) hot path — integer loads/stores only)
    # ------------------------------------------------------------------

    def add(self, x: int) -> None:
        """Process an "add" event for object ``x``.  O(1) worst case."""
        m = self._m
        if not 0 <= x < m:
            raise CapacityError(f"object id {x} out of range [0, {m})")
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        bl = self._bl
        bre = self._bre
        bf = self._bf
        self._n_adds += 1
        i = ftot[x]
        b = ptrb[i]
        re = bre[b]
        f1 = bf[b] + 1
        r = self._prev[re]
        if i != r:
            # Swap x with the right-edge element; both hold frequency
            # f, so the sorted order of T is untouched.  i != r proves
            # the block is not a singleton (a singleton's only member
            # *is* its right edge), so the general case follows.
            y = ttof[r]
            ttof[r] = x
            ttof[i] = y
            ftot[x] = r
            ftot[y] = i
        elif bl[b] == r:
            # Singleton block: bump in place unless it must merge into
            # an adjacent f+1 block.
            if re != m:
                rb = ptrb[re]
                if bf[rb] == f1:
                    bl[b] = self._free_head
                    self._free_head = b
                    bl[rb] = r
                    ptrb[r] = rb
                    return
            bf[b] = f1
            return
        # General case: shrink x's old block from the right and attach
        # rank r to the f+1 block (extend it or mint a singleton).
        bre[b] = r
        if re != m:
            rb = ptrb[re]
            if bf[rb] == f1:
                bl[rb] = r
                ptrb[r] = rb
                return
        nb = self._free_head
        if nb >= 0:
            self._free_head = bl[nb]
            bl[nb] = r
            bre[nb] = re
            bf[nb] = f1
        else:
            nb = self._mint(r, re, f1)
        ptrb[r] = nb

    def remove(self, x: int) -> None:
        """Process a "remove" event for object ``x``.  O(1) worst case."""
        m = self._m
        if not 0 <= x < m:
            raise CapacityError(f"object id {x} out of range [0, {m})")
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        bl = self._bl
        bre = self._bre
        bf = self._bf
        i = ftot[x]
        b = ptrb[i]
        f1 = bf[b] - 1
        if f1 < 0 and not self._allow_negative:
            raise FrequencyUnderflowError(
                f"removing object {x} at frequency {f1 + 1} would go negative"
            )
        self._n_removes += 1
        l = bl[b]
        if i != l:
            y = ttof[l]
            ttof[l] = x
            ttof[i] = y
            ftot[x] = l
            ftot[y] = i
        elif bre[b] == self._nxt[l]:
            if l:
                lb = ptrb[self._prev[l]]
                if bf[lb] == f1:
                    bre[lb] = bre[b]
                    bl[b] = self._free_head
                    self._free_head = b
                    ptrb[l] = lb
                    return
            bf[b] = f1
            return
        l1 = self._nxt[l]
        bl[b] = l1
        if l:
            lb = ptrb[self._prev[l]]
            if bf[lb] == f1:
                bre[lb] = l1
                ptrb[l] = lb
                return
        nb = self._free_head
        if nb >= 0:
            self._free_head = bl[nb]
            bl[nb] = l
            bre[nb] = l1
            bf[nb] = f1
        else:
            nb = self._mint(l, l1, f1)
        ptrb[l] = nb

    def _mint(self, l: int, re: int, f: int) -> int:
        """Mint a fresh block slot ``[l, re)`` at frequency ``f``.

        Only reached with an empty free list, so minted slots never
        exceed the live-block bound ``m``.  List engine: three appends.
        Array engine: amortized-doubling growth of the slot buffers —
        never triggered on externally attached buffers, which
        preallocate the ``max(m, 1)``-slot maximum.  Callers holding
        hot-loop locals for ``_bl``/``_bre``/``_bf`` must reload them
        after a mint (growth may reallocate the arrays).
        """
        if not self._array:
            bl = self._bl
            nb = len(bl)
            bl.append(l)
            self._bre.append(re)
            self._bf.append(f)
            return nb
        nb = self._bn
        if nb == len(self._bl):
            self._grow_block_slots(nb + 1)
        self._bl[nb] = l
        self._bre[nb] = re
        self._bf[nb] = f
        self._bn = nb + 1
        return nb

    def _ensure_block_slots(self, need: int) -> None:
        if len(self._bl) < need:
            self._grow_block_slots(need)

    def _grow_block_slots(self, need: int) -> None:
        """Double the array-engine slot buffers until ``need`` fit."""
        if self._header is not None:
            raise InvariantViolationError(
                "externally attached block buffers cannot grow"
            )
        cap = max(8, len(self._bl))
        while cap < need:
            cap *= 2
        self._obs_grows.inc()
        bn = self._bn
        for name in ("_bl", "_bre", "_bf"):
            old = getattr(self, name)
            grown = _np.empty(cap, dtype=_np.int64)
            grown[:bn] = old[:bn]
            setattr(self, name, grown)

    def update(self, x: int, is_add: bool) -> None:
        """Apply one log-stream tuple ``(x, c)``."""
        if is_add:
            self.add(x)
        else:
            self.remove(x)

    def add_count(self, x: int, count: int) -> None:
        """Apply ``count`` adds to ``x`` as one climb."""
        if count < 0:
            raise CapacityError(f"count must be >= 0, got {count}")
        if count:
            self._bulk_add({x: count})

    def remove_count(self, x: int, count: int) -> None:
        """Apply ``count`` removes to ``x``.  Mirror of :meth:`add_count`."""
        if count < 0:
            raise CapacityError(f"count must be >= 0, got {count}")
        if count:
            if not 0 <= x < self._m:
                raise CapacityError(
                    f"object id {x} out of range [0, {self._m})"
                )
            if not self._allow_negative:
                f = self._bf[self._ptrb[self._ftot[x]]]
                if count > f:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency {f} "
                        f"{count} times would go negative"
                    )
            self._bulk_remove({x: count})

    def consume(self, events: Iterable[tuple[int, bool]]) -> int:
        """Apply ``(object, is_add)`` tuples in order; return count."""
        add = self.add
        remove = self.remove
        n = 0
        for x, is_add in events:
            if is_add:
                add(x)
            else:
                remove(x)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Fused stream consumption (the flat engine's reason to exist)
    # ------------------------------------------------------------------

    def consume_arrays(self, ids, adds) -> int:
        """Apply parallel arrays of object ids and add flags.

        The whole event loop runs inside this method with every lookup
        hoisted to a local — zero per-event method dispatch, zero
        attribute loads.  Accepts numpy arrays (converted once) or
        plain sequences; same no-rollback contract as :meth:`consume`.
        """
        return self._consume_fused(ids, adds, -1)

    def track_statistic(self, ids, adds, rank: int) -> int:
        """Apply every event while keeping ``T[rank]`` current; return
        the final tracked frequency.

        The ±1 update changes the sorted array ``T`` at exactly one
        rank per event (the touched block's right edge on an add, left
        edge on a remove), so upkeep of any fixed-rank statistic —
        mode (``rank = m-1``), median (``rank = (m-1)//2``), minimum
        (``rank = 0``), any quantile — is at most one compare per
        event inside the fused loop (and free for the mode, whose
        compare folds into branches the update takes anyway).  This is
        the flat engine's counterpart of the paper's
        update-then-query workload (figures 3-6).
        """
        m = self._m
        if not 0 <= rank < m:
            raise CapacityError(f"rank {rank} out of range [0, {m})")
        self._consume_fused(ids, adds, rank)
        # The loop maintained the statistic event by event
        # (self._last_tracked); re-read from the structure so the
        # answer is authoritative even on the strict-mode fallback.
        return int(self._bf[self._ptrb[rank]])

    def _consume_fused(self, ids, adds, tr: int) -> int:
        """Shared fused-loop driver; ``tr`` is the tracked rank (-1:
        none — which still takes the mode-specialized loop, whose
        tracking is free)."""
        id_list = (
            ids
            if type(ids) is list
            else ids.tolist() if hasattr(ids, "tolist") else list(ids)
        )
        add_list = (
            adds
            if type(adds) is list
            else adds.tolist() if hasattr(adds, "tolist") else list(adds)
        )
        if len(id_list) != len(add_list):
            raise CapacityError(
                f"ids ({len(id_list)}) and adds ({len(add_list)}) differ"
            )
        if id_list:
            # The fused loop carries no per-event bound check.  Ids
            # that are too large fault naturally (list indexing raises
            # IndexError, mapped to CapacityError below, with prior
            # events applied — consume()'s event-at-a-time contract),
            # but a *negative* id would silently wrap around in list
            # indexing and corrupt the structure, so the floor is
            # validated up front in one C-speed pass (on the ndarray
            # when the caller handed one over — cheaper still).
            if _np is not None and isinstance(ids, _np.ndarray):
                lo = int(ids.min())
            else:
                lo = min(id_list)
            if lo < 0:
                raise CapacityError(
                    f"object id {lo} out of range [0, {self._m})"
                )
        if not self._allow_negative:
            # Strict profiles need the per-remove underflow guard; keep
            # the fused loops branch-free and take the guarded methods.
            n = 0
            add = self.add
            remove = self.remove
            for x, is_add in zip(id_list, add_list):
                if is_add:
                    add(x)
                else:
                    remove(x)
                n += 1
            return n
        try:
            if self._array:
                self._run_fused_windowed(id_list, add_list, tr)
            elif tr < 0 or tr == self._m - 1:
                self._run_fused_top(id_list, add_list)
            else:
                self._run_fused(id_list, add_list, tr)
        except IndexError:
            # An id >= m faulted on the ftot lookup, before any of that
            # event's mutations (the structure stays sound; the free
            # list and prior events were persisted by the loop's
            # finally).  Settle the counters for the applied prefix,
            # then surface the usual error.
            applied = next(
                idx for idx, x in enumerate(id_list) if x >= self._m
            )
            n_add = add_list[:applied].count(True)
            self._n_adds += n_add
            self._n_removes += applied - n_add
            raise CapacityError(
                f"object id {id_list[applied]} out of range "
                f"[0, {self._m})"
            ) from None
        # Event counters settle once per batch (C-speed count), not
        # once per event.
        n_add = add_list.count(True)
        self._n_adds += n_add
        self._n_removes += len(add_list) - n_add
        return len(id_list)

    def _run_fused_windowed(self, id_list, add_list, tr: int) -> None:
        """Array engine: run the canonical fused loops on temporary
        list mirrors, then write the result back into the numpy
        buffers.

        CPython's interpreter loop reads plain lists ~2-3x faster than
        it boxes numpy scalars, so the fused paths stay list-shaped and
        the array engine pays one ``tolist()``/slice-assign round-trip
        per *batch* — O(m + events) at C speed, amortized over any real
        stream slice, with exactly one copy of the update logic.  The
        write-back runs in a ``finally`` so a mid-stream fault (an id
        >= m) persists the applied prefix, matching the list engine's
        event-at-a-time contract.
        """
        arrays = (self._ftot, self._ttof, self._ptrb)
        rank_tables = (self._prev, self._nxt)
        bl_buf, bre_buf, bf_buf = self._bl, self._bre, self._bf
        bn = self._bn
        self._ftot = arrays[0].tolist()
        self._ttof = arrays[1].tolist()
        self._ptrb = arrays[2].tolist()
        self._prev = rank_tables[0].tolist()
        self._nxt = rank_tables[1].tolist()
        self._bl = bl_buf[:bn].tolist()
        self._bre = bre_buf[:bn].tolist()
        self._bf = bf_buf[:bn].tolist()
        self._array = False
        try:
            if tr < 0 or tr == self._m - 1:
                self._run_fused_top(id_list, add_list)
            else:
                self._run_fused(id_list, add_list, tr)
        finally:
            ftot_l, ttof_l, ptrb_l = self._ftot, self._ttof, self._ptrb
            bl_l, bre_l, bf_l = self._bl, self._bre, self._bf
            self._ftot, self._ttof, self._ptrb = arrays
            self._prev, self._nxt = rank_tables
            self._bl, self._bre, self._bf = bl_buf, bre_buf, bf_buf
            self._bn = bn
            self._array = True
            self._ftot[:] = ftot_l
            self._ttof[:] = ttof_l
            self._ptrb[:] = ptrb_l
            nb = len(bl_l)
            self._ensure_block_slots(nb)
            self._bl[:nb] = bl_l
            self._bre[:nb] = bre_l
            self._bf[:nb] = bf_l
            self._bn = nb

    def _run_fused(self, id_list, add_list, tr) -> None:
        """The fused hot loop for an arbitrary tracked rank ``tr``.

        Every lookup hoisted, integer ops only; upkeep of ``T[tr]`` is
        one compare against the single rank each event changes.
        Counters are NOT touched here — the caller settles them per
        batch.  Keep the update logic in lockstep with
        :meth:`_run_fused_top`; the equivalence suite runs both against
        the block-object engine.
        """
        m = self._m
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        bl = self._bl
        bre = self._bre
        bf = self._bf
        prev = self._prev
        nxt = self._nxt
        free_head = self._free_head
        stat_f = bf[ptrb[tr]] if m else 0
        try:
            for x, is_add in zip(id_list, add_list):
                i = ftot[x]
                b = ptrb[i]
                if is_add:
                    re = bre[b]
                    f1 = bf[b] + 1
                    r = prev[re]
                    if r == tr:
                        stat_f = f1
                    if i != r:
                        y = ttof[r]
                        ttof[r] = x
                        ttof[i] = y
                        ftot[x] = r
                        ftot[y] = i
                    elif bl[b] == r:
                        if re != m:
                            rb = ptrb[re]
                            if bf[rb] == f1:
                                bl[b] = free_head
                                free_head = b
                                bl[rb] = r
                                ptrb[r] = rb
                                continue
                        bf[b] = f1
                        continue
                    bre[b] = r
                    if re != m:
                        rb = ptrb[re]
                        if bf[rb] == f1:
                            bl[rb] = r
                            ptrb[r] = rb
                            continue
                    nb = free_head
                    if nb >= 0:
                        free_head = bl[nb]
                        bl[nb] = r
                        bre[nb] = re
                        bf[nb] = f1
                    else:
                        nb = len(bl)
                        bl.append(r)
                        bre.append(re)
                        bf.append(f1)
                    ptrb[r] = nb
                else:
                    l = bl[b]
                    f1 = bf[b] - 1
                    if l == tr:
                        stat_f = f1
                    if i != l:
                        y = ttof[l]
                        ttof[l] = x
                        ttof[i] = y
                        ftot[x] = l
                        ftot[y] = i
                    elif bre[b] == nxt[l]:
                        if l:
                            lb = ptrb[prev[l]]
                            if bf[lb] == f1:
                                bre[lb] = bre[b]
                                bl[b] = free_head
                                free_head = b
                                ptrb[l] = lb
                                continue
                        bf[b] = f1
                        continue
                    l1 = nxt[l]
                    bl[b] = l1
                    if l:
                        lb = ptrb[prev[l]]
                        if bf[lb] == f1:
                            bre[lb] = l1
                            ptrb[l] = lb
                            continue
                    nb = free_head
                    if nb >= 0:
                        free_head = bl[nb]
                        bl[nb] = l
                        bre[nb] = l1
                        bf[nb] = f1
                    else:
                        nb = len(bl)
                        bl.append(l)
                        bre.append(l1)
                        bf.append(f1)
                    ptrb[l] = nb
        finally:
            # An IndexError faults at the very top of an event, before
            # any of its mutations — persisting here keeps the free
            # list and tracked statistic consistent for the applied
            # prefix.
            self._free_head = free_head
            self._last_tracked = stat_f

    def _run_fused_top(self, id_list, add_list) -> None:
        """:meth:`_run_fused` specialized to tracking rank ``m-1``.

        Mode upkeep is the paper's canonical workload (figures 3-5),
        so it earns a dedicated loop: ``T[m-1]`` changes only when an
        add touches a block whose exclusive bound is ``m``, or a
        remove hits the singleton block sitting at the top — both are
        branches the update logic takes anyway (``re != m`` decides
        whether a right neighbour exists), so the mode stays current
        with ZERO additional per-event work.
        """
        m = self._m
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        bl = self._bl
        bre = self._bre
        bf = self._bf
        prev = self._prev
        nxt = self._nxt
        free_head = self._free_head
        top = m - 1
        stat_f = bf[ptrb[top]] if m else 0
        try:
            for x, is_add in zip(id_list, add_list):
                i = ftot[x]
                b = ptrb[i]
                if is_add:
                    re = bre[b]
                    f1 = bf[b] + 1
                    r = prev[re]
                    if i != r:
                        y = ttof[r]
                        ttof[r] = x
                        ttof[i] = y
                        ftot[x] = r
                        ftot[y] = i
                    elif bl[b] == r:
                        if re != m:
                            rb = ptrb[re]
                            if bf[rb] == f1:
                                bl[b] = free_head
                                free_head = b
                                bl[rb] = r
                                ptrb[r] = rb
                                continue
                        else:
                            stat_f = f1
                        bf[b] = f1
                        continue
                    bre[b] = r
                    if re != m:
                        rb = ptrb[re]
                        if bf[rb] == f1:
                            bl[rb] = r
                            ptrb[r] = rb
                            continue
                    else:
                        stat_f = f1
                    nb = free_head
                    if nb >= 0:
                        free_head = bl[nb]
                        bl[nb] = r
                        bre[nb] = re
                        bf[nb] = f1
                    else:
                        nb = len(bl)
                        bl.append(r)
                        bre.append(re)
                        bf.append(f1)
                    ptrb[r] = nb
                else:
                    l = bl[b]
                    f1 = bf[b] - 1
                    if i != l:
                        y = ttof[l]
                        ttof[l] = x
                        ttof[i] = y
                        ftot[x] = l
                        ftot[y] = i
                    elif bre[b] == nxt[l]:
                        # A remove changes T only at rank l; l == top
                        # means this singleton sits at the top rank.
                        if l == top:
                            stat_f = f1
                        if l:
                            lb = ptrb[prev[l]]
                            if bf[lb] == f1:
                                bre[lb] = bre[b]
                                bl[b] = free_head
                                free_head = b
                                ptrb[l] = lb
                                continue
                        bf[b] = f1
                        continue
                    l1 = nxt[l]
                    bl[b] = l1
                    if l:
                        lb = ptrb[prev[l]]
                        if bf[lb] == f1:
                            bre[lb] = l1
                            ptrb[l] = lb
                            continue
                    nb = free_head
                    if nb >= 0:
                        free_head = bl[nb]
                        bl[nb] = l
                        bre[nb] = l1
                        bf[nb] = f1
                    else:
                        nb = len(bl)
                        bl.append(l)
                        bre.append(l1)
                        bf.append(f1)
                    ptrb[l] = nb
        finally:
            self._free_head = free_head
            self._last_tracked = stat_f

    # ------------------------------------------------------------------
    # Batch ingestion (coalesced; semantics of SProfile.add_many/apply)
    # ------------------------------------------------------------------

    def add_many(self, xs: Iterable[int]) -> int:
        """Apply one add per element of ``xs``; return the event count.

        Batch semantics of :meth:`repro.core.profile.SProfile.add_many`:
        repeated keys coalesce into one climb, final frequencies match
        the per-event loop, tie order inside equal frequencies is
        unordered, and bad ids reject the batch before any mutation.
        Dense batches (naming >= half the universe) rebuild wholesale.

        With NumPy importable the whole batch pipeline is vectorized:
        coalescing is one ``bincount`` (no per-event dict work at all)
        and the dense rebuild is one fancy-indexed add + ``argsort``.
        """
        if not hasattr(xs, "__len__"):
            xs = list(xs)
        if len(xs) == 0:
            return 0
        per_key = self._batch_counts(xs)
        if per_key is not None:
            n = len(xs)
            if int(_np.count_nonzero(per_key)) * 2 >= self._m:
                # Dense: one fancy-indexed add onto the materialized
                # frequency array, one argsort — no per-key Python
                # work at all.
                freqs = self._frequencies_np()
                freqs += per_key
                self._install_freqs_np(freqs)
                self._n_adds += n
                return n
            keys = _np.flatnonzero(per_key)
            return self._bulk_add(
                dict(zip(keys.tolist(), per_key[keys].tolist()))
            )
        counts = Counter(xs)
        if len(counts) * 2 >= self._m:
            n = sum(counts.values())
            self._apply_rebuild(counts)
            self._n_adds += n
            return n
        return self._bulk_add(counts)

    def remove_many(self, xs: Iterable[int]) -> int:
        """Apply one remove per element of ``xs``; mirror of
        :meth:`add_many` (all-or-nothing in strict mode)."""
        if not hasattr(xs, "__len__"):
            xs = list(xs)
        if len(xs) == 0:
            return 0
        per_key = self._batch_counts(xs)
        if per_key is not None:
            n = len(xs)
            if int(_np.count_nonzero(per_key)) * 2 >= self._m:
                freqs = self._frequencies_np()
                low = freqs - per_key
                if not self._allow_negative and int(low.min()) < 0:
                    bad = int(low.argmin())
                    raise FrequencyUnderflowError(
                        f"removing object {bad} at frequency "
                        f"{int(freqs[bad])} {int(per_key[bad])} times "
                        f"would go negative"
                    )
                self._install_freqs_np(low)
                self._n_removes += n
                return n
            keys = _np.flatnonzero(per_key)
            counts = dict(zip(keys.tolist(), per_key[keys].tolist()))
        else:
            counts = Counter(xs)
            if len(counts) * 2 >= self._m:
                n = sum(counts.values())
                self._apply_rebuild({x: -c for x, c in counts.items()})
                self._n_removes += n
                return n
        if not self._allow_negative:
            ptrb = self._ptrb
            ftot = self._ftot
            bf = self._bf
            m = self._m
            for x, c in counts.items():
                if not 0 <= x < m:
                    raise CapacityError(
                        f"object id {x} out of range [0, {m})"
                    )
                f = bf[ptrb[ftot[x]]]
                if c > f:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency {f} "
                        f"{c} times would go negative"
                    )
        return self._bulk_remove(counts)

    def _batch_counts(self, xs):
        """Per-key occurrence counts of a materialized id batch.

        One ``bincount`` pass coalesces the batch and one min/max pass
        range-validates it (a bad id rejects the batch before any
        mutation).  Returns ``None`` when NumPy is missing or the batch
        is not a clean one-dimensional integer array — the caller then
        falls back to the dict pipeline, which surfaces type errors the
        same way the block-object engine does.
        """
        if _np is None:
            return None
        arr = _np.asarray(xs)
        if arr.ndim != 1 or arr.dtype.kind not in "iu":
            return None
        lo = int(arr.min())
        hi = int(arr.max())
        if lo < 0 or hi >= self._m:
            bad = lo if lo < 0 else hi
            raise CapacityError(
                f"object id {bad} out of range [0, {self._m})"
            )
        return _np.bincount(arr, minlength=self._m)

    def apply(self, deltas) -> int:
        """Apply a batch of ``(object, delta)`` pairs (or a mapping).

        Same contract as :meth:`repro.core.profile.SProfile.apply`:
        deltas per key are summed first, the net is applied as climbs
        (or one wholesale rebuild for dense batches), and bad ids or
        strict-mode net underflows reject the whole batch atomically.

        >>> p = FlatProfile(capacity=4)
        >>> p.apply([(0, +3), (1, +1), (0, -1)])
        3
        >>> p.frequencies()
        [2, 1, 0, 0]
        """
        from repro.core.profile import net_deltas

        net = net_deltas(deltas)
        m = self._m
        adds: dict[int, int] = {}
        removes: dict[int, int] = {}
        for x, d in net.items():
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
            if d > 0:
                adds[x] = d
            elif d < 0:
                removes[x] = -d
        if (len(adds) + len(removes)) * 2 >= m and (adds or removes):
            n_add = sum(adds.values())
            n_rem = sum(removes.values())
            self._apply_rebuild({x: net[x] for x in net if net[x]})
            self._n_adds += n_add
            self._n_removes += n_rem
            return n_add + n_rem
        if removes and not self._allow_negative:
            ptrb = self._ptrb
            ftot = self._ftot
            bf = self._bf
            for x, c in removes.items():
                f = bf[ptrb[ftot[x]]]
                if c > f:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency {f} "
                        f"{c} times (net) would go negative"
                    )
        n = 0
        if adds:
            n += self._bulk_add(adds)
        if removes:
            n += self._bulk_remove(removes)
        return n

    def apply_arrays(self, keys, sums) -> int:
        """Apply an already-netted batch given as parallel arrays.

        The all-arrays twin of :meth:`apply` for the serving hot path:
        ``keys`` are *unique* integer ids and ``sums`` their net
        deltas (the output shape of
        :func:`repro.core.profile.net_arrays`).  Same contract —
        identical validation order, strict-mode underflow messages and
        return value — but range checks, underflow checks and the
        wholesale rebuild run vectorized, with no per-key dict.

        Rebuild-vs-climb is decided per batch: climbing costs
        O(#blocks crossed) *Python* per key while the rebuild is
        O(m log m) at C speed, so the crossover sits near ``m / 20``
        distinct keys (not :meth:`apply`'s ``m / 2``, which prices the
        dict pipeline both sides of its threshold pay).
        """
        if _np is None:  # pragma: no cover - numpy-less fallback
            return self.apply(dict(zip(keys, sums)))
        keys = _np.asarray(keys)
        sums = _np.asarray(sums)
        m = self._m
        if keys.size:
            # Range-check before dropping zero-net keys: apply() does
            # too (a bad id rejects the batch even when its deltas
            # cancel).
            lo = int(keys.min())
            hi = int(keys.max())
            if lo < 0 or hi >= m:
                bad = lo if lo < 0 else hi
                raise CapacityError(
                    f"object id {bad} out of range [0, {m})"
                )
        live = sums != 0
        if not live.all():
            keys = keys[live]
            sums = sums[live]
        if not keys.size:
            return 0
        n_add = int(sums[sums > 0].sum())
        n_rem = -int(sums[sums < 0].sum())
        if keys.size * 20 >= m:
            freqs = self._frequencies_np()
            if not self._allow_negative:
                low = freqs[keys] + sums
                if int(low.min()) < 0:
                    i = int(low.argmin())
                    bad = int(keys[i])
                    raise FrequencyUnderflowError(
                        f"removing object {bad} at frequency "
                        f"{int(freqs[bad])} {int(-sums[i])} times "
                        f"(net) would go negative"
                    )
            freqs[keys] += sums
            self._install_freqs_np(freqs)
            self._n_adds += n_add
            self._n_removes += n_rem
            return n_add + n_rem
        adds: dict[int, int] = {}
        removes: dict[int, int] = {}
        for x, d in zip(keys.tolist(), sums.tolist()):
            if d > 0:
                adds[x] = d
            else:
                removes[x] = -d
        if removes and not self._allow_negative:
            ptrb = self._ptrb
            ftot = self._ftot
            bf = self._bf
            for x, c in removes.items():
                f = bf[ptrb[ftot[x]]]
                if c > f:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency {f} "
                        f"{c} times (net) would go negative"
                    )
        n = 0
        if adds:
            n += self._bulk_add(adds)
        if removes:
            n += self._bulk_remove(removes)
        return n

    def _apply_rebuild(self, net: Mapping[int, int]) -> None:
        """Wholesale path for batches naming much of the universe.

        O(m log m) with C-speed constants when NumPy is importable:
        update the materialized frequency array with one fancy-indexed
        add, ``argsort`` it, run-length encode the runs and refill the
        flat arrays with ``tolist()``.  Strict-mode underflow is
        checked on the net result before any mutation.
        """
        m = self._m
        for x in net:
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
        if _np is not None:
            freqs = self._frequencies_np()
            if net:
                keys = _np.fromiter(
                    net.keys(), dtype=_np.int64, count=len(net)
                )
                vals = _np.fromiter(
                    net.values(), dtype=_np.int64, count=len(net)
                )
                if not self._allow_negative:
                    low = freqs[keys] + vals
                    if low.size and int(low.min()) < 0:
                        bad = int(keys[int(low.argmin())])
                        raise FrequencyUnderflowError(
                            f"removing object {bad} at frequency "
                            f"{int(freqs[bad])} {-net[bad]} times (net) "
                            f"would go negative"
                        )
                freqs[keys] += vals
            self._install_freqs_np(freqs)
            return
        freqs = self.frequencies()
        if not self._allow_negative:
            for x, d in net.items():
                if freqs[x] + d < 0:
                    raise FrequencyUnderflowError(
                        f"removing object {x} at frequency {freqs[x]} "
                        f"{-d} times (net) would go negative"
                    )
        for x, d in net.items():
            freqs[x] += d
        ttof = sorted(range(m), key=freqs.__getitem__)
        self._install_runs(ttof, _runs_from_sorted(ttof, freqs))

    def _bulk_add(self, counts: Mapping[int, int]) -> int:
        """Add ``counts[x]`` (> 0) per key as one climb each.

        Flat transliteration of
        :meth:`repro.core.profile.SProfile._bulk_add`: detach at the
        right edge, leapfrog whole blocks (one edge swap per block,
        regardless of block size), land by joining the target block or
        minting a singleton.  O(#blocks crossed + 1) per key.
        """
        m = self._m
        for x in counts:
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        bl = self._bl
        bre = self._bre
        bf = self._bf
        free_head = self._free_head
        n = 0
        for x, c in counts.items():
            n += c
            i = ftot[x]
            b = ptrb[i]
            f = bf[b]
            target = f + c
            re = bre[b]
            if re - bl[b] == 1:
                # x already alone: its block travels (or retunes) with it.
                carry = b
            else:
                carry = -1
                r = re - 1
                if i != r:
                    y = ttof[r]
                    ttof[r] = x
                    ttof[i] = y
                    ftot[x] = r
                    ftot[y] = i
                bre[b] = r
                i = r
            while True:
                nxt = i + 1
                if nxt < m:
                    rb = ptrb[nxt]
                    rf = bf[rb]
                    if rf <= target:
                        if rf == target:
                            # Land: join the target block's left edge.
                            if carry >= 0:
                                bl[carry] = free_head
                                free_head = carry
                            bl[rb] = i
                            ptrb[i] = rb
                            break
                        # Leapfrog the whole block: swap x with its
                        # right-edge element and shift the block left.
                        R = bre[rb] - 1
                        z = ttof[R]
                        ttof[i] = z
                        ttof[R] = x
                        ftot[z] = i
                        ftot[x] = R
                        bl[rb] = i
                        bre[rb] = R
                        ptrb[i] = rb
                        i = R
                        continue
                # Land in a gap (or past the topmost block).
                if carry >= 0:
                    bl[carry] = i
                    bre[carry] = i + 1
                    bf[carry] = target
                else:
                    carry = free_head
                    if carry >= 0:
                        free_head = bl[carry]
                        bl[carry] = i
                        bre[carry] = i + 1
                        bf[carry] = target
                    else:
                        carry = self._mint(i, i + 1, target)
                        # A mint may regrow the array-engine slot
                        # buffers; reload the locals (identity in the
                        # list engine).
                        bl = self._bl
                        bre = self._bre
                        bf = self._bf
                ptrb[i] = carry
                break
        self._free_head = free_head
        self._n_adds += n
        return n

    def _bulk_remove(self, counts: Mapping[int, int]) -> int:
        """Remove ``counts[x]`` (> 0) per key; mirror of
        :meth:`_bulk_add` descending at the left edge."""
        m = self._m
        for x in counts:
            if not 0 <= x < m:
                raise CapacityError(f"object id {x} out of range [0, {m})")
        ftot = self._ftot
        ttof = self._ttof
        ptrb = self._ptrb
        bl = self._bl
        bre = self._bre
        bf = self._bf
        free_head = self._free_head
        strict = not self._allow_negative
        n = 0
        for x, c in counts.items():
            i = ftot[x]
            b = ptrb[i]
            f = bf[b]
            if strict and c > f:
                self._free_head = free_head
                self._n_removes += n
                raise FrequencyUnderflowError(
                    f"removing object {x} at frequency {f} "
                    f"{c} times would go negative"
                )
            n += c
            target = f - c
            l = bl[b]
            if bre[b] - l == 1:
                carry = b
            else:
                carry = -1
                if i != l:
                    y = ttof[l]
                    ttof[l] = x
                    ttof[i] = y
                    ftot[x] = l
                    ftot[y] = i
                bl[b] = l + 1
                i = l
            while True:
                prv = i - 1
                if prv >= 0:
                    lb = ptrb[prv]
                    lf = bf[lb]
                    if lf >= target:
                        if lf == target:
                            if carry >= 0:
                                bl[carry] = free_head
                                free_head = carry
                            bre[lb] = i + 1
                            ptrb[i] = lb
                            break
                        L = bl[lb]
                        z = ttof[L]
                        ttof[i] = z
                        ttof[L] = x
                        ftot[z] = i
                        ftot[x] = L
                        bl[lb] = L + 1
                        bre[lb] = i + 1
                        ptrb[i] = lb
                        i = L
                        continue
                if carry >= 0:
                    bl[carry] = i
                    bre[carry] = i + 1
                    bf[carry] = target
                else:
                    carry = free_head
                    if carry >= 0:
                        free_head = bl[carry]
                        bl[carry] = i
                        bre[carry] = i + 1
                        bf[carry] = target
                    else:
                        carry = self._mint(i, i + 1, target)
                        bl = self._bl
                        bre = self._bre
                        bf = self._bf
                ptrb[i] = carry
                break
        self._free_head = free_head
        self._n_removes += n
        return n

    # ------------------------------------------------------------------
    # Growth (used when hosting a growing universe)
    # ------------------------------------------------------------------

    def grow(self, extra: int) -> None:
        """Extend capacity by ``extra`` fresh objects at frequency 0.

        O(m + extra): splice the new zero-frequency ranks where
        frequency 0 belongs in the ascending order (valid in strict and
        negative modes alike).
        """
        if extra <= 0:
            raise CapacityError(f"extra must be positive, got {extra}")
        if self._header is not None:
            raise CapacityError(
                "externally attached buffers have fixed capacity; "
                "grow() needs owned storage"
            )
        old_m = self._m
        new_m = old_m + extra

        splice = old_m
        for block in self._blocks.iter_blocks():
            if block.f >= 0:
                splice = block.l
                break

        old_ttof = (
            self._ttof.tolist() if self._array else self._ttof
        )
        new_ttof = (
            old_ttof[:splice]
            + list(range(old_m, new_m))
            + old_ttof[splice:]
        )
        runs: list[tuple[int, int, int]] = []
        zero_emitted = False
        for block in self._blocks.iter_blocks():
            l, r, f = block.as_tuple()
            if f < 0:
                runs.append((l, r, f))
            elif f == 0:
                runs.append((l, r + extra, 0))
                zero_emitted = True
            else:
                if not zero_emitted:
                    runs.append((splice, splice + extra - 1, 0))
                    zero_emitted = True
                runs.append((l + extra, r + extra, f))
        if not zero_emitted:
            runs.append((splice, splice + extra - 1, 0))
        self._install_runs(new_ttof, runs)
        self._obs_grows.inc()

    # ------------------------------------------------------------------
    # Maintained and derived statistics
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """``m`` — number of tracked object ids."""
        return self._m

    @property
    def total(self) -> int:
        """Sum of all frequencies: the current length of array ``A``."""
        return self._base_total + self._n_adds - self._n_removes

    @property
    def active_count(self) -> int:
        """Number of objects with non-zero frequency.  O(#blocks)."""
        zero = self._blocks.block_for_frequency(0)
        if zero is None:
            return self._m
        return self._m - (zero.r - zero.l + 1)

    @property
    def n_adds(self) -> int:
        return self._n_adds

    @property
    def n_removes(self) -> int:
        return self._n_removes

    @property
    def n_events(self) -> int:
        """Total log-stream tuples processed."""
        return self._n_adds + self._n_removes

    @property
    def block_count(self) -> int:
        """Current number of blocks (distinct frequencies).  O(#blocks):
        the count is derived from the run walk, never maintained on the
        hot path."""
        m = self._m
        ptrb = self._ptrb
        bre = self._bre
        n = 0
        rank = 0
        while rank < m:
            n += 1
            rank = bre[ptrb[rank]]
        return n

    @property
    def block_slots(self) -> int:
        """Block array slots minted so far (live + free)."""
        return self._bn if self._array else len(self._bl)

    @property
    def array_engine(self) -> bool:
        """True when state lives in numpy buffers (the array engine)."""
        return self._array

    @property
    def owns_buffers(self) -> bool:
        """False when the buffers belong to an external owner (e.g. a
        shared-memory segment attached via :meth:`attach_buffers`)."""
        return self._header is None

    @property
    def free_slots(self) -> int:
        """Recycled block ids awaiting reuse.  O(free list length)."""
        n = 0
        head = self._free_head
        bl = self._bl
        while head >= 0:
            n += 1
            head = int(bl[head])
        return n

    @property
    def last_tracked(self) -> int:
        """Final value the last fused loop maintained (0 before any
        fused consumption)."""
        return self._last_tracked

    @property
    def allow_negative(self) -> bool:
        return self._allow_negative

    @property
    def mean_frequency(self) -> float:
        """Mean of the frequency array.  O(1)."""
        if self._m == 0:
            return 0.0
        return self.total / self._m

    @property
    def frequency_variance(self) -> float:
        """Population variance of frequencies.  O(#blocks)."""
        if self._m == 0:
            return 0.0
        sum_sq = 0
        for block in self._blocks.iter_blocks():
            sum_sq += block.f * block.f * (block.r - block.l + 1)
        mean = self.total / self._m
        variance = sum_sq / self._m - mean * mean
        return max(variance, 0.0)

    @property
    def blocks(self) -> _FlatBlockReader:
        """Read access to the block structure (BlockSet-shaped view)."""
        return self._blocks

    # O(1) overrides of the mixin's generic lookups — pure array reads,
    # no Block materialization.

    def frequency(self, obj: int) -> int:
        """Net occurrence count of ``obj``.  O(1)."""
        if not 0 <= obj < self._m:
            raise CapacityError(
                f"object id {obj} out of range [0, {self._m})"
            )
        return int(self._bf[self._ptrb[self._ftot[obj]]])

    def max_frequency(self) -> int:
        """The largest frequency (the mode's frequency).  O(1)."""
        if self._m == 0:
            raise EmptyProfileError("profile tracks zero objects")
        return int(self._bf[self._ptrb[self._m - 1]])

    def min_frequency(self) -> int:
        """The smallest frequency.  O(1)."""
        if self._m == 0:
            raise EmptyProfileError("profile tracks zero objects")
        return int(self._bf[self._ptrb[0]])

    def median_frequency(self) -> int:
        """Lower median of the frequency array.  O(1)."""
        m = self._m
        if m == 0:
            raise EmptyProfileError("profile tracks zero objects")
        return int(self._bf[self._ptrb[(m - 1) // 2]])

    def frequency_at_rank(self, rank: int) -> int:
        """``T[rank]`` — the frequency at ascending sorted position."""
        if not 0 <= rank < self._m:
            raise IndexError(f"rank {rank} out of range [0, {self._m})")
        return int(self._bf[self._ptrb[rank]])

    # ------------------------------------------------------------------
    # Structure management
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Reset every frequency to zero (keeps capacity and settings)."""
        if self._array:
            self._reset_array_state()
            self._last_tracked = 0
            self._base_total = 0
            self._n_adds = 0
            self._n_removes = 0
            self._sync_header()
            return
        m = self._m
        self._ftot = list(range(m))
        self._ttof = list(range(m))
        if m:
            self._ptrb = [0] * m
            self._bl = [0]
            self._bre = [m]
            self._bf = [0]
        else:
            self._ptrb = []
            self._bl = []
            self._bre = []
            self._bf = []
        self._prev = list(range(-1, m))
        self._nxt = list(range(1, m + 2))
        self._free_head = -1
        self._last_tracked = 0
        self._base_total = 0
        self._n_adds = 0
        self._n_removes = 0

    def copy(self) -> "FlatProfile":
        """Independent deep copy of the profiler.

        An array-engine copy always owns its buffers (``np.copy`` each
        one — O(buffers) allocations at C speed), detaching from any
        shared-memory host.
        """
        clone = FlatProfile(0, allow_negative=self._allow_negative)
        clone._m = self._m
        if self._array:
            clone._array = True
            clone._ftot = self._ftot.copy()
            clone._ttof = self._ttof.copy()
            clone._ptrb = self._ptrb.copy()
            clone._bl = self._bl.copy()
            clone._bre = self._bre.copy()
            clone._bf = self._bf.copy()
            clone._bn = self._bn
        else:
            clone._ftot = list(self._ftot)
            clone._ttof = list(self._ttof)
            clone._ptrb = list(self._ptrb)
            clone._bl = list(self._bl)
            clone._bre = list(self._bre)
            clone._bf = list(self._bf)
        # The rank tables are immutable constants of m — share them.
        clone._prev = self._prev
        clone._nxt = self._nxt
        clone._free_head = self._free_head
        clone._last_tracked = self._last_tracked
        clone._base_total = self._base_total
        clone._n_adds = self._n_adds
        clone._n_removes = self._n_removes
        return clone

    def _copy_from(self, other: "FlatProfile") -> None:
        """Adopt ``other``'s full state, writing in place (used to load
        a checkpoint into shared-memory-hosted storage; ``other`` must
        match this profile's capacity when the buffers are external)."""
        ttof = (
            other._ttof.tolist() if other._array else list(other._ttof)
        )
        self._install_runs(ttof, other.blocks.as_tuples())
        self._last_tracked = other._last_tracked
        self._base_total = other._base_total
        self._n_adds = other._n_adds
        self._n_removes = other._n_removes
        self._sync_header()

    def snapshot(self):
        """Frozen point-in-time copy answering the same queries."""
        from repro.core.snapshot import ProfileSnapshot

        return ProfileSnapshot.of(self)

    def frequencies(self) -> list[int]:
        """Materialize the frequency array ``F`` (O(m); for inspection)."""
        if self._array:
            return self._frequencies_np().tolist()
        out = [0] * self._m
        ttof = self._ttof
        for block in self._blocks.iter_blocks():
            f = block.f
            for rank in range(block.l, block.r + 1):
                out[ttof[rank]] = f
        return out

    def _frequencies_np(self):
        """The frequency array as an ``int64`` ndarray (O(m), C speed)."""
        m = self._m
        if self._array:
            # Two fancy-index passes, no Python-level run walk: the
            # frequency at rank k is bf[ptrb[k]], scattered back to
            # object order through ttof.
            freqs = _np.empty(m, dtype=_np.int64)
            freqs[self._ttof] = self._bf[self._ptrb]
            return freqs
        runs = self._blocks.as_tuples()
        if not runs:
            return _np.zeros(0, dtype=_np.int64)
        sizes = _np.asarray([r - l + 1 for l, r, _ in runs], dtype=_np.int64)
        per_rank = _np.repeat(
            _np.asarray([f for _, _, f in runs], dtype=_np.int64), sizes
        )
        freqs = _np.empty(m, dtype=_np.int64)
        freqs[_np.asarray(self._ttof, dtype=_np.int64)] = per_rank
        return freqs

    def _install_freqs_np(self, freqs) -> None:
        """Rebuild the whole structure from an ndarray of frequencies.

        One stable ``argsort`` (deterministic tie order) plus run-length
        encoding.  List engine: every array refills through
        ``tolist()`` at C speed.  Array engine: the results are written
        **in place** into the existing buffers (shared-memory mappings
        must never be swapped out from under their other viewers);
        capacity changes reallocate owned buffers and are refused on
        external ones.
        """
        m = int(freqs.shape[0])
        if self._array:
            self._install_freqs_np_array(freqs, m)
            return
        self._m = m
        if m == 0:
            self._ftot = []
            self._ttof = []
            self._ptrb = []
            self._bl = []
            self._bre = []
            self._bf = []
            self._prev = [-1]
            self._nxt = [1]
            self._free_head = -1
            return
        ttof = _np.argsort(freqs, kind="stable")
        sf = freqs[ttof]
        starts = _np.flatnonzero(sf[1:] != sf[:-1]) + 1
        starts = _np.concatenate((_np.zeros(1, dtype=starts.dtype), starts))
        # Exclusive right bounds: each run ends where the next begins.
        ends = _np.concatenate((starts[1:], [m]))
        ftot = _np.empty(m, dtype=_np.int64)
        ftot[ttof] = _np.arange(m, dtype=_np.int64)
        self._ttof = ttof.tolist()
        self._ftot = ftot.tolist()
        self._ptrb = _np.repeat(
            _np.arange(len(starts)), ends - starts
        ).tolist()
        self._bl = starts.tolist()
        self._bre = ends.tolist()
        self._bf = sf[starts].tolist()
        self._sync_rank_tables(m)
        self._free_head = -1

    def _reallocate_owned(self, m: int) -> None:
        """Size the owned array-engine buffers for a new capacity
        ``m`` (contents are installed by the caller).  Refused on
        externally attached buffers, which are fixed-capacity."""
        if self._header is not None:
            raise InvariantViolationError(
                "externally attached buffers have fixed capacity "
                f"{self._m}; cannot reallocate for capacity {m}"
            )
        self._ftot = _np.empty(m, dtype=_np.int64)
        self._ttof = _np.empty(m, dtype=_np.int64)
        self._ptrb = _np.empty(m, dtype=_np.int64)
        slots = max(1, min(8, m)) if m else 1
        self._bl = _np.empty(slots, dtype=_np.int64)
        self._bre = _np.empty(slots, dtype=_np.int64)
        self._bf = _np.empty(slots, dtype=_np.int64)
        self._bn = 0
        self._m = m

    def _install_freqs_np_array(self, freqs, m: int) -> None:
        """Array-engine wholesale rebuild: in-place buffer writes."""
        if m != self._m:
            self._reallocate_owned(m)
        self._sync_rank_tables(m)
        if m == 0:
            self._bn = 0
            self._free_head = -1
            return
        ttof = _np.argsort(freqs, kind="stable")
        sf = freqs[ttof]
        starts = _np.flatnonzero(sf[1:] != sf[:-1]) + 1
        starts = _np.concatenate((_np.zeros(1, dtype=starts.dtype), starts))
        ends = _np.concatenate((starts[1:], [m]))
        self._ttof[:] = ttof
        self._ftot[ttof] = _np.arange(m, dtype=_np.int64)
        nb = int(starts.shape[0])
        self._ptrb[:] = _np.repeat(
            _np.arange(nb, dtype=_np.int64), ends - starts
        )
        self._ensure_block_slots(nb)
        self._bl[:nb] = starts
        self._bre[:nb] = ends
        self._bf[:nb] = sf[starts]
        self._bn = nb
        self._free_head = -1

    def _sync_rank_tables(self, m: int) -> None:
        """(Re)build the prev/nxt rank tables — only when ``m`` moved.

        The tables are pure functions of the capacity; skipping the
        rebuild keeps repeated wholesale rebuilds (the dense batch
        path) from paying O(m) for nothing.
        """
        if len(self._prev) != m + 1:
            if self._array:
                self._prev = _np.arange(-1, m, dtype=_np.int64)
                self._nxt = _np.arange(1, m + 2, dtype=_np.int64)
            else:
                self._prev = list(range(-1, m))
                self._nxt = list(range(1, m + 2))

    def _install_runs(
        self, ttof: list[int], runs: list[tuple[int, int, int]]
    ) -> None:
        """Replace the permutation and block structure wholesale.

        ``runs`` are inclusive ``(l, r, f)`` triples (the paper's and
        the checkpoint schema's notation) and must partition
        ``[0, len(ttof))`` with strictly increasing frequencies
        (verified cheaply by coverage count; checkpoint restore
        re-audits in full).
        """
        m = len(ttof)
        ftot = [0] * m
        for rank, obj in enumerate(ttof):
            ftot[obj] = rank
        ptrb = [0] * m
        bl: list[int] = []
        bre: list[int] = []
        bf: list[int] = []
        covered = 0
        for l, r, f in runs:
            if not (0 <= l <= r < m):
                raise InvariantViolationError(
                    f"run ({l}, {r}, {f}) out of bounds for capacity {m}"
                )
            bid = len(bl)
            bl.append(l)
            bre.append(r + 1)
            bf.append(f)
            ptrb[l : r + 1] = [bid] * (r + 1 - l)
            covered += r + 1 - l
        if covered != m:
            raise InvariantViolationError(
                f"runs cover {covered} ranks, expected {m}"
            )
        if self._array:
            # In-place install: external (shared-memory) buffers are
            # fixed-capacity, owned buffers reallocate on a capacity
            # change.
            if m != self._m:
                self._reallocate_owned(m)
            self._ttof[:] = ttof
            self._ftot[:] = ftot
            self._ptrb[:] = ptrb
            nb = len(bl)
            self._ensure_block_slots(max(nb, 1))
            self._bl[:nb] = bl
            self._bre[:nb] = bre
            self._bf[:nb] = bf
            self._bn = nb
            self._sync_rank_tables(m)
            self._free_head = -1
            return
        self._m = m
        self._ttof = ttof
        self._ftot = ftot
        self._ptrb = ptrb
        self._bl = bl
        self._bre = bre
        self._bf = bf
        self._sync_rank_tables(m)
        self._free_head = -1

    def audit(self) -> None:
        """Verify the flat structure's invariants (see
        :meth:`_FlatBlockReader.audit`)."""
        self._blocks.audit()

    def __repr__(self) -> str:
        return (
            f"FlatProfile(capacity={self._m}, total={self.total}, "
            f"blocks={self.block_count}, events={self.n_events})"
        )


def _runs_from_sorted(
    ttof: Sequence[int], freqs: Sequence[int]
) -> list[tuple[int, int, int]]:
    """Compute ``(l, r, f)`` runs of equal frequency along sorted ranks."""
    runs: list[tuple[int, int, int]] = []
    m = len(ttof)
    rank = 0
    while rank < m:
        f = freqs[ttof[rank]]
        start = rank
        while rank + 1 < m and freqs[ttof[rank + 1]] == f:
            rank += 1
        runs.append((start, rank, f))
        rank += 1
    return runs
