"""Parallel shared-memory engine vs single-core flat batch ingestion.

The pytest-benchmark face of the ``parallel_batch`` path of
``python -m repro.bench trajectory``: the same 10k-event batches driven
through single-core :class:`~repro.core.flat.FlatProfile`, the
array-engine variant (isolating the in-place-rebuild effect from the
IPC), and :class:`~repro.engine.parallel.ParallelShardedProfiler` at a
small worker sweep.

Interpretation rule (same as the committed trajectory): a worker count
above this machine's core count measures IPC overhead on a contended
core, not parallelism — compare only the entries your machine can
host.
"""

import numpy as np
import pytest

from repro.bench.workloads import build_stream
from repro.core.flat import FlatProfile
from repro.engine.parallel import ParallelShardedProfiler

pytestmark = pytest.mark.parallel

BATCH = 10_000
BATCH_COUNT = 4
M = 8_000


@pytest.fixture(scope="module")
def batches():
    stream = build_stream("stream1", BATCH * BATCH_COUNT, M, seed=0)
    return [
        stream.ids[i * BATCH : (i + 1) * BATCH] for i in range(BATCH_COUNT)
    ]


def _ingest_flat(profile, batch_list):
    add_many = profile.add_many
    for batch in batch_list:
        add_many(batch)


@pytest.mark.parametrize("array_engine", (False, True))
def test_batch_ingest_flat(benchmark, batches, array_engine):
    benchmark.group = "parallel batch-10k add_many"
    storage = "array" if array_engine else "list"
    benchmark.name = f"flat[{storage}]"

    def setup():
        return (FlatProfile(M, array_engine=array_engine), batches), {}

    benchmark.pedantic(_ingest_flat, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("workers", (1, 2))
def test_batch_ingest_parallel(benchmark, batches, workers):
    benchmark.group = "parallel batch-10k add_many"
    benchmark.name = f"parallel[w{workers}]"
    engine = ParallelShardedProfiler(M, workers=workers, inline=False)

    def run(batch_list):
        add_many = engine.add_many
        for batch in batch_list:
            add_many(batch)
        engine.sync()

    def setup():
        engine.clear()
        engine.sync()
        return (batches,), {}

    try:
        benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    finally:
        engine.close()


def test_parallel_answers_match_flat(batches):
    """The benchmark's sanity rail: whatever the timing says, the
    answers are identical."""
    flat = FlatProfile(M)
    with ParallelShardedProfiler(M, workers=2, inline=False) as parallel:
        for batch in batches:
            flat.add_many(batch)
            parallel.add_many(batch)
        assert parallel.frequencies() == flat.frequencies()
        assert parallel.histogram() == flat.histogram()
        assert parallel.total == flat.total
    assert isinstance(batches[0], np.ndarray)
