"""Setuptools shim enabling legacy editable installs (no-network env)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "S-Profile: O(1) profiling of dynamic arrays with finite values "
        "(EDBT 2019 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    zip_safe=False,
)
