"""Log-stream generation, including the paper's three test streams.

The paper's procedure (section 3): "We first randomly generate an 'add'
or 'remove' action, with 70% and 30% probabilities respectively.  Then,
for each 'add' action we randomly choose an object id according to a
probability distribution (called posPDF).  For each 'remove' action
another distribution (called negPDF) is used."

- ``Stream1``: posPDF and negPDF uniform on ``[0, m)``.
- ``Stream2``: posPDF normal(µ=2m/3, σ=m/6); negPDF normal(µ=m/3, σ=m/6).
- ``Stream3``: posPDF normal(µ=4m/5, σ=m); negPDF lognormal(µ=3m/5, σ=m).

Generation is vectorized; a generated :class:`LogStream` holds two
parallel numpy arrays and feeds any profiler via ``consume_arrays``.

Frequencies may go negative under this procedure (a remove may hit an
object with zero count) — the paper explicitly allows this.  For
strict-mode consumers, ``policy="flip"`` rewrites an underflowing
remove into an add, and ``policy="skip"`` redraws it as a no-op-free
resample of the action (both sequential, O(n)).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.errors import StreamConfigError
from repro.streams.distributions import (
    LognormalSampler,
    NormalSampler,
    Sampler,
    UniformSampler,
)
from repro.streams.events import Action, Event

__all__ = [
    "LogStream",
    "StreamConfig",
    "generate_stream",
    "paper_stream",
    "PAPER_STREAM_NAMES",
]

#: Names accepted by :func:`paper_stream`.
PAPER_STREAM_NAMES = ("stream1", "stream2", "stream3")

#: The paper's action mix: 70% add, 30% remove.
PAPER_ADD_PROBABILITY = 0.7

_POLICIES = ("allow", "flip", "skip")


@dataclass(frozen=True)
class LogStream:
    """A materialized log stream: parallel id / is-add arrays.

    Attributes
    ----------
    ids:
        ``int64`` object ids, one per event.
    adds:
        Boolean flags, True for "add".
    universe:
        ``m`` — ids are guaranteed to lie in ``[0, universe)``.
    name:
        Human-readable label used in benchmark reports.
    """

    ids: np.ndarray
    adds: np.ndarray
    universe: int
    name: str = "stream"

    def __post_init__(self) -> None:
        if self.ids.shape != self.adds.shape:
            raise StreamConfigError(
                f"ids {self.ids.shape} and adds {self.adds.shape} differ"
            )
        if self.ids.ndim != 1:
            raise StreamConfigError("stream arrays must be 1-dimensional")
        if self.universe <= 0:
            raise StreamConfigError(
                f"universe must be positive, got {self.universe}"
            )
        if len(self.ids) and (
            int(self.ids.min()) < 0 or int(self.ids.max()) >= self.universe
        ):
            raise StreamConfigError(
                f"ids outside [0, {self.universe}) in stream {self.name!r}"
            )

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[Event]:
        for obj, is_add in zip(self.ids.tolist(), self.adds.tolist()):
            yield Event(obj, Action.from_flag(is_add))

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(ids, adds)`` pair for ``consume_arrays``."""
        return (self.ids, self.adds)

    def prefix(self, n: int) -> "LogStream":
        """The first ``n`` events as a new stream."""
        if not 0 <= n <= len(self.ids):
            raise StreamConfigError(
                f"prefix length {n} outside [0, {len(self.ids)}]"
            )
        return LogStream(
            ids=self.ids[:n],
            adds=self.adds[:n],
            universe=self.universe,
            name=f"{self.name}[:{n}]",
        )

    @property
    def add_fraction(self) -> float:
        if len(self.adds) == 0:
            return 0.0
        return float(self.adds.mean())


@dataclass(frozen=True)
class StreamConfig:
    """Recipe for :func:`generate_stream`.

    ``pos_sampler`` / ``neg_sampler`` default to uniform over the
    universe (i.e. Stream1).
    """

    n_events: int
    universe: int
    p_add: float = PAPER_ADD_PROBABILITY
    pos_sampler: Sampler | None = None
    neg_sampler: Sampler | None = None
    policy: str = "allow"
    seed: int | None = 0
    name: str = field(default="stream")

    def __post_init__(self) -> None:
        if self.n_events < 0:
            raise StreamConfigError(
                f"n_events must be >= 0, got {self.n_events}"
            )
        if self.universe <= 0:
            raise StreamConfigError(
                f"universe must be positive, got {self.universe}"
            )
        if not 0.0 <= self.p_add <= 1.0:
            raise StreamConfigError(
                f"p_add must be in [0, 1], got {self.p_add}"
            )
        if self.policy not in _POLICIES:
            raise StreamConfigError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}"
            )
        for sampler in (self.pos_sampler, self.neg_sampler):
            if sampler is not None and sampler.universe != self.universe:
                raise StreamConfigError(
                    f"sampler universe {sampler.universe} != "
                    f"stream universe {self.universe}"
                )

    def with_size(self, n_events: int, universe: int | None = None):
        """Copy with a different event count (and optionally universe).

        Samplers are dropped when the universe changes — their
        parameters are universe-dependent; use the factory that created
        the config (e.g. :func:`paper_stream`) instead.
        """
        if universe is None or universe == self.universe:
            return replace(self, n_events=n_events)
        return replace(
            self,
            n_events=n_events,
            universe=universe,
            pos_sampler=None,
            neg_sampler=None,
        )


def generate_stream(config: StreamConfig) -> LogStream:
    """Materialize a stream per the paper's two-step procedure."""
    rng = np.random.default_rng(config.seed)
    n = config.n_events
    m = config.universe
    pos = config.pos_sampler or UniformSampler(m)
    neg = config.neg_sampler or UniformSampler(m)

    adds = rng.random(n) < config.p_add
    ids = np.empty(n, dtype=np.int64)
    n_add = int(adds.sum())
    if n_add:
        ids[adds] = pos.sample(rng, n_add)
    if n - n_add:
        ids[~adds] = neg.sample(rng, n - n_add)

    if config.policy != "allow":
        adds = _enforce_nonnegative(ids, adds, m, config.policy, rng)

    return LogStream(ids=ids, adds=adds, universe=m, name=config.name)


def _enforce_nonnegative(
    ids: np.ndarray,
    adds: np.ndarray,
    universe: int,
    policy: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Rewrite removes that would underflow zero (sequential pass).

    ``flip`` turns the offending remove into an add of the same object;
    ``skip`` re-targets the remove at the currently most recently added
    object with positive count, falling back to a flip when the whole
    array is empty.
    """
    counts = [0] * universe
    id_list = ids.tolist()
    add_list = adds.tolist()
    positive: list[int] = []  # stack of ids with known-positive counts
    for i, (x, is_add) in enumerate(zip(id_list, add_list)):
        if is_add:
            counts[x] += 1
            positive.append(x)
            continue
        if counts[x] > 0:
            counts[x] -= 1
            continue
        if policy == "flip":
            add_list[i] = True
            counts[x] += 1
            positive.append(x)
            continue
        # policy == "skip": re-target the remove at a positive-count id.
        while positive and counts[positive[-1]] == 0:
            positive.pop()
        if positive:
            target = positive[-1]
            id_list[i] = target
            counts[target] -= 1
        else:
            add_list[i] = True
            counts[x] += 1
            positive.append(x)
    ids[:] = id_list
    return np.asarray(add_list, dtype=bool)


def paper_stream(
    which: str,
    n_events: int,
    universe: int,
    *,
    seed: int | None = 0,
    policy: str = "allow",
) -> StreamConfig:
    """Config for the paper's Stream1 / Stream2 / Stream3.

    Returns a :class:`StreamConfig`; pass it to :func:`generate_stream`.
    """
    m = universe
    key = which.lower()
    if key in ("stream1", "1"):
        return StreamConfig(
            n_events=n_events,
            universe=m,
            pos_sampler=UniformSampler(m),
            neg_sampler=UniformSampler(m),
            seed=seed,
            policy=policy,
            name="stream1",
        )
    if key in ("stream2", "2"):
        return StreamConfig(
            n_events=n_events,
            universe=m,
            pos_sampler=NormalSampler(m, mean=2 * m / 3, std=m / 6),
            neg_sampler=NormalSampler(m, mean=m / 3, std=m / 6),
            seed=seed,
            policy=policy,
            name="stream2",
        )
    if key in ("stream3", "3"):
        return StreamConfig(
            n_events=n_events,
            universe=m,
            pos_sampler=NormalSampler(m, mean=4 * m / 5, std=m),
            neg_sampler=LognormalSampler(m, mean=3 * m / 5, std=m),
            seed=seed,
            policy=policy,
            name="stream3",
        )
    raise StreamConfigError(
        f"unknown paper stream {which!r}; choose from {PAPER_STREAM_NAMES}"
    )
