"""Log-stream substrate: generation, windows, persistence.

The paper evaluates on synthetic log streams (section 3): 70% "add" /
30% "remove" actions with object ids drawn from per-action
distributions (posPDF / negPDF).  This subpackage reproduces that setup:

- :mod:`repro.streams.events` — the event vocabulary.
- :mod:`repro.streams.distributions` — id samplers (uniform, clipped
  normal, clipped lognormal, Zipf).
- :mod:`repro.streams.generators` — vectorized stream generation and the
  paper's ``Stream1`` / ``Stream2`` / ``Stream3`` factories.
- :mod:`repro.streams.adversarial` — worst-case streams for baselines.
- :mod:`repro.streams.window` — sliding windows (paper section 2.3).
- :mod:`repro.streams.replay` — save/load and descriptive statistics.
"""

from repro.streams.adversarial import (
    root_thrash_stream,
    single_hot_object_stream,
    staircase_stream,
)
from repro.streams.distributions import (
    ConstantSampler,
    LognormalSampler,
    NormalSampler,
    Sampler,
    UniformSampler,
    ZipfSampler,
    derive_lognormal_params,
)
from repro.streams.events import Action, Event
from repro.streams.generators import (
    LogStream,
    StreamConfig,
    generate_stream,
    paper_stream,
    PAPER_STREAM_NAMES,
)
from repro.streams.replay import (
    StreamStats,
    load_stream,
    save_stream,
    stream_stats,
)
from repro.streams.window import CountWindowProfiler, TimeWindowProfiler

__all__ = [
    "Action",
    "ConstantSampler",
    "CountWindowProfiler",
    "Event",
    "LogStream",
    "LognormalSampler",
    "NormalSampler",
    "PAPER_STREAM_NAMES",
    "Sampler",
    "StreamConfig",
    "StreamStats",
    "TimeWindowProfiler",
    "UniformSampler",
    "ZipfSampler",
    "derive_lognormal_params",
    "generate_stream",
    "load_stream",
    "paper_stream",
    "root_thrash_stream",
    "save_stream",
    "single_hot_object_stream",
    "staircase_stream",
    "stream_stats",
]
