"""Wall-clock measurement of profiler workloads.

The timed region reproduces the paper's measurement: the profiler is
pre-built (structure initialization is not the contribution under test),
then every stream event is applied and the statistic of interest is
read back — mode upkeep for figures 3-5, median upkeep for figure 6.

Loops bind bound-methods to locals, identically for every profiler, so
the comparison measures the data structures rather than attribute
lookup noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Sequence

from repro.streams.generators import LogStream

__all__ = [
    "SeriesResult",
    "time_update_only",
    "time_mode_workload",
    "time_median_workload",
    "run_series",
]


def _as_lists(stream: LogStream) -> tuple[list[int], list[bool]]:
    ids, adds = stream.arrays()
    return ids.tolist(), adds.tolist()


def time_update_only(profiler, stream: LogStream) -> float:
    """Seconds to apply every event (no per-event query)."""
    id_list, add_list = _as_lists(stream)
    add = profiler.add
    remove = profiler.remove
    start = perf_counter()
    for x, is_add in zip(id_list, add_list):
        if is_add:
            add(x)
        else:
            remove(x)
    return perf_counter() - start


def time_mode_workload(profiler, stream: LogStream) -> float:
    """Seconds to apply every event and read the mode frequency after
    each one (the paper's figures 3-5 workload)."""
    id_list, add_list = _as_lists(stream)
    add = profiler.add
    remove = profiler.remove
    mode = profiler.max_frequency
    start = perf_counter()
    for x, is_add in zip(id_list, add_list):
        if is_add:
            add(x)
        else:
            remove(x)
        mode()
    return perf_counter() - start


def time_median_workload(profiler, stream: LogStream) -> float:
    """Seconds to apply every event and read the median after each one
    (the paper's figure 6 workload)."""
    id_list, add_list = _as_lists(stream)
    add = profiler.add
    remove = profiler.remove
    median = profiler.median_frequency
    start = perf_counter()
    for x, is_add in zip(id_list, add_list):
        if is_add:
            add(x)
        else:
            remove(x)
        median()
    return perf_counter() - start


@dataclass
class SeriesResult:
    """Times for one (x-axis sweep) × (profiler set) experiment."""

    title: str
    x_label: str
    x_values: list[int]
    #: profiler name -> seconds per x value (same order as x_values).
    times: dict[str, list[float]] = field(default_factory=dict)
    #: profiler name -> raw repeat samples per x value (the medians in
    #: ``times`` come from these); feeds the percentile columns of
    #: :func:`repro.bench.reporting.format_series_table`.
    samples: dict[str, list[list[float]]] = field(default_factory=dict)

    def speedup(self, baseline: str, ours: str) -> list[float]:
        """Per-point ``baseline / ours`` time ratios."""
        base = self.times[baseline]
        fast = self.times[ours]
        return [b / f if f > 0 else float("inf") for b, f in zip(base, fast)]

    def min_speedup(self, baseline: str, ours: str) -> float:
        return min(self.speedup(baseline, ours))

    def max_speedup(self, baseline: str, ours: str) -> float:
        return max(self.speedup(baseline, ours))


def run_series(
    title: str,
    x_label: str,
    x_values: Sequence[int],
    profiler_factories: dict[str, Callable[[int], object]],
    stream_for_x: Callable[[int], LogStream],
    capacity_for_x: Callable[[int], int],
    timer: Callable[[object, LogStream], float],
    *,
    repeats: int = 3,
) -> SeriesResult:
    """Time every profiler across a parameter sweep.

    For each x value the stream is built once; each profiler is rebuilt
    fresh per repeat and the *median* of ``repeats`` runs is recorded
    (medians are robust to scheduler noise without the cost of many
    rounds).
    """
    result = SeriesResult(
        title=title,
        x_label=x_label,
        x_values=list(x_values),
        times={name: [] for name in profiler_factories},
        samples={name: [] for name in profiler_factories},
    )
    for x in x_values:
        stream = stream_for_x(x)
        capacity = capacity_for_x(x)
        for name, factory in profiler_factories.items():
            samples = []
            for _ in range(repeats):
                profiler = factory(capacity)
                samples.append(timer(profiler, stream))
            samples.sort()
            result.times[name].append(samples[len(samples) // 2])
            result.samples[name].append(samples)
    return result
