"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.CapacityError,
            errors.UnknownObjectError,
            errors.FrequencyUnderflowError,
            errors.EmptyProfileError,
            errors.UnsupportedQueryError,
            errors.InvariantViolationError,
            errors.CheckpointError,
            errors.StreamConfigError,
            errors.WindowError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_capacity_error_is_value_error(self):
        # Callers using stdlib idioms must still catch these.
        assert issubclass(errors.CapacityError, ValueError)
        assert issubclass(errors.FrequencyUnderflowError, ValueError)
        assert issubclass(errors.CheckpointError, ValueError)
        assert issubclass(errors.StreamConfigError, ValueError)
        assert issubclass(errors.WindowError, ValueError)

    def test_unknown_object_is_key_error(self):
        assert issubclass(errors.UnknownObjectError, KeyError)

    def test_unsupported_query_is_not_implemented(self):
        assert issubclass(errors.UnsupportedQueryError, NotImplementedError)

    def test_invariant_violation_is_assertion(self):
        assert issubclass(errors.InvariantViolationError, AssertionError)


class TestUnsupportedQueryError:
    def test_carries_context(self):
        exc = errors.UnsupportedQueryError("heap-max", "median")
        assert exc.profiler == "heap-max"
        assert exc.query == "median"
        assert "heap-max" in str(exc)
        assert "median" in str(exc)
