"""Unit tests for the benchmark harness (workloads, runner, reporting)."""

import pytest

from repro.baselines.registry import make_profiler
from repro.bench.reporting import (
    format_figure,
    format_series_table,
    summarize_speedups,
)
from repro.bench.runner import (
    SeriesResult,
    run_series,
    time_median_workload,
    time_mode_workload,
    time_update_only,
)
from repro.bench.workloads import WORKLOAD_NAMES, build_stream, workload_for
from repro.errors import StreamConfigError


class TestWorkloads:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_all_workloads_build(self, name):
        stream = build_stream(name, 500, 50, seed=1)
        assert len(stream) == 500
        assert stream.universe == 50

    def test_memoization_returns_same_object(self):
        a = build_stream("stream1", 100, 10, seed=0)
        b = build_stream("stream1", 100, 10, seed=0)
        assert a is b

    def test_unknown_workload(self):
        with pytest.raises(StreamConfigError):
            build_stream("nope", 10, 10)

    def test_workload_for_figures(self):
        assert workload_for(3) == ("stream1", "stream2", "stream3")
        assert workload_for(5) == ("stream1",)
        with pytest.raises(StreamConfigError):
            workload_for(7)


class TestTimers:
    @pytest.mark.parametrize(
        "timer", [time_update_only, time_mode_workload]
    )
    def test_mode_timers_run_and_apply_events(self, timer):
        stream = build_stream("stream1", 200, 20, seed=2)
        profiler = make_profiler("sprofile", 20)
        elapsed = timer(profiler, stream)
        assert elapsed > 0
        assert profiler.n_events == 200

    def test_median_timer(self):
        stream = build_stream("stream1", 200, 20, seed=2)
        profiler = make_profiler("tree-treap", 20)
        elapsed = time_median_workload(profiler, stream)
        assert elapsed > 0
        assert profiler.n_events == 200

    def test_timers_leave_equivalent_state(self):
        stream = build_stream("stream1", 300, 15, seed=3)
        ours = make_profiler("sprofile", 15)
        oracle = make_profiler("bucket", 15)
        time_mode_workload(ours, stream)
        oracle.consume_arrays(*stream.arrays())
        assert ours.frequencies() == oracle.frequencies()


class TestSeries:
    def _toy_series(self):
        return run_series(
            title="toy",
            x_label="n",
            x_values=[100, 200],
            profiler_factories={
                "sprofile": lambda c: make_profiler("sprofile", c),
                "heap-max": lambda c: make_profiler("heap-max", c),
            },
            stream_for_x=lambda n: build_stream("stream1", n, 20, seed=1),
            capacity_for_x=lambda n: 20,
            timer=time_mode_workload,
            repeats=1,
        )

    def test_run_series_shape(self):
        series = self._toy_series()
        assert series.x_values == [100, 200]
        assert set(series.times) == {"sprofile", "heap-max"}
        assert all(len(times) == 2 for times in series.times.values())
        assert all(
            t > 0 for times in series.times.values() for t in times
        )

    def test_speedup_math(self):
        series = SeriesResult(
            title="t",
            x_label="n",
            x_values=[1, 2],
            times={"base": [2.0, 9.0], "ours": [1.0, 3.0]},
        )
        assert series.speedup("base", "ours") == [2.0, 3.0]
        assert series.min_speedup("base", "ours") == 2.0
        assert series.max_speedup("base", "ours") == 3.0

    def test_speedup_zero_denominator(self):
        series = SeriesResult(
            title="t", x_label="n", x_values=[1],
            times={"base": [2.0], "ours": [0.0]},
        )
        assert series.speedup("base", "ours") == [float("inf")]


class TestReporting:
    def _series(self):
        return SeriesResult(
            title="demo",
            x_label="n",
            x_values=[1000, 2000],
            times={"heap-max": [0.2, 0.4], "sprofile": [0.1, 0.1]},
        )

    def test_table_contains_rows_and_speedups(self):
        table = format_series_table(self._series())
        assert "demo" in table
        assert "1,000" in table and "2,000" in table
        assert "2.00x" in table and "4.00x" in table

    def test_summary_line(self):
        text = summarize_speedups(self._series())
        assert "2.00x" in text and "4.00x" in text
        assert "heap-max" in text

    def test_time_formatting_ranges(self):
        series = SeriesResult(
            title="fmt", x_label="n", x_values=[1, 2, 3],
            times={"a": [0.005, 5.0, 500.0], "sprofile": [1.0, 1.0, 1.0]},
        )
        table = format_series_table(series)
        assert "ms" in table      # millisecond formatting
        assert "5.000s" in table  # second formatting
        assert "500.0s" in table  # large-value formatting

    def test_format_figure(self):
        from repro.bench.figures import FigureResult

        result = FigureResult(
            figure=3,
            scale="tiny",
            description="desc",
            expectation="shape",
            series=[self._series()],
        )
        text = format_figure(result)
        assert "Figure 3" in text and "desc" in text and "shape" in text


class TestPercentiles:
    def test_nearest_rank_basics(self):
        from repro.bench.reporting import percentiles

        spread = percentiles([4.0, 1.0, 3.0, 2.0], (0, 50, 75, 100))
        assert spread == {0: 1.0, 50: 2.0, 75: 3.0, 100: 4.0}

    def test_single_sample_is_every_percentile(self):
        from repro.bench.reporting import percentiles

        assert percentiles([7.0], (50, 99)) == {50: 7.0, 99: 7.0}

    def test_tail_reports_an_observed_value(self):
        from repro.bench.reporting import percentiles

        samples = list(range(1, 101))
        spread = percentiles(samples, (99, 95))
        assert spread[99] == 99 and spread[95] == 95
        assert all(value in samples for value in spread.values())

    def test_validation(self):
        from repro.bench.reporting import percentiles

        with pytest.raises(ValueError):
            percentiles([])
        with pytest.raises(ValueError):
            percentiles([1.0], (101,))

    def test_run_series_records_samples(self):
        series = run_series(
            title="toy",
            x_label="n",
            x_values=[100],
            profiler_factories={
                "sprofile": lambda c: make_profiler("sprofile", c)
            },
            stream_for_x=lambda n: build_stream("stream1", n, 20, seed=1),
            capacity_for_x=lambda n: 20,
            timer=time_mode_workload,
            repeats=3,
        )
        assert len(series.samples["sprofile"][0]) == 3
        # The reported median really is the median of the samples.
        assert series.times["sprofile"][0] == sorted(
            series.samples["sprofile"][0]
        )[1]

    def test_table_grows_percentile_columns_with_samples(self):
        series = SeriesResult(
            title="demo",
            x_label="n",
            x_values=[1000],
            times={"heap-max": [0.2], "sprofile": [0.1]},
            samples={"sprofile": [[0.1, 0.15, 0.3]]},
        )
        table = format_series_table(series)
        assert "sprofile p50" in table
        assert "sprofile p99" in table
        assert "300.00ms" in table  # the p99 of the recorded samples

    def test_table_without_samples_is_unchanged(self):
        series = SeriesResult(
            title="demo",
            x_label="n",
            x_values=[1000],
            times={"heap-max": [0.2], "sprofile": [0.1]},
        )
        assert "p50" not in format_series_table(series)
