"""Figure 4: mode upkeep vs m — heap vs S-Profile, streams 1-3.

Paper setting: n = 10^8 fixed, m swept to 10^8.  Here: n = 2*10^4 with
two m points per stream.  Expected shape: S-Profile faster at every m.
"""

import pytest

from benchmarks.conftest import consume_with_query, profiler_setup

N = 20_000
M_VALUES = (5_000, 40_000)
STREAMS = ("stream1", "stream2", "stream3")
PROFILERS = ("heap-max", "sprofile")


@pytest.mark.parametrize("universe", M_VALUES)
@pytest.mark.parametrize("stream_name", STREAMS)
@pytest.mark.parametrize("profiler_name", PROFILERS)
def test_fig4_mode_upkeep(
    benchmark, stream_lists, profiler_name, stream_name, universe
):
    benchmark.group = f"fig4 {stream_name} m={universe}"
    ids, adds = stream_lists(stream_name, N, universe)
    benchmark.pedantic(
        consume_with_query,
        setup=profiler_setup(
            profiler_name, universe, ids, adds, "max_frequency"
        ),
        rounds=3,
        iterations=1,
    )
