"""Order-statistic AVL multiset — balanced-tree baseline #2.

Deterministic counterpart of :class:`~repro.baselines.treap.TreapMultiset`
with worst-case O(log d) height (d = distinct keys).  Same collapsed
equal-key representation, same interface; exists so benchmark results do
not hinge on a single tree implementation.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["AVLMultiset"]


class _Node:
    __slots__ = ("key", "count", "size", "height", "left", "right")

    def __init__(self, key: int) -> None:
        self.key = key
        self.count = 1
        self.size = 1
        self.height = 1
        self.left: _Node | None = None
        self.right: _Node | None = None


def _height(node: _Node | None) -> int:
    return node.height if node is not None else 0


def _size(node: _Node | None) -> int:
    return node.size if node is not None else 0


def _pull(node: _Node) -> None:
    node.size = node.count + _size(node.left) + _size(node.right)
    left_h = _height(node.left)
    right_h = _height(node.right)
    node.height = (left_h if left_h > right_h else right_h) + 1


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    node.left = pivot.right
    pivot.right = node
    _pull(node)
    _pull(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    node.right = pivot.left
    pivot.left = node
    _pull(node)
    _pull(pivot)
    return pivot


def _rebalance(node: _Node) -> _Node:
    _pull(node)
    balance = _balance_factor(node)
    if balance > 1:
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLMultiset:
    """Multiset of integers with worst-case O(log d) order statistics."""

    def __init__(self) -> None:
        self._root: _Node | None = None
        self._len = 0

    @classmethod
    def from_zeros(cls, count: int) -> "AVLMultiset":
        """Bulk-build with ``count`` copies of zero.  O(1)."""
        self = cls()
        if count > 0:
            node = _Node(0)
            node.count = count
            node.size = count
            self._root = node
            self._len = count
        return self

    def __len__(self) -> int:
        return self._len

    def insert(self, key: int) -> None:
        """Add one occurrence of ``key``.  O(log d) worst case."""
        self._root = self._insert(self._root, key)
        self._len += 1

    def _insert(self, node: _Node | None, key: int) -> _Node:
        if node is None:
            return _Node(key)
        if key == node.key:
            node.count += 1
            _pull(node)
            return node
        if key < node.key:
            node.left = self._insert(node.left, key)
        else:
            node.right = self._insert(node.right, key)
        return _rebalance(node)

    def erase_one(self, key: int) -> None:
        """Remove one occurrence of ``key``; KeyError if absent."""
        self._root = self._erase(self._root, key)
        self._len -= 1

    def _erase(self, node: _Node | None, key: int) -> _Node | None:
        if node is None:
            raise KeyError(key)
        if key < node.key:
            node.left = self._erase(node.left, key)
        elif key > node.key:
            node.right = self._erase(node.right, key)
        elif node.count > 1:
            node.count -= 1
            _pull(node)
            return node
        else:
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            # Replace with the in-order successor's payload, then remove
            # that successor node from the right subtree.
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key = successor.key
            node.count = successor.count
            successor.count = 1  # make the successor erasable in one step
            node.right = self._erase_min(node.right)
        return _rebalance(node)

    def _erase_min(self, node: _Node) -> _Node | None:
        if node.left is None:
            return node.right
        node.left = self._erase_min(node.left)
        return _rebalance(node)

    def kth(self, index: int) -> int:
        """The ``index``-th smallest element (0-based).  O(log d)."""
        if not 0 <= index < self._len:
            raise IndexError(f"index {index} out of range [0, {self._len})")
        node = self._root
        while node is not None:
            left_size = _size(node.left)
            if index < left_size:
                node = node.left
            elif index < left_size + node.count:
                return node.key
            else:
                index -= left_size + node.count
                node = node.right
        raise AssertionError("size bookkeeping violated")

    def rank_lt(self, key: int) -> int:
        """Number of elements strictly below ``key``.  O(log d)."""
        acc = 0
        node = self._root
        while node is not None:
            if key <= node.key:
                node = node.left
            else:
                acc += node.count + _size(node.left)
                node = node.right
        return acc

    def count_of(self, key: int) -> int:
        node = self._root
        while node is not None:
            if key == node.key:
                return node.count
            node = node.left if key < node.key else node.right
        return 0

    def min(self) -> int:
        if self._root is None:
            raise IndexError("min of empty multiset")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key

    def max(self) -> int:
        if self._root is None:
            raise IndexError("max of empty multiset")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key

    def items(self) -> Iterator[tuple[int, int]]:
        """Yield ``(key, count)`` ascending."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.count
            node = node.right

    def check_structure(self) -> bool:
        """O(d) verification of BST order, sizes, heights and balance."""
        ok = True

        def walk(node: _Node | None) -> tuple[int, int, int, int] | None:
            # returns (size, height, min_key, max_key)
            nonlocal ok
            if node is None or not ok:
                return None
            left = walk(node.left)
            right = walk(node.right)
            if not ok:
                return None
            size = node.count
            height = 1
            lo = hi = node.key
            if node.left is not None:
                assert left is not None
                if left[3] >= node.key:
                    ok = False
                    return None
                size += left[0]
                height = max(height, left[1] + 1)
                lo = left[2]
            if node.right is not None:
                assert right is not None
                if right[2] <= node.key:
                    ok = False
                    return None
                size += right[0]
                height = max(height, right[1] + 1)
                hi = right[3]
            balance = (left[1] if left else 0) - (right[1] if right else 0)
            if (
                size != node.size
                or height != node.height
                or node.count < 1
                or abs(balance) > 1
            ):
                ok = False
                return None
            return (size, height, lo, hi)

        result = walk(self._root)
        if not ok:
            return False
        total = result[0] if result is not None else 0
        return total == self._len

    def __repr__(self) -> str:
        return f"AVLMultiset(len={self._len})"
