"""Sliding-window throughput (paper section 2.3 reduction).

A full window processes two profile updates per push (the new event and
the expiring one), so steady-state throughput should be roughly half
the raw update rate — this bench verifies that overhead stays at ~2x
and does not degrade with window size.
"""

import pytest

from repro.streams.window import CountWindowProfiler

from benchmarks.conftest import consume_update_only, profiler_setup

N = 20_000
M = 5_000


def test_unwindowed_baseline(benchmark, stream_lists):
    benchmark.group = "sliding window push"
    ids, adds = stream_lists("stream1", N, M)
    benchmark.pedantic(
        consume_update_only,
        setup=profiler_setup("sprofile", M, ids, adds),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("window_size", [100, 5_000])
def test_windowed_push(benchmark, stream_lists, window_size):
    benchmark.group = "sliding window push"
    ids, adds = stream_lists("stream1", N, M)

    def setup():
        window = CountWindowProfiler(window_size, capacity=M)
        return (window, ids, adds), {}

    def run(window, id_list, add_list):
        push = window.push
        for x, is_add in zip(id_list, add_list):
            push(x, is_add)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
