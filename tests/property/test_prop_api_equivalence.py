"""Property: every exact backend answers identically through the facade.

Randomized streams drive ``Profiler.open(backend=b)`` for each
registered exact backend and assert the facade-normalized answers are
*equal* — frequencies, extremes, quantiles (edges included), histogram,
support, and top-k frequency profiles.  The approximate backend is held
to its error bounds instead of equality.

This is the contract the facade sells: pick any backend, get the same
numbers (or explicitly bounded ones).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Profiler, Query
from repro.errors import FrequencyUnderflowError, UnsupportedQueryError

UNIVERSE = 12

#: Exact backends answering the full query surface through the facade.
#: ``parallel`` hosts flat shard cores in worker processes — the same
#: answers must come back through shared memory.
FULL_SURFACE_BACKENDS = (
    "flat",
    "exact",
    "sharded",
    "parallel",
    "sprofile-indexed",
    "bucket",
)

#: Exact backends answering quantile-family queries only.
QUANTILE_BACKENDS = ("tree-fenwick", "tree-sortedlist")

events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=UNIVERSE - 1),
        st.integers(min_value=-3, max_value=4),
    ),
    max_size=60,
)

# Split points let the stream arrive as several ingest batches, so
# coalescing boundaries vary too.
batched_events = st.tuples(events, st.integers(min_value=1, max_value=5))

# Worker processes are expensive to spawn per hypothesis example, so
# the parallel profilers persist for the module (reset per example) —
# which also soaks them in hundreds of clear/ingest/query cycles.
_PARALLEL_CACHE: dict = {}


def _parallel_profiler(strict: bool = False) -> Profiler:
    key = ("strict" if strict else "lax",)
    profiler = _PARALLEL_CACHE.get(key)
    if profiler is None:
        profiler = Profiler.open(
            UNIVERSE, backend="parallel", workers=2, strict=strict
        )
        # Keep real worker processes in the matrix even on 1-CPU boxes.
        assert not profiler.backend.inline
        _PARALLEL_CACHE[key] = profiler
    profiler.backend.clear()
    return profiler


def teardown_module(module):
    for profiler in _PARALLEL_CACHE.values():
        profiler.close()
    _PARALLEL_CACHE.clear()


def _open_all(names, shards_for_sharded=3):
    profilers = {}
    for name in names:
        if name == "parallel":
            profilers[name] = _parallel_profiler()
            continue
        kwargs = {"shards": shards_for_sharded} if name == "sharded" else {}
        profilers[name] = Profiler.open(UNIVERSE, backend=name, **kwargs)
    return profilers


def _feed(profilers, stream, n_batches):
    if not stream:
        return
    size = max(1, len(stream) // n_batches)
    for start in range(0, len(stream), size):
        batch = stream[start : start + size]
        for profiler in profilers.values():
            profiler.ingest(batch)


QUANTILE_GRID = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@pytest.mark.parallel
@given(batched_events)
@settings(max_examples=60, deadline=None)
def test_full_surface_backends_agree(batched):
    stream, n_batches = batched
    profilers = _open_all(FULL_SURFACE_BACKENDS)
    _feed(profilers, stream, n_batches)

    reference = profilers["bucket"]
    ref_freqs = reference.frequencies()
    ref_hist = reference.histogram()
    for name, profiler in profilers.items():
        assert profiler.frequencies() == ref_freqs, name
        assert profiler.total == reference.total, name
        assert profiler.histogram() == ref_hist, name
        assert profiler.max_frequency() == reference.max_frequency(), name
        assert profiler.min_frequency() == reference.min_frequency(), name
        mode = profiler.mode()
        assert mode.frequency == reference.mode().frequency, name
        assert mode.count == reference.mode().count, name
        assert ref_freqs[mode.example] == mode.frequency, name
        least = profiler.least()
        assert least.frequency == reference.least().frequency, name
        assert least.count == reference.least().count, name
        for q in QUANTILE_GRID:
            assert profiler.quantile(q) == reference.quantile(q), (name, q)
        assert (
            profiler.median_frequency() == reference.median_frequency()
        ), name
        for f in (-1, 0, 1, 2):
            assert profiler.support(f) == reference.support(f), (name, f)
        top = profiler.top_k(5)
        assert [e.frequency for e in top] == [
            e.frequency for e in reference.top_k(5)
        ], name
        assert all(ref_freqs[e.obj] == e.frequency for e in top), name


@given(batched_events)
@settings(max_examples=40, deadline=None)
def test_quantile_backends_agree_on_their_surface(batched):
    stream, n_batches = batched
    profilers = _open_all(("bucket",) + QUANTILE_BACKENDS)
    _feed(profilers, stream, n_batches)
    reference = profilers["bucket"]
    for name in QUANTILE_BACKENDS:
        profiler = profilers[name]
        for q in QUANTILE_GRID:
            assert profiler.quantile(q) == reference.quantile(q), (name, q)
        assert profiler.histogram() == reference.histogram(), name
        assert not profiler.supports("top_k")
        try:
            profiler.top_k(3)
        except UnsupportedQueryError:
            pass
        else:  # pragma: no cover
            raise AssertionError(f"{name} should not answer top_k")


@pytest.mark.parallel
@given(batched_events)
@settings(max_examples=60, deadline=None)
def test_fused_evaluate_agrees_across_backends(batched):
    """The fused plan answers what the standalone calls answer,
    for every backend, on arbitrary streams."""
    stream, n_batches = batched
    profilers = _open_all(FULL_SURFACE_BACKENDS)
    _feed(profilers, stream, n_batches)
    plan = (
        Query.histogram(),
        Query.quantile(0.0),
        Query.quantile(1.0),
        Query.median(),
        Query.support(0),
        Query.total(),
    )
    reference = None
    for name, profiler in profilers.items():
        values = tuple(profiler.evaluate(*plan).values)
        if reference is None:
            reference = values
        else:
            assert values == reference, name


@given(batched_events)
@settings(max_examples=40, deadline=None)
def test_flat_hashable_keys_match_dynamic(batched):
    """Interned hashable keys over the flat engine answer like the
    growable dynamic backend."""
    stream, n_batches = batched
    named = [(f"k{obj}", delta) for obj, delta in stream]
    flat = Profiler.open(UNIVERSE, backend="flat", keys="hashable")
    dynamic = Profiler.open(keys="hashable")
    _feed({"flat": flat, "dynamic": dynamic}, named, n_batches)
    freqs = {}
    for obj in range(UNIVERSE):
        key = f"k{obj}"
        freqs[key] = dynamic.frequency(key)
        assert flat.frequency(key) == freqs[key]
    assert flat.total == dynamic.total
    # The interned-flat universe is fully materialized (unclaimed
    # slots sit at frequency 0), the dynamic universe is
    # registered-only — so extremes compare through that lens.
    assert flat.max_frequency() == max(list(freqs.values()) + [0])


@pytest.mark.parallel
@given(batched_events)
@settings(max_examples=30, deadline=None)
def test_strict_mode_rejection_agrees_across_workers(batched):
    """Strict-mode batches are all-or-nothing *across* worker
    processes: the parallel backend accepts/rejects exactly when the
    serial exact backend does, and a rejected batch leaves both
    completely unchanged."""
    stream, n_batches = batched
    parallel = _parallel_profiler(strict=True)
    exact = Profiler.open(UNIVERSE, backend="exact", strict=True)
    size = max(1, len(stream) // n_batches) if stream else 1
    for start in range(0, len(stream), size):
        batch = stream[start : start + size]
        outcomes = []
        for profiler in (parallel, exact):
            try:
                profiler.ingest(batch)
                outcomes.append("ok")
            except FrequencyUnderflowError:
                outcomes.append("underflow")
        assert outcomes[0] == outcomes[1], batch
        assert parallel.frequencies() == exact.frequencies()
    assert parallel.total == exact.total
    assert parallel.histogram() == exact.histogram()


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=1, max_value=6),
        ),
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_approx_backend_within_bounds(adds):
    """Add-only streams: Count-Min never underestimates and stays
    within its additive bound; SpaceSaving top-k never underestimates
    its monitored counts."""
    exact = Profiler.open(16, backend="exact")
    approx = Profiler.open(backend="approx", counters=8, eps=0.01)
    for obj, count in adds:
        exact.ingest({obj: count})
        approx.ingest({obj: count})
    total = exact.total
    assert approx.total == total
    bound = approx.backend.error_bound()
    for obj in range(16):
        true = exact.frequency(obj)
        estimate = approx.frequency(obj)
        assert estimate >= true
        assert estimate <= true + bound + total / 8
    if total:
        # Every SpaceSaving estimate is exact-or-over, within N/k.
        for entry in approx.top_k(8):
            true = exact.frequency(entry.obj)
            assert true <= entry.frequency <= true + total / 8
