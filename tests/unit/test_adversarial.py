"""Unit tests for the adversarial stream generators."""

import numpy as np
import pytest

from repro.core.profile import SProfile
from repro.errors import StreamConfigError
from repro.streams.adversarial import (
    root_thrash_stream,
    single_hot_object_stream,
    staircase_stream,
)


class TestRootThrash:
    def test_warmup_then_alternation(self):
        stream = root_thrash_stream(1000, 64)
        assert (stream.ids == 0).all()
        # After the warm-up prefix the actions strictly alternate.
        adds = stream.adds
        warmup = int(np.argmin(adds))  # first remove marks the end
        tail = adds[warmup:]
        assert not tail[::2].any()
        assert tail[1::2].all()

    def test_net_frequency_stays_high(self):
        stream = root_thrash_stream(1000, 64)
        profile = SProfile(64)
        profile.consume_arrays(*stream.arrays())
        assert profile.frequency(0) > 0
        assert profile.mode().example == 0

    def test_validation(self):
        with pytest.raises(StreamConfigError):
            root_thrash_stream(-1, 4)
        with pytest.raises(StreamConfigError):
            root_thrash_stream(10, 0)


class TestSingleHot:
    def test_all_same_object(self):
        stream = single_hot_object_stream(100, 10, hot=3)
        assert (stream.ids == 3).all()
        assert stream.adds.all()

    def test_profile_degenerates_to_two_blocks(self):
        stream = single_hot_object_stream(50, 10)
        profile = SProfile(10)
        profile.consume_arrays(*stream.arrays())
        assert profile.block_count == 2
        assert profile.mode().frequency == 50

    def test_hot_out_of_range(self):
        with pytest.raises(StreamConfigError):
            single_hot_object_stream(10, 5, hot=5)


class TestStaircase:
    def test_distinct_frequencies_maximized(self):
        universe = 20
        events = universe * (universe + 1) // 2  # full staircase
        stream = staircase_stream(events, universe)
        profile = SProfile(universe)
        profile.consume_arrays(*stream.arrays())
        assert sorted(profile.frequencies()) == list(range(1, universe + 1))
        assert profile.block_count == universe

    def test_truncation(self):
        stream = staircase_stream(7, 100)
        assert len(stream) == 7

    def test_saturation_continues_on_last_object(self):
        universe = 3
        full = universe * (universe + 1) // 2
        stream = staircase_stream(full + 5, universe)
        assert (stream.ids[full:] == universe - 1).all()

    def test_all_adds(self):
        assert staircase_stream(50, 10).adds.all()
