"""Warm-standby router: tail the primary's WAL, promote on its death.

:class:`StandbyRouter` is the second half of the failover story the
fenced :class:`~repro.cluster.journal.RouterWal` enables.  It never
serves while the primary lives — it *follows*: a
:class:`~repro.cluster.journal.WalTail` replays every synced (hence
ackable) record into the same shadow state cold recovery would build,
and the standby's cursor file tells the primary's prune to defer
segments the tail has not finished.  Promotion is therefore a bounded
amount of work no matter how long the pair has been running: re-read
the sealed tail (at most one poll interval of records), write the
fence, restore the replicas, bind the port.

Failure detection is two independent signals, both of which must agree
before the standby moves:

1. **Lease staleness** — the primary heartbeats ``lease.json`` every
   ``lease_interval`` seconds; a lease not renewed for
   ``lease_timeout`` seconds is presumed abandoned.  A *released*
   lease (``renewed == 0``, written by a graceful drain) skips the
   wait entirely.
2. **Health probe** — before trusting staleness, the standby dials the
   endpoint the lease advertises.  A primary that merely missed
   heartbeats (GC pause, disk stall) but still accepts connections is
   left alone; only connect failure confirms death.

Promotion order is the split-brain contract, and it must not be
reordered:

1. Write ``lease.json`` at a strictly higher epoch.  From this
   instant the old primary's next fence check (it runs *before* the
   ack-gating fsync, and inside every lease heartbeat) raises
   :class:`~repro.errors.FencedWriterError` — it can never ack
   another event.
2. Final tail poll.  Everything the old primary ever acked was
   fsync'd before the ack left, so it is visible to this read; the
   lease write in step 1 guarantees nothing *new* gets acked after
   it.
3. Write ``fence.json`` with byte-exact cuts.  Any bytes a fenced
   writer manages to append past the cut are unacked by construction
   (step 1 ran first) and every future reader discards them.

Then the standby becomes an ordinary :class:`ClusterRouter` — via the
promotion fast path (``wal=RouterWal.resume_at(...)``,
``recovery=tail.recovery()``), skipping the cold ``load()`` — restores
the replica tier, binds the service port, and resumes acking with the
sequence numbers exactly where the primary's last ack left them.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import time
from pathlib import Path
from typing import Any

from repro.cluster.journal import (
    _FENCE_NAME,
    _LEASE_NAME,
    RouterWal,
    WalTail,
    _atomic_write_json,
    _read_json,
)
from repro.cluster.router import ClusterRouter
from repro.errors import CapacityError
from repro.obs.registry import LATENCY_MS_BOUNDS, get_registry
from repro.testing.faults import fault_point

__all__ = ["StandbyRouter"]


class StandbyRouter:
    """Follow a primary router's WAL; take over when it dies.

    Parameters
    ----------
    capacity:
        Global universe size ``m`` — must match the primary's.
    journal_dir:
        The primary's WAL directory (shared storage in a real
        deployment; the same local path in tests).
    supervisor:
        Replica lifecycle manager for the *promoted* tier (duck-typed
        like the router's).  A supervisor on the primary's workdir
        inherits its orphaned replicas by pid file.  Mutually
        exclusive with ``endpoints``.
    endpoints:
        Static replica endpoints to adopt at promotion instead of a
        supervisor (the replicas must survive the primary).
    reader_id:
        Cursor-file identity; two standbys need distinct ids.
    lease_timeout:
        Seconds without a lease renewal before the primary is
        presumed dead (keep several multiples of the primary's
        ``lease_interval``).
    poll_interval:
        Seconds between tail polls — the replication-lag bound while
        the primary lives, and the detection-latency floor once it
        stops.
    probe_timeout:
        Seconds a confirming health probe waits for a connection.
    **router_kwargs:
        Forwarded verbatim to the promoted :class:`ClusterRouter`
        (``host``/``port``/``strict``/``snapshot_every``/...).
    """

    def __init__(
        self,
        capacity: int,
        journal_dir,
        *,
        supervisor=None,
        endpoints=None,
        reader_id: str = "standby",
        lease_timeout: float = 3.0,
        poll_interval: float = 0.1,
        probe_timeout: float = 0.5,
        wal_sync: bool = True,
        **router_kwargs,
    ) -> None:
        if supervisor is not None and endpoints is not None:
            raise CapacityError(
                "pass a supervisor or static endpoints, not both"
            )
        if supervisor is None and endpoints is None:
            raise CapacityError(
                "StandbyRouter needs a supervisor or endpoints to "
                "promote onto"
            )
        if lease_timeout <= 0:
            raise CapacityError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        if poll_interval <= 0:
            raise CapacityError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        self._capacity = capacity
        self._dir = Path(journal_dir)
        self._supervisor = supervisor
        self._endpoints = (
            None if endpoints is None else [tuple(e) for e in endpoints]
        )
        self._reader_id = str(reader_id)
        self._lease_timeout = float(lease_timeout)
        self._poll_interval = float(poll_interval)
        self._probe_timeout = float(probe_timeout)
        self._wal_sync = bool(wal_sync)
        self._router_kwargs = dict(router_kwargs)
        self._tail: WalTail | None = None
        self._watch_task: asyncio.Task | None = None
        self._promote_lock = asyncio.Lock()
        self._promoted = asyncio.Event()
        self._stopped = False
        self.router: ClusterRouter | None = None
        #: why the watcher decided to promote (None until it did)
        self.promote_reason: str | None = None
        #: wall-clock seconds the last promotion took (None until then)
        self.promote_seconds: float | None = None
        # Standby instruments live on the process-default registry
        # (the standby predates its router, which owns its own).
        obs = get_registry()
        self._obs = obs
        self._obs_lag = obs.gauge("standby.replay.lag")
        self._obs_promote_ms = obs.histogram(
            "standby.promote_ms", LATENCY_MS_BOUNDS
        )

    # -- following ------------------------------------------------------

    async def start(self) -> "StandbyRouter":
        """Open the tail and start the watch loop (returns at once)."""
        self._dir.mkdir(parents=True, exist_ok=True)
        self._tail = WalTail(self._dir, reader_id=self._reader_id)
        await asyncio.to_thread(self._tail.poll)
        self._watch_task = asyncio.create_task(self._watch())
        return self

    async def _watch(self) -> None:
        """Poll the tail; promote when the primary is confirmed dead."""
        while True:
            await asyncio.sleep(self._poll_interval)
            tail = self._tail
            behind = tail.last_seq
            await asyncio.to_thread(tail.poll)
            if self._obs.enabled:
                # Replay lag at poll time: how many acked batches the
                # shadow state was behind when this poll caught it up.
                self._obs_lag.set(max(0, tail.last_seq - behind))
                self._obs.gauge("standby.replay.seq").set(tail.last_seq)
            reason = await self._primary_dead()
            if reason is None:
                continue
            self.promote_reason = reason
            await self.promote()
            return

    async def _primary_dead(self) -> str | None:
        """The two-signal death verdict (None = leave the primary be)."""
        lease = _read_json(self._dir / _LEASE_NAME)
        if lease is None:
            # No writer ever claimed this directory; nothing to
            # take over from (and nothing acked that we could lose).
            return None
        try:
            renewed = float(lease.get("renewed", 0.0))
        except (TypeError, ValueError):
            renewed = 0.0
        if renewed == 0.0:
            return "lease released (graceful primary shutdown)"
        age = time.time() - renewed
        if age <= self._lease_timeout:
            return None
        if await self._probe(lease.get("endpoint")):
            return None  # stale heartbeat but alive: not ours to take
        return (
            f"lease stale ({age:.1f}s > {self._lease_timeout:g}s) and "
            f"endpoint probe failed"
        )

    async def _probe(self, endpoint) -> bool:
        """True iff something still accepts connections at ``endpoint``."""
        try:
            host, port = endpoint
            port = int(port)
        except (TypeError, ValueError):
            return False  # lease never learned its port: trust staleness
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(str(host), port),
                self._probe_timeout,
            )
        except (OSError, asyncio.TimeoutError):
            return False
        writer.close()
        with contextlib.suppress(OSError, ConnectionError):
            await writer.wait_closed()
        return True

    # -- promotion ------------------------------------------------------

    async def promote(self) -> ClusterRouter:
        """Fence the old primary and serve in its place.

        Safe to call directly (operator-forced failover) or from the
        watch loop; concurrent calls collapse into one promotion.
        See the module docstring for why the three-step order is
        load-bearing.
        """
        async with self._promote_lock:
            if self.router is not None:
                return self.router
            if self._stopped:
                raise RuntimeError("standby is stopped")
            watcher = self._watch_task
            if watcher is not None and watcher is not asyncio.current_task():
                # Operator-forced promotion: the watch loop must not
                # poll the (not thread-safe) tail under our feet.
                watcher.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await watcher
                self._watch_task = None
            await fault_point("standby.promote")
            t0 = time.monotonic()
            tail = self._tail
            owner = f"standby-{self._reader_id}-{os.getpid()}"
            # Step 1: the lease write that fences the old epoch.
            epoch = self._claim_epoch(owner)
            # Step 2: the sealed tail — complete, because nothing can
            # be acked (= synced) under the old epoch anymore.
            await asyncio.to_thread(tail.poll)
            tail.refresh_snapshots()
            # Step 3: the byte-exact cut every future reader obeys.
            _atomic_write_json(
                self._dir / _FENCE_NAME,
                {
                    "epoch": epoch,
                    "cuts": {
                        str(index): offset
                        for index, offset in tail.cuts().items()
                    },
                },
            )
            tail.remove_cursor()
            wal = RouterWal.resume_at(
                self._dir,
                epoch=epoch,
                next_index=tail.next_index,
                generation=tail.generation,
                n_parts=tail.n_parts,
                covered_seq=tail.covered_seq,
                last_seq=tail.last_seq,
                snapshot_seqs=dict(tail.snapshot_seqs),
                segments=tail.segment_metas(),
                owner=owner,
                sync=self._wal_sync,
            )
            sup = self._supervisor
            if sup is not None:
                try:
                    sup.endpoints
                except RuntimeError:
                    await sup.start()
            router = ClusterRouter(
                self._capacity,
                self._endpoints,
                supervisor=sup,
                wal=wal,
                recovery=tail.recovery(),
                **self._router_kwargs,
            )
            await router.start()
            self.router = router
            self.promote_seconds = time.monotonic() - t0
            if self._obs.enabled:
                ms = self.promote_seconds * 1e3
                self._obs_promote_ms.observe(ms)
                self._obs.spans.record(
                    "standby.promoted",
                    ms=round(ms, 3),
                    epoch=epoch,
                    seq=tail.last_seq,
                    reason=self.promote_reason,
                )
            self._promoted.set()
            return router

    def _claim_epoch(self, owner: str) -> int:
        """Write ``lease.json`` at a strictly higher epoch; return it."""
        lease = _read_json(self._dir / _LEASE_NAME) or {}
        fence = _read_json(self._dir / _FENCE_NAME) or {}
        epoch = (
            max(int(lease.get("epoch", 0)), int(fence.get("epoch", 0)))
            + 1
        )
        _atomic_write_json(
            self._dir / _LEASE_NAME,
            {
                "epoch": epoch,
                "owner": owner,
                "endpoint": None,
                "renewed": time.time(),
            },
        )
        return epoch

    # -- introspection ---------------------------------------------------

    @property
    def promoted(self) -> bool:
        return self._promoted.is_set()

    async def wait_promoted(self, timeout: float | None = None) -> None:
        """Block until this standby is serving (or ``timeout`` runs out)."""
        await asyncio.wait_for(self._promoted.wait(), timeout)

    def describe(self) -> dict[str, Any]:
        """Replication/failover status for health reporting."""
        tail = self._tail
        lease = _read_json(self._dir / _LEASE_NAME) or {}
        out: dict[str, Any] = {
            "role": "standby",
            "promoted": self.promoted,
            "reader": self._reader_id,
            "lease_epoch": int(lease.get("epoch", 0)),
            "lease_owner": lease.get("owner"),
        }
        if tail is not None:
            out["tail"] = tail.describe()
        if self.promote_reason is not None:
            out["promote_reason"] = self.promote_reason
        if self.promote_seconds is not None:
            out["promote_seconds"] = round(self.promote_seconds, 6)
        return out

    # -- lifecycle -------------------------------------------------------

    async def stop(self) -> None:
        """Stop following (or, once promoted, stop serving)."""
        if self._stopped:
            return
        self._stopped = True
        if self._watch_task is not None:
            self._watch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watch_task
            self._watch_task = None
        if self.router is not None:
            await self.router.stop()
        elif self._tail is not None:
            self._tail.remove_cursor()

    async def __aenter__(self) -> "StandbyRouter":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()
