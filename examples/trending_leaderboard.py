"""Trending content on a social platform: the paper's motivating workload.

A stream of like/unlike events over a heavy-tailed (Zipf) catalogue of
videos.  A :class:`TopKTracker` maintains the trending board with O(1)
updates and fires notifications when the board's membership changes —
mid-stream we inject a "viral" video and watch it displace the incumbents.

Run with::

    python examples/trending_leaderboard.py
"""

import numpy as np

from repro.apps.leaderboard import Leaderboard
from repro.apps.topk_tracker import TopKTracker
from repro.streams.distributions import ZipfSampler

CATALOGUE = 5_000
EVENTS_PER_PHASE = 30_000
BOARD_SIZE = 5


def video_name(index: int) -> str:
    return f"video-{index:04d}"


def main() -> None:
    rng = np.random.default_rng(2024)
    sampler = ZipfSampler(CATALOGUE, exponent=1.4)
    tracker = TopKTracker(BOARD_SIZE)
    board = Leaderboard()

    changes = []
    tracker.on_change(changes.append)

    def feed(ids: np.ndarray) -> None:
        for index in ids.tolist():
            name = video_name(index)
            if rng.random() < 0.05:
                tracker.unlike(name)
                board.dislike(name)
            else:
                tracker.like(name)
                board.like(name)

    print(f"Phase 1: organic Zipf traffic over {CATALOGUE} videos")
    feed(sampler.sample(rng, EVENTS_PER_PHASE))
    print(board.render(BOARD_SIZE))
    print(f"(board membership changed {len(changes)} times so far)\n")

    print("Phase 2: video-4242 goes viral (20% of all traffic)")
    organic = sampler.sample(rng, EVENTS_PER_PHASE)
    viral_mask = rng.random(EVENTS_PER_PHASE) < 0.20
    organic[viral_mask] = 4242
    feed(organic)
    print(board.render(BOARD_SIZE))

    viral = video_name(4242)
    entered_with_viral = [
        change for change in changes if viral in change.entered
    ]
    assert entered_with_viral, "the viral video must have entered the board"
    print(f"\n'{viral}' entered the trending board "
          f"(score {board.score(viral)}, "
          f"better than {board.score_percentile(viral):.1%} of catalogue)")
    print(f"median catalogue score: {board.median_score()}")


if __name__ == "__main__":
    main()
