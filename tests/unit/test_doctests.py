"""Keep the documentation examples executable."""

import doctest

import pytest

import repro.api.facade
import repro.api.plan
import repro.apps.click_analytics
import repro.apps.leaderboard
import repro.apps.median_service
import repro.apps.topk_tracker
import repro.approx.spacesaving
import repro.bench.reporting
import repro.core.dynamic
import repro.core.profile
import repro.core.queries
import repro.engine.service
import repro.engine.sharding

MODULES = [
    repro.api.facade,
    repro.api.plan,
    repro.apps.click_analytics,
    repro.apps.leaderboard,
    repro.apps.median_service,
    repro.apps.topk_tracker,
    repro.approx.spacesaving,
    repro.bench.reporting,
    repro.core.dynamic,
    repro.core.profile,
    repro.core.queries,
    repro.engine.service,
    repro.engine.sharding,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
@pytest.mark.filterwarnings(
    "ignore:ProfileService is deprecated:DeprecationWarning"
)
def test_module_doctests(module):
    # The service shim's examples still run (legacy callers read them),
    # hence the deprecation filter above.
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0  # the module must actually carry examples
