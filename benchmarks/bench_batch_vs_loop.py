"""Batch ingestion vs the per-event loop (acceptance: >= 2x at 10k).

Three regimes at batch size 10k:

- a paper stream (mixed skew, adds and removes) through ``apply``
  vs the equivalent per-event ``add``/``remove`` loop;
- the add-only column of the same stream through ``add_many`` vs a
  per-event ``add`` loop (the like-for-like pair the acceptance
  criterion names);
- the single-hot adversarial stream, where coalescing collapses the
  whole batch into one climb (the fast path's best case).

The timed region excludes stream construction (session-cached lists)
and Counter-ing is *inside* the timed batch call — the comparison is
end-to-end ingestion cost either way.
"""

from repro.core.profile import SProfile

BATCH = 10_000
M = 2_000


def _loop_add(profile, id_list):
    add = profile.add
    for x in id_list:
        add(x)


def _loop_mixed(profile, id_list, add_list):
    add = profile.add
    remove = profile.remove
    for x, is_add in zip(id_list, add_list):
        if is_add:
            add(x)
        else:
            remove(x)


def _setup_with(args_builder):
    def setup():
        return args_builder(), {}

    return setup


def test_per_event_add_loop(benchmark, stream_lists):
    benchmark.group = "batch vs loop: adds only"
    ids, _ = stream_lists("stream1", BATCH, M)

    benchmark.pedantic(
        _loop_add,
        setup=_setup_with(lambda: (SProfile(M), ids)),
        rounds=5,
        iterations=1,
    )


def test_add_many_batch(benchmark, stream_lists):
    benchmark.group = "batch vs loop: adds only"
    ids, _ = stream_lists("stream1", BATCH, M)

    benchmark.pedantic(
        lambda p, xs: p.add_many(xs),
        setup=_setup_with(lambda: (SProfile(M), ids)),
        rounds=5,
        iterations=1,
    )


def test_per_event_mixed_loop(benchmark, stream_lists):
    benchmark.group = "batch vs loop: mixed adds/removes"
    ids, adds = stream_lists("stream1", BATCH, M)

    benchmark.pedantic(
        _loop_mixed,
        setup=_setup_with(lambda: (SProfile(M), ids, adds)),
        rounds=5,
        iterations=1,
    )


def test_apply_batch(benchmark, stream_lists):
    benchmark.group = "batch vs loop: mixed adds/removes"
    ids, adds = stream_lists("stream1", BATCH, M)
    deltas = [(x, 1 if a else -1) for x, a in zip(ids, adds)]

    benchmark.pedantic(
        lambda p, d: p.apply(d),
        setup=_setup_with(lambda: (SProfile(M), deltas)),
        rounds=5,
        iterations=1,
    )


def test_single_hot_loop(benchmark, stream_lists):
    benchmark.group = "batch vs loop: single hot key"
    ids, _ = stream_lists("single-hot", BATCH, M)

    benchmark.pedantic(
        _loop_add,
        setup=_setup_with(lambda: (SProfile(M), ids)),
        rounds=5,
        iterations=1,
    )


def test_single_hot_add_many(benchmark, stream_lists):
    """Coalescing turns 10k repeats into one O(#blocks) climb."""
    benchmark.group = "batch vs loop: single hot key"
    ids, _ = stream_lists("single-hot", BATCH, M)

    benchmark.pedantic(
        lambda p, xs: p.add_many(xs),
        setup=_setup_with(lambda: (SProfile(M), ids)),
        rounds=5,
        iterations=1,
    )


def test_equivalence_of_timed_paths(stream_lists):
    """The benchmarked pairs produce identical profiles (not timed)."""
    ids, adds = stream_lists("stream1", BATCH, M)

    loop = SProfile(M)
    _loop_mixed(loop, ids, adds)
    batch = SProfile(M)
    batch.apply([(x, 1 if a else -1) for x, a in zip(ids, adds)])
    assert batch.frequencies() == loop.frequencies()

    loop_add = SProfile(M)
    _loop_add(loop_add, ids)
    batch_add = SProfile(M)
    batch_add.add_many(ids)
    assert batch_add.frequencies() == loop_add.frequencies()
