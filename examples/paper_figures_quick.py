"""One-command mini-reproduction of every figure in the paper.

Runs the figure harness at the "tiny" smoke scale (a few seconds) and
prints the paper-style tables.  For the numbers recorded in
EXPERIMENTS.md, run the real thing::

    python -m repro bench --all --scale small

Run with::

    python examples/paper_figures_quick.py
"""

from repro.bench.figures import FIGURES, run_figure
from repro.bench.reporting import format_figure


def main() -> None:
    print("Mini-reproduction at smoke scale — shapes, not conclusions.\n")
    for figure in FIGURES:
        result = run_figure(figure, scale="tiny", repeats=1)
        print(format_figure(result))


if __name__ == "__main__":
    main()
