"""Unit tests for bulk construction, growth, copy, clear and the
batch ingestion paths (add_many / remove_many / apply)."""

import pytest

from repro.core.profile import SProfile
from repro.core.validation import audit_profile
from repro.errors import CapacityError, FrequencyUnderflowError


class TestFromFrequencies:
    def test_simple(self):
        profile = SProfile.from_frequencies([3, 0, 1, 0])
        assert profile.frequencies() == [3, 0, 1, 0]
        assert profile.total == 4
        assert profile.mode().example == 0
        audit_profile(profile)

    def test_with_negatives(self):
        profile = SProfile.from_frequencies([-2, 5, 0])
        assert profile.min_frequency() == -2
        assert profile.max_frequency() == 5
        audit_profile(profile)

    def test_strict_rejects_negatives(self):
        with pytest.raises(FrequencyUnderflowError):
            SProfile.from_frequencies([1, -1], allow_negative=False)

    def test_empty(self):
        profile = SProfile.from_frequencies([])
        assert profile.capacity == 0

    def test_all_equal(self):
        profile = SProfile.from_frequencies([7, 7, 7])
        assert profile.block_count == 1
        assert profile.histogram() == [(7, 3)]

    def test_updates_after_bulk_build(self):
        profile = SProfile.from_frequencies([3, 0, 1, 0])
        profile.add(1)
        profile.remove(0)
        assert profile.frequencies() == [2, 1, 1, 0]
        assert profile.total == 4
        audit_profile(profile)

    def test_freq_index_enabled(self):
        profile = SProfile.from_frequencies([5, 5, 2], track_freq_index=True)
        assert profile.support(5) == 2
        profile.add(2)
        audit_profile(profile)

    def test_event_counters_start_clean(self):
        profile = SProfile.from_frequencies([1, 2, 3])
        assert profile.n_events == 0
        assert profile.total == 6


class TestGrow:
    def test_grow_from_empty(self):
        profile = SProfile(0)
        profile.grow(4)
        assert profile.capacity == 4
        assert profile.frequencies() == [0, 0, 0, 0]
        audit_profile(profile)

    def test_grow_all_zero(self):
        profile = SProfile(2)
        profile.grow(3)
        assert profile.capacity == 5
        assert profile.block_count == 1
        audit_profile(profile)

    def test_grow_with_positive_frequencies(self):
        profile = SProfile(3)
        profile.add(0)
        profile.add(0)
        profile.add(1)
        profile.grow(2)
        assert profile.capacity == 5
        assert profile.frequencies() == [2, 1, 0, 0, 0]
        audit_profile(profile)

    def test_grow_with_negative_frequencies(self):
        profile = SProfile(3)
        profile.remove(0)
        profile.add(1)
        profile.grow(2)
        assert profile.frequencies() == [-1, 1, 0, 0, 0]
        assert profile.min_frequency() == -1
        # New zeros must sit between the negatives and the positives.
        assert profile.frequency_at_rank(0) == -1
        assert profile.frequency_at_rank(1) == 0
        audit_profile(profile)

    def test_grow_when_no_zero_block_exists(self):
        profile = SProfile(2)
        profile.add(0)
        profile.add(1)  # all objects at 1; no zero block
        profile.grow(2)
        assert sorted(profile.frequencies()) == [0, 0, 1, 1]
        audit_profile(profile)

    def test_grow_when_all_negative(self):
        profile = SProfile(2)
        profile.remove(0)
        profile.remove(1)
        profile.grow(1)
        assert sorted(profile.frequencies()) == [-1, -1, 0]
        audit_profile(profile)

    def test_grow_preserves_totals_and_events(self):
        profile = SProfile(3)
        profile.add(0)
        profile.remove(1)
        events_before = profile.n_events
        total_before = profile.total
        profile.grow(5)
        assert profile.n_events == events_before
        assert profile.total == total_before

    def test_grow_zero_rejected(self):
        profile = SProfile(3)
        with pytest.raises(CapacityError):
            profile.grow(0)
        with pytest.raises(CapacityError):
            profile.grow(-2)

    def test_updates_work_after_grow(self):
        profile = SProfile(2)
        profile.add(0)
        profile.grow(2)
        profile.add(3)
        profile.remove(1)
        assert profile.frequencies() == [1, -1, 0, 1]
        audit_profile(profile)


class TestCopyAndClear:
    def test_copy_is_independent(self, small_profile):
        clone = small_profile.copy()
        clone.add(0)
        assert small_profile.frequency(0) == 0
        assert clone.frequency(0) == 1
        audit_profile(clone)
        audit_profile(small_profile)

    def test_copy_preserves_everything(self, small_profile):
        clone = small_profile.copy()
        assert clone.frequencies() == small_profile.frequencies()
        assert clone.total == small_profile.total
        assert clone.n_adds == small_profile.n_adds
        assert clone.n_removes == small_profile.n_removes
        assert clone.allow_negative == small_profile.allow_negative

    def test_clear(self, small_profile):
        small_profile.clear()
        assert small_profile.frequencies() == [0] * 8
        assert small_profile.total == 0
        assert small_profile.n_events == 0
        audit_profile(small_profile)

    def test_clear_keeps_settings(self):
        profile = SProfile(4, allow_negative=False, track_freq_index=True)
        profile.add(1)
        profile.clear()
        assert not profile.allow_negative
        assert profile.blocks.tracks_freq_index
        with pytest.raises(FrequencyUnderflowError):
            profile.remove(0)


# Capacity 4 forces the rebuild path (any nonempty batch names >= m/2
# keys is easy to hit), capacity 64 forces the climb path for the same
# batches; the two strategies must be observably identical.
BATCH_CAPACITIES = (4, 64)


class TestAddMany:
    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_matches_per_event_loop(self, capacity):
        xs = [1, 1, 3, 1, 2, 3, 1]
        batch = SProfile(capacity)
        assert batch.add_many(xs) == 7
        loop = SProfile(capacity)
        for x in xs:
            loop.add(x)
        assert batch.frequencies() == loop.frequencies()
        assert batch.total == loop.total
        assert batch.n_adds == 7
        audit_profile(batch)

    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_accepts_numpy_arrays(self, capacity):
        np = pytest.importorskip("numpy")
        profile = SProfile(capacity)
        profile.add_many(np.asarray([0, 0, 2], dtype=np.int64))
        assert profile.frequency(0) == 2
        assert profile.frequency(2) == 1
        audit_profile(profile)

    def test_empty_batch(self):
        profile = SProfile(4)
        assert profile.add_many([]) == 0
        assert profile.n_events == 0

    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_bad_id_rejected(self, capacity):
        profile = SProfile(capacity)
        with pytest.raises(CapacityError):
            profile.add_many([0, capacity])
        with pytest.raises(CapacityError):
            profile.add_many([-1])

    def test_freq_index_stays_consistent(self):
        profile = SProfile(8, track_freq_index=True)
        profile.add_many([0] * 5 + [1] * 3 + [2] * 3 + [3])
        assert profile.support(3) == 2
        assert profile.support(5) == 1
        audit_profile(profile)

    def test_hot_key_climb(self):
        """One key hit many times: the coalesced climb, not unit steps."""
        profile = SProfile(100)
        profile.add_many([7] * 10_000)
        assert profile.frequency(7) == 10_000
        assert profile.max_frequency() == 10_000
        assert profile.block_count == 2
        audit_profile(profile)


class TestRemoveMany:
    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_matches_per_event_loop(self, capacity):
        batch = SProfile(capacity)
        batch.add_many([0, 0, 0, 1, 1, 2])
        loop = batch.copy()
        rs = [0, 0, 1, 2, 3]
        assert batch.remove_many(rs) == 5
        for x in rs:
            loop.remove(x)
        assert batch.frequencies() == loop.frequencies()
        assert batch.n_removes == 5
        audit_profile(batch)

    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_strict_underflow_key_untouched(self, capacity):
        profile = SProfile(capacity, allow_negative=False)
        profile.add_many([0, 0, 1])
        with pytest.raises(FrequencyUnderflowError):
            profile.remove_many([0, 0, 0])
        assert profile.frequency(0) == 2
        audit_profile(profile)

    def test_negative_mode_goes_below_zero(self):
        profile = SProfile(4)
        profile.remove_many([0, 0, 3])
        assert profile.frequencies() == [-2, 0, 0, -1]
        assert profile.min_frequency() == -2
        audit_profile(profile)

    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_strict_reject_is_all_or_nothing(self, capacity):
        """One underflowing key poisons the batch; legal keys in the
        same batch must stay untouched too (callers may re-submit)."""
        profile = SProfile(capacity, allow_negative=False)
        profile.add_many([0, 0, 1, 2])
        before = profile.frequencies()
        with pytest.raises(FrequencyUnderflowError):
            profile.remove_many([0, 1, 2, 2, 2])
        assert profile.frequencies() == before
        with pytest.raises(FrequencyUnderflowError):
            profile.apply([(0, -1), (2, -3)])
        assert profile.frequencies() == before
        audit_profile(profile)


class TestApply:
    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_pairs_and_mapping_agree(self, capacity):
        pairs = [(0, +3), (1, -2), (0, +1), (2, +5)]
        from_pairs = SProfile(capacity)
        from_pairs.apply(pairs)
        from_mapping = SProfile(capacity)
        from_mapping.apply({0: 4, 1: -2, 2: 5})
        assert from_pairs.frequencies() == from_mapping.frequencies()
        audit_profile(from_pairs)

    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_cancellation_counts_net_events(self, capacity):
        profile = SProfile(capacity)
        n = profile.apply([(0, +5), (0, -5), (1, +2)])
        assert n == 2
        assert profile.n_events == 2
        assert profile.frequencies()[:2] == [0, 2]

    def test_strict_checks_net_not_order(self):
        profile = SProfile(4, allow_negative=False)
        # Sequential (0,-1) first would underflow; the net (+1) is legal.
        assert profile.apply([(0, -1), (0, +2)]) == 1
        assert profile.frequency(0) == 1
        with pytest.raises(FrequencyUnderflowError):
            profile.apply([(0, -2)])
        assert profile.frequency(0) == 1

    @pytest.mark.parametrize("capacity", BATCH_CAPACITIES)
    def test_bad_id_rejected_even_when_net_zero(self, capacity):
        profile = SProfile(capacity)
        with pytest.raises(CapacityError):
            profile.apply([(capacity, +1), (capacity, -1)])

    def test_add_count_uses_climb(self):
        profile = SProfile(10)
        profile.add_count(3, 1000)
        profile.remove_count(3, 999)
        assert profile.frequency(3) == 1
        assert profile.n_events == 1999
        audit_profile(profile)


class TestBaselineApplyParity:
    def test_baseline_apply_reject_is_all_or_nothing(self):
        """ProfilerBase.apply must fail atomically like SProfile.apply,
        or equivalence harnesses diverge on a failing batch."""
        from repro.baselines.bucket import BucketProfiler

        sprofile = SProfile(4, allow_negative=False)
        bucket = BucketProfiler(4, allow_negative=False)
        for p in (sprofile, bucket):
            p.apply([(0, +2), (1, +1)])
        bad = [(0, +2), (1, -3), (9, 0)]
        for p in (sprofile, bucket):
            with pytest.raises((FrequencyUnderflowError, CapacityError)):
                p.apply(bad)
        assert bucket.frequencies() == sprofile.frequencies() == [2, 1, 0, 0]

    def test_baseline_apply_matches_sprofile_on_success(self):
        from repro.baselines.bucket import BucketProfiler

        sprofile = SProfile(6)
        bucket = BucketProfiler(6)
        deltas = [(0, +3), (5, -2), (0, -1), (2, +4)]
        assert sprofile.apply(deltas) == bucket.apply(deltas)
        assert bucket.frequencies() == sprofile.frequencies()

    def test_baseline_remove_many_reject_is_all_or_nothing(self):
        from repro.baselines.bucket import BucketProfiler

        bucket = BucketProfiler(4, allow_negative=False)
        bucket.add_many([0])
        with pytest.raises(FrequencyUnderflowError):
            bucket.remove_many([0, 0])
        assert bucket.frequencies() == [1, 0, 0, 0]
        assert bucket.n_removes == 0
        with pytest.raises(CapacityError):
            bucket.add_many([0, 9])
        assert bucket.frequencies() == [1, 0, 0, 0]
