"""repro — S-Profile: O(1) profiling of dynamic arrays with finite values.

Reproduction of Yang, Yu, Deng, Liu, *Optimal Algorithm for Profiling
Dynamic Arrays with Finite Values* (EDBT 2019; arXiv:1812.05306).

Quick start::

    from repro import SProfile

    profile = SProfile(capacity=1_000_000)
    profile.add(42)
    profile.remove(7)
    profile.mode()              # most frequent object, O(1)
    profile.median_frequency()  # O(1)
    profile.top_k(10)           # O(k)

Package map:

- :mod:`repro.core` — the paper's algorithm and its query surface.
- :mod:`repro.engine` — scale-out layer: batched ingestion, sharding,
  the :class:`ProfileService` façade with checkpoint hooks.
- :mod:`repro.baselines` — heap / balanced-tree / bucket comparators.
- :mod:`repro.streams` — log-stream generators (paper section 3 setup),
  sliding windows, persistence.
- :mod:`repro.apps` — applications from section 2.3 (graph shaving,
  top-k tracking) and beyond.
- :mod:`repro.bench` — harness regenerating every figure of the paper.
"""

from repro.core.dynamic import DynamicProfiler
from repro.core.profile import SProfile
from repro.core.queries import ModeResult, TopEntry
from repro.core.snapshot import ProfileSnapshot
from repro.engine.service import ProfileService
from repro.engine.sharding import ShardedProfiler
from repro.errors import (
    CapacityError,
    CheckpointError,
    EmptyProfileError,
    FrequencyUnderflowError,
    InvariantViolationError,
    ReproError,
    StreamConfigError,
    UnknownObjectError,
    UnsupportedQueryError,
    WindowError,
)

__version__ = "1.0.0"

__all__ = [
    "CapacityError",
    "CheckpointError",
    "DynamicProfiler",
    "EmptyProfileError",
    "FrequencyUnderflowError",
    "InvariantViolationError",
    "ModeResult",
    "ProfileService",
    "ProfileSnapshot",
    "ReproError",
    "SProfile",
    "ShardedProfiler",
    "StreamConfigError",
    "TopEntry",
    "UnknownObjectError",
    "UnsupportedQueryError",
    "WindowError",
    "__version__",
]
