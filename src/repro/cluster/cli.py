"""``python -m repro.cluster`` — stand up a replicated serving tier.

One command spawns the whole tier: N ``python -m repro.serve`` replica
subprocesses (via :class:`~repro.cluster.supervisor.ReplicaSupervisor`)
plus the :class:`~repro.cluster.router.ClusterRouter` front end in this
process.  Clients speak the ordinary server protocol to the router;
replicas are an implementation detail they never see.

Examples
--------
Three replicas over a 100k universe::

    python -m repro.cluster --capacity 100000 --replicas 3

Probe a running tier (prints the router's health block as JSON)::

    python -m repro.cluster --status --port 7421

Follow a primary's WAL as a warm standby, promoting on its death::

    python -m repro.cluster --capacity 100000 --standby \
        --journal-dir /shared/wal --port 7422

The router prints one ``cluster listening on HOST:PORT`` line once
bound (``--port 0`` picks a free port; ``--port-file`` publishes it
atomically), serves until SIGINT/SIGTERM, drains, stops the replicas,
and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import logging
import os
import signal
import sys
import tempfile

from repro.cluster.journal import RouterWal
from repro.cluster.router import ClusterRouter
from repro.cluster.standby import StandbyRouter
from repro.cluster.supervisor import ReplicaSupervisor
from repro.obs.http import MetricsExporter
from repro.obs.registry import get_registry, json_sanitize
from repro.obs.structlog import configure_logging, log_event
from repro.server.cli import DEFAULT_PORT, _write_port_file
from repro.server.client import ProfileClient
from repro.server.protocol import DEFAULT_MAX_FRAME
from repro.testing.faults import FaultSchedule, arm

__all__ = ["build_parser", "main"]

_log = logging.getLogger("repro.cluster")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Serve a repro profiler over N replica processes "
        "behind one routing endpoint.",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="global universe size m (required unless --status)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=3,
        help="replica process count / key-space partitions (default: 3)",
    )
    parser.add_argument(
        "--replica-backend",
        default="flat",
        help="facade backend each replica opens (flat or exact keep "
        "cluster checkpoints assemblable; default: flat)",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for replica port/pid/log files (default: a "
        "fresh temporary directory)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"router TCP port; 0 picks a free one (default: "
        f"{DEFAULT_PORT})",
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the router's bound port here once listening "
        "(atomic: tmp + rename)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        help="journal depth (wire batches) that triggers a replica "
        "snapshot + journal truncation (default: 64)",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=512,
        help="router micro-batch flush threshold (default: 512)",
    )
    parser.add_argument(
        "--linger-ms",
        type=float,
        default=1.0,
        help="router micro-batch linger (default: 1.0)",
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=4096,
        help="router ingest queue bound, in wire batches",
    )
    parser.add_argument(
        "--max-frame",
        type=int,
        default=DEFAULT_MAX_FRAME,
        help="per-frame byte cap, both directions",
    )
    parser.add_argument(
        "--codec",
        choices=("binary", "json"),
        default="binary",
        help="client-facing codec offer; replicas negotiate "
        "independently (default: binary)",
    )
    parser.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="durable router WAL directory: acked batches are fsync'd "
        "here before fan-out, and a cold router on the same directory "
        "recovers every acked event after SIGKILL (default: in-memory "
        "journal only)",
    )
    parser.add_argument(
        "--no-wal-sync",
        action="store_true",
        help="keep the WAL file layout but skip the per-flush fsync "
        "(benchmarking only; forfeits crash durability)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="all-or-nothing wire batches across partitions via "
        "two-phase commit (replicas stay non-strict; atomicity is the "
        "router's)",
    )
    parser.add_argument(
        "--replica-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-replica send/ack deadline; a partition that blows it "
        "trips a circuit breaker and fails fast while the rest of the "
        "tier keeps serving (default: block and recover in place)",
    )
    parser.add_argument(
        "--degraded-reads",
        action="store_true",
        help="with a breaker open, answer aggregate queries from the "
        "live partitions only, marked partial=true",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="arm a deterministic fault schedule, e.g. "
        "'router.fanout:3:delay:0.05,supervisor.spawn:1:error' "
        "(point:occurrence:action[:arg], comma-separated; also read "
        "from $REPRO_FAULTS) — chaos testing only",
    )
    parser.add_argument(
        "--standby",
        action="store_true",
        help="follow the --journal-dir WAL as a warm standby instead "
        "of serving: tail the primary's log, and promote (fence the "
        "old primary, finish replay, bind --port) when its lease goes "
        "stale and its endpoint stops answering",
    )
    parser.add_argument(
        "--lease-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="primary WAL lease heartbeat period (default: 1.0)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=3.0,
        metavar="SECONDS",
        help="standby: seconds without a lease renewal before the "
        "primary is presumed dead (default: 3.0)",
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="instead of serving: connect to --host/--port, print the "
        "router's health block as JSON (including per-replica journal "
        "depth and lag), exit",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus text exposition of the router's "
        "metrics registry on this port (0 picks a free one)",
    )
    parser.add_argument(
        "--metrics-port-file",
        metavar="PATH",
        default=None,
        help="write the bound metrics port here (atomic tmp + rename)",
    )
    parser.add_argument(
        "--log-format",
        choices=("plain", "json"),
        default="plain",
        help="status-line format: plain (the legacy print lines) or "
        "one JSON object per line (default: plain)",
    )
    return parser


def _status(args: argparse.Namespace) -> int:
    client = ProfileClient(args.host, args.port)
    try:
        info = client.health()
    finally:
        client.close()
    # Health blocks can carry numpy scalars (engine gauges) — sanitize
    # to native ints so the JSON dump never trips, and keep key order
    # stable for scripted diffing.
    json.dump(json_sanitize(info), sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _boot_replicas(args: argparse.Namespace) -> int:
    """The replica count to boot with: the WAL's committed layout wins.

    A rescale that committed before the last shutdown is durable in
    ``layout.json``; booting at the stale ``--replicas`` count and
    letting the router reconfigure would spawn the tier twice.
    """
    replicas = args.replicas
    if args.journal_dir:
        layout = RouterWal.peek_layout(args.journal_dir)
        if layout is not None and layout["n_parts"] != replicas:
            log_event(
                _log,
                f"WAL layout overrides --replicas={replicas}: "
                f"generation {layout['generation']} committed "
                f"{layout['n_parts']} partitions",
                event="layout_override",
                requested=replicas,
                committed=layout["n_parts"],
                generation=layout["generation"],
            )
            replicas = layout["n_parts"]
    return replicas


def _drain_report(router: ClusterRouter, supervisor) -> str:
    stats = router.stats
    cluster = router.cluster_stats
    line = (
        f"drained: {stats.wire_batches} wire batches "
        f"({stats.wire_events} events) in {stats.flushes} flushes, "
        f"{stats.rejected} rejected, "
        f"{cluster['replica_batches']} replica sub-batches, "
        f"{cluster['snapshots']} snapshots, "
        f"{cluster['recoveries']} recoveries "
        f"({supervisor.respawns} respawns)"
    )
    wal = router.wal_info
    if wal is not None:
        lease = (
            "lease released"
            if wal["epoch"]
            else "fencing disarmed"
        )
        line += (
            f"; wal sealed: {wal['segments']} segments, "
            f"last seq {wal['last_synced_seq']}, "
            f"epoch {wal['epoch']}, "
            f"generation {wal['generation']}, {lease}"
        )
    return line


async def _amain(args: argparse.Namespace, workdir: str) -> int:
    configure_logging(args.log_format)
    spec = args.faults or os.environ.get("REPRO_FAULTS")
    if spec:
        arm(FaultSchedule.from_spec(spec))
        log_event(
            _log, f"fault schedule armed: {spec}",
            event="faults_armed", spec=spec,
        )
    supervisor = ReplicaSupervisor(
        args.capacity,
        _boot_replicas(args),
        workdir=workdir,
        host=args.host,
        backend=args.replica_backend,
        codec=args.codec,
    )
    await supervisor.start()
    try:
        router = ClusterRouter(
            args.capacity,
            supervisor=supervisor,
            snapshot_every=args.snapshot_every,
            journal_dir=args.journal_dir,
            wal_sync=not args.no_wal_sync,
            lease_interval=args.lease_interval,
            strict=args.strict,
            replica_timeout=args.replica_timeout,
            degraded_reads=args.degraded_reads,
            host=args.host,
            port=args.port,
            batch_max=args.batch_max,
            linger_ms=args.linger_ms,
            queue_size=args.queue_size,
            max_frame=args.max_frame,
            binary=args.codec == "binary",
        )
        await router.start()
        log_event(
            _log,
            f"cluster listening on {router.host}:{router.port} "
            f"(capacity={args.capacity}, replicas={args.replicas}, "
            f"replica_backend={args.replica_backend}, "
            f"snapshot_every={args.snapshot_every}, "
            f"strict={args.strict}, "
            f"journal_dir={args.journal_dir or 'none'}, "
            f"workdir={workdir})",
            event="listening",
            host=router.host,
            port=router.port,
            replicas=args.replicas,
        )
        if args.port_file:
            _write_port_file(args.port_file, router.port)
        exporter = await _start_exporter(
            args, router.metrics_snapshot, role="router"
        )

        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop_requested.set)
        # A scheduled in-process crash (--faults ...:crash) or a
        # terminal cluster-unhealthy escalation also stops the router;
        # either way the process must exit, not serve a corpse.
        stop_wait = asyncio.ensure_future(stop_requested.wait())
        crash_wait = asyncio.ensure_future(router.wait_stopped())
        await asyncio.wait(
            (stop_wait, crash_wait), return_when=asyncio.FIRST_COMPLETED
        )
        for task in (stop_wait, crash_wait):
            task.cancel()
        if router.crashed:
            log_event(
                _log, "router crashed (scheduled fault)",
                event="router_crashed",
            )
            supervisor.stop()
            return 1
        log_event(_log, "draining...", event="draining")
        if exporter is not None:
            await exporter.stop()
        await router.stop()
        log_event(_log, _drain_report(router, supervisor), event="drained")
    finally:
        supervisor.stop()
    return 0


async def _start_exporter(
    args: argparse.Namespace, snapshot_fn, *, role: str
) -> MetricsExporter | None:
    """Boot the Prometheus sidecar when ``--metrics-port`` asks for it."""
    if args.metrics_port is None:
        return None
    exporter = MetricsExporter(
        snapshot_fn,
        host=args.host,
        port=args.metrics_port,
        labels={"tier": "cluster", "role": role},
    )
    await exporter.start()
    log_event(
        _log,
        f"metrics on {args.host}:{exporter.port}/metrics",
        event="metrics_listening",
        port=exporter.port,
    )
    if args.metrics_port_file:
        _write_port_file(args.metrics_port_file, exporter.port)
    return exporter


async def _amain_standby(args: argparse.Namespace, workdir: str) -> int:
    configure_logging(args.log_format)
    spec = args.faults or os.environ.get("REPRO_FAULTS")
    if spec:
        arm(FaultSchedule.from_spec(spec))
        log_event(
            _log, f"fault schedule armed: {spec}",
            event="faults_armed", spec=spec,
        )
    supervisor = ReplicaSupervisor(
        args.capacity,
        _boot_replicas(args),
        workdir=workdir,
        host=args.host,
        backend=args.replica_backend,
        codec=args.codec,
    )
    # NOT started: the replicas spawn at promotion.  Warm means the
    # WAL tail is caught up, not that a second tier burns CPU.
    standby = StandbyRouter(
        args.capacity,
        args.journal_dir,
        supervisor=supervisor,
        lease_timeout=args.lease_timeout,
        snapshot_every=args.snapshot_every,
        wal_sync=not args.no_wal_sync,
        lease_interval=args.lease_interval,
        strict=args.strict,
        replica_timeout=args.replica_timeout,
        degraded_reads=args.degraded_reads,
        host=args.host,
        port=args.port,
        batch_max=args.batch_max,
        linger_ms=args.linger_ms,
        queue_size=args.queue_size,
        max_frame=args.max_frame,
        binary=args.codec == "binary",
    )
    await standby.start()
    log_event(
        _log,
        f"standby following {args.journal_dir} "
        f"(capacity={args.capacity}, "
        f"lease_timeout={args.lease_timeout:g}s)",
        event="standby_following",
        journal_dir=str(args.journal_dir),
    )
    # Pre-promotion the standby has no router: scrape the process
    # registry (replay lag, promotion timings); the dispatch picks up
    # the router's merged view the moment promotion lands.
    exporter = await _start_exporter(
        args,
        lambda: (
            standby.router.metrics_snapshot()
            if standby.router is not None
            else get_registry().snapshot()
        ),
        role="standby",
    )
    try:
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop_requested.set)
        stop_wait = asyncio.ensure_future(stop_requested.wait())
        watch = standby._watch_task
        await asyncio.wait(
            (stop_wait, watch), return_when=asyncio.FIRST_COMPLETED
        )
        if not standby.promoted:
            stop_wait.cancel()
            if watch.done() and watch.exception() is not None:
                log_event(
                    _log, f"standby failed: {watch.exception()}",
                    event="standby_failed",
                )
                await standby.stop()
                return 1
            log_event(
                _log, "standby stopping (never promoted)",
                event="standby_stopping",
            )
            await standby.stop()
            return 0
        router = standby.router
        log_event(
            _log,
            f"standby promoted: serving on {router.host}:{router.port} "
            f"(epoch {router.wal_info['epoch']}; "
            f"{standby.promote_reason})",
            event="standby_promoted",
            host=router.host,
            port=router.port,
            epoch=router.wal_info["epoch"],
            reason=standby.promote_reason,
        )
        if args.port_file:
            _write_port_file(args.port_file, router.port)
        crash_wait = asyncio.ensure_future(router.wait_stopped())
        await asyncio.wait(
            (stop_wait, crash_wait), return_when=asyncio.FIRST_COMPLETED
        )
        for task in (stop_wait, crash_wait):
            task.cancel()
        if router.crashed:
            log_event(
                _log, "router crashed (scheduled fault)",
                event="router_crashed",
            )
            return 1
        log_event(_log, "draining...", event="draining")
        if exporter is not None:
            await exporter.stop()
        await standby.stop()
        log_event(_log, _drain_report(router, supervisor), event="drained")
    finally:
        supervisor.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.status:
        return _status(args)
    if args.capacity is None:
        build_parser().error("--capacity is required (unless --status)")
    if args.replicas < 1:
        build_parser().error("--replicas must be >= 1")
    if args.standby and not args.journal_dir:
        build_parser().error("--standby requires --journal-dir")
    amain = _amain_standby if args.standby else _amain
    try:
        if args.workdir is not None:
            return asyncio.run(amain(args, args.workdir))
        with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
            return asyncio.run(amain(args, tmp))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
