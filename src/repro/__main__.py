"""``python -m repro`` — command-line front door.

Subcommands
-----------
``bench``
    Regenerate the paper's figures (see ``repro.bench.cli``).
``profile``
    Run a named workload through the unified facade
    (:class:`repro.api.Profiler`) and print a statistics summary — a
    quick way to see the library work end to end on any backend.
``serve``
    Host a profiler over TCP with micro-batching ingestion (alias of
    ``python -m repro.serve``; see :mod:`repro.server.cli`).
"""

from __future__ import annotations

import argparse
import sys

from repro.api import Profiler, Query, available_backends
from repro.bench.cli import main as bench_main
from repro.bench.workloads import WORKLOAD_NAMES, build_stream
from repro.core.stats import summarize
from repro.errors import CapacityError, UnsupportedQueryError


def _profile_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Profile a synthetic log stream through repro.api.",
    )
    parser.add_argument(
        "--stream", default="stream1", choices=WORKLOAD_NAMES
    )
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--universe", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument(
        "--backend",
        default="auto",
        choices=available_backends(),
        help="profiling backend behind the facade (default: auto)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard fan-out (implies the sharded backend under auto)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process fan-out (implies the parallel backend "
        "under auto; 1 runs the inline serial fallback)",
    )
    args = parser.parse_args(argv)

    stream = build_stream(
        args.stream, args.events, args.universe, seed=args.seed
    )
    profiler = Profiler.open(
        args.universe,
        backend=args.backend,
        shards=args.shards,
        workers=args.workers,
    )
    with profiler:
        return _profile_report(profiler, stream, args)


def _profile_report(profiler, stream, args) -> int:
    ids, adds = stream.arrays()
    try:
        profiler.ingest(zip(ids.tolist(), adds.tolist()))
    except CapacityError as exc:
        # E.g. the add-only approx backend fed a stream with removes.
        print(
            f"backend {profiler.backend_name!r} rejected the "
            f"{args.stream!r} stream: {exc}",
            file=sys.stderr,
        )
        return 2

    print(f"stream={args.stream} events={len(stream):,} "
          f"universe={args.universe:,} backend={profiler.backend_name}")
    try:
        print(summarize(profiler))
    except UnsupportedQueryError:
        print("(distribution summary unsupported on this backend)")

    # One fused plan for everything this backend answers: partially
    # capable backends still print their share of the dashboard.
    plan = [
        query
        for query in (Query.mode(), Query.least(), Query.top_k(args.top))
        if profiler.supports(query.kind)
    ]
    result = profiler.evaluate(*plan)
    for query, value in result:
        if query.kind == "mode":
            ties = value.count if value.count is not None else "?"
            print(f"mode: object {value.example} at frequency "
                  f"{value.frequency} ({ties} object(s) tie)")
        elif query.kind == "least":
            print(f"least: object {value.example} at frequency "
                  f"{value.frequency} ({value.count} object(s) tie)")
        else:
            print(f"top-{args.top}:")
            for rank, entry in enumerate(value, start=1):
                print(f"  {rank:>3}. object {entry.obj:>8}  "
                      f"freq {entry.frequency}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("usage: python -m repro {bench,profile,serve} ...")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "bench":
        return bench_main(rest)
    if command == "profile":
        return _profile_main(rest)
    if command == "serve":
        from repro.server.cli import main as serve_main

        return serve_main(rest)
    print(f"unknown command {command!r}; use 'bench', 'profile' or "
          f"'serve'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
