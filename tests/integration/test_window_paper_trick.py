"""Integration: the paper's sliding-window reduction (section 2.3).

"S-Profile can also deal with a sliding window on a log stream, by
letting every tuple (x_i, c_i) outdated from the window be a new
incoming tuple (x_i, c̄_i)."  We verify the reduction end to end on the
paper's own stream generator against a from-scratch recomputation.
"""

from repro.core.profile import SProfile
from repro.streams.generators import generate_stream, paper_stream
from repro.streams.window import CountWindowProfiler


def test_windowed_paper_stream_matches_recompute():
    universe = 80
    window_size = 300
    stream = generate_stream(paper_stream("stream3", 3000, universe, seed=21))
    window = CountWindowProfiler(window_size, capacity=universe)

    events = list(stream)
    check_at = {600, 1500, 3000}
    for index, event in enumerate(events, start=1):
        window.push(event.obj, event.action)
        if index in check_at:
            oracle = SProfile(universe)
            for past in events[max(0, index - window_size):index]:
                oracle.update(past.obj, past.is_add)
            assert window.profiler.frequencies() == oracle.frequencies()
            assert window.mode() == oracle.mode()
            assert window.median_frequency() == oracle.median_frequency()
            assert window.histogram() == oracle.histogram()


def test_window_statistics_diverge_from_global():
    """A windowed profile must forget old hot objects; the global must not."""
    universe = 10
    window = CountWindowProfiler(50, capacity=universe)
    global_profile = SProfile(universe)

    # Phase 1: object 0 is hot.
    for _ in range(100):
        window.push(0, True)
        global_profile.add(0)
    # Phase 2: object 1 is hot.
    for _ in range(100):
        window.push(1, True)
        global_profile.add(1)

    assert window.mode().example == 1
    assert window.frequency(0) == 0          # fully forgotten
    assert global_profile.frequency(0) == 100  # remembered globally
