"""Property-based tests: sliding windows equal from-scratch replays."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import SProfile
from repro.streams.window import CountWindowProfiler, TimeWindowProfiler


@st.composite
def window_case(draw):
    capacity = draw(st.integers(min_value=1, max_value=10))
    window_size = draw(st.integers(min_value=1, max_value=20))
    raw = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10 ** 6), st.booleans()
            ),
            max_size=120,
        )
    )
    events = [(obj % capacity, is_add) for obj, is_add in raw]
    return capacity, window_size, events


@given(window_case())
@settings(max_examples=80, deadline=None)
def test_count_window_equals_suffix_replay(case):
    capacity, window_size, events = case
    window = CountWindowProfiler(window_size, capacity=capacity)
    for obj, is_add in events:
        window.push(obj, is_add)

    oracle = SProfile(capacity)
    for obj, is_add in events[-window_size:]:
        oracle.update(obj, is_add)

    assert window.profiler.frequencies() == oracle.frequencies()
    assert len(window) == min(len(events), window_size)


@st.composite
def timed_case(draw):
    capacity = draw(st.integers(min_value=1, max_value=8))
    horizon = draw(st.floats(min_value=0.5, max_value=20.0))
    gaps = draw(
        st.lists(st.floats(min_value=0.0, max_value=5.0), max_size=80)
    )
    raw = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10 ** 6), st.booleans()
            ),
            min_size=len(gaps),
            max_size=len(gaps),
        )
    )
    events = [(obj % capacity, is_add) for obj, is_add in raw]
    return capacity, horizon, gaps, events


@given(timed_case())
@settings(max_examples=60, deadline=None)
def test_time_window_equals_horizon_replay(case):
    capacity, horizon, gaps, events = case
    window = TimeWindowProfiler(horizon, capacity=capacity)
    clock = 0.0
    stamped = []
    for gap, (obj, is_add) in zip(gaps, events):
        clock += gap
        stamped.append((clock, obj, is_add))
        window.push(obj, is_add, timestamp=clock)

    oracle = SProfile(capacity)
    for ts, obj, is_add in stamped:
        if ts > clock - horizon:
            oracle.update(obj, is_add)

    assert window.profiler.frequencies() == oracle.frequencies()
