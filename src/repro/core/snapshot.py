"""Immutable point-in-time snapshots of a profile.

A snapshot copies the rank permutation and the block runs (O(m + B)) and
then answers every query of :class:`~repro.core.queries.ProfileQueryMixin`
without holding any reference to the live structure.  Rank-to-block
resolution uses binary search over the frozen runs, so point queries are
O(log B) instead of O(1) — the trade for not copying the O(m) pointer
array.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator

from repro.core.block import Block
from repro.core.queries import ProfileQueryMixin
from repro.errors import EmptyProfileError

__all__ = ["ProfileSnapshot"]


class _FrozenBlocks:
    """Read-only stand-in for :class:`~repro.core.blockset.BlockSet`."""

    __slots__ = ("_m", "_blocks", "_starts", "_freqs")

    def __init__(self, capacity: int, runs: list[tuple[int, int, int]]) -> None:
        self._m = capacity
        self._blocks = [Block(l, r, f) for l, r, f in runs]
        self._starts = [b.l for b in self._blocks]
        self._freqs = [b.f for b in self._blocks]

    @property
    def capacity(self) -> int:
        return self._m

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    def block_at(self, rank: int) -> Block:
        if not 0 <= rank < self._m:
            raise IndexError(f"rank {rank} out of range [0, {self._m})")
        idx = bisect_right(self._starts, rank) - 1
        return self._blocks[idx]

    def leftmost(self) -> Block:
        self._require_nonempty()
        return self._blocks[0]

    def rightmost(self) -> Block:
        self._require_nonempty()
        return self._blocks[-1]

    def iter_blocks(self) -> Iterator[Block]:
        return iter(self._blocks)

    def iter_blocks_desc(self) -> Iterator[Block]:
        return iter(reversed(self._blocks))

    def block_for_frequency(self, f: int) -> Block | None:
        # Block frequencies are strictly ascending: binary search.
        idx = bisect_right(self._freqs, f) - 1
        if idx >= 0 and self._freqs[idx] == f:
            return self._blocks[idx]
        return None

    def as_tuples(self) -> list[tuple[int, int, int]]:
        return [b.as_tuple() for b in self._blocks]

    def _require_nonempty(self) -> None:
        if self._m == 0:
            raise EmptyProfileError("snapshot of zero-capacity profile")


class ProfileSnapshot(ProfileQueryMixin):
    """Frozen copy of a profile, safe to query while the source mutates.

    Build with :meth:`ProfileSnapshot.of` or
    :meth:`repro.core.profile.SProfile.snapshot`.
    """

    __slots__ = ("_ttof", "_ftot", "_blocks", "_total", "_n_events")

    def __init__(
        self,
        ttof: list[int],
        runs: list[tuple[int, int, int]],
        total: int,
        n_events: int,
    ) -> None:
        m = len(ttof)
        # tolist() (ndarray permutations from array-engine profiles)
        # yields plain ints; list() keeps list inputs cheap.
        self._ttof = (
            ttof.tolist() if hasattr(ttof, "tolist") else list(ttof)
        )
        ftot = [0] * m
        for rank, obj in enumerate(self._ttof):
            ftot[obj] = rank
        self._ftot = ftot
        self._blocks = _FrozenBlocks(m, runs)
        self._total = total
        self._n_events = n_events

    @classmethod
    def of(cls, profile) -> "ProfileSnapshot":
        """Snapshot a live :class:`~repro.core.profile.SProfile`."""
        return cls(
            ttof=profile._ttof,
            runs=profile.blocks.as_tuples(),
            total=profile.total,
            n_events=profile.n_events,
        )

    @property
    def capacity(self) -> int:
        return self._blocks.capacity

    @property
    def total(self) -> int:
        return self._total

    @property
    def n_events(self) -> int:
        """Events the source profile had processed when snapped."""
        return self._n_events

    @property
    def block_count(self) -> int:
        return self._blocks.n_blocks

    def frequencies(self) -> list[int]:
        """Materialize the frequency array at snapshot time."""
        out = [0] * self.capacity
        for block in self._blocks.iter_blocks():
            for rank in range(block.l, block.r + 1):
                out[self._ttof[rank]] = block.f
        return out

    def __repr__(self) -> str:
        return (
            f"ProfileSnapshot(capacity={self.capacity}, total={self._total}, "
            f"blocks={self.block_count}, at_event={self._n_events})"
        )
