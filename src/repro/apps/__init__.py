"""Applications of S-Profile (paper section 2.3 and beyond).

- :mod:`repro.apps.graph_shaving` — heuristic "shaving" algorithms for
  big graphs (Fraudar/DenseAlert-style): greedy densest subgraph and
  k-core decomposition, both driven by O(1) min-degree queries.
- :mod:`repro.apps.topk_tracker` — top-K popularity tracking with
  enter/exit notifications.
- :mod:`repro.apps.leaderboard` — like/dislike leaderboard over
  arbitrary ids.
- :mod:`repro.apps.median_service` — streaming frequency-quantile
  monitor with alert rules.
- :mod:`repro.apps.click_analytics` — micro-batched click-stream
  analytics over the sharded engine (:mod:`repro.engine`).
"""

from repro.apps.click_analytics import ClickAnalytics
from repro.apps.graph_shaving import (
    DegreeProfile,
    DensestSubgraphResult,
    core_decomposition,
    densest_subgraph,
    reference_densest_subgraph,
)
from repro.apps.leaderboard import Leaderboard
from repro.apps.median_service import MedianMonitor, QuantileAlert
from repro.apps.topk_tracker import TopKChange, TopKTracker

__all__ = [
    "ClickAnalytics",
    "DegreeProfile",
    "DensestSubgraphResult",
    "Leaderboard",
    "MedianMonitor",
    "QuantileAlert",
    "TopKChange",
    "TopKTracker",
    "core_decomposition",
    "densest_subgraph",
    "reference_densest_subgraph",
]
