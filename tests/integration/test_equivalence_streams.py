"""Integration: every profiler agrees on the paper's actual workloads."""

import pytest

from repro.baselines.registry import (
    available_profilers,
    make_profiler,
    profiler_supports,
)
from repro.streams.generators import (
    PAPER_STREAM_NAMES,
    generate_stream,
    paper_stream,
)


@pytest.mark.parametrize("stream_name", PAPER_STREAM_NAMES)
def test_all_profilers_agree_on_paper_stream(stream_name):
    universe = 200
    stream = generate_stream(
        paper_stream(stream_name, 5000, universe, seed=17)
    )
    profilers = {
        name: make_profiler(name, universe)
        for name in available_profilers()
    }

    ids, adds = stream.arrays()
    # Feed in chunks and cross-check at several checkpoints, not just at
    # the end — intermediate disagreement must not cancel out.
    checkpoints = [1000, 2500, 5000]
    start = 0
    for stop in checkpoints:
        for profiler in profilers.values():
            profiler.consume_arrays(ids[start:stop], adds[start:stop])
        start = stop

        oracle = profilers["bucket"]
        freqs = oracle.frequencies()
        sorted_freqs = sorted(freqs)
        for name, profiler in profilers.items():
            supported = profiler_supports(name)
            if "max_frequency" in supported:
                assert profiler.max_frequency() == max(freqs), (
                    name, stop,
                )
            if "min_frequency" in supported:
                assert profiler.min_frequency() == min(freqs), (name, stop)
            if "median" in supported:
                assert (
                    profiler.median_frequency()
                    == sorted_freqs[(universe - 1) // 2]
                ), (name, stop)
            if "histogram" in supported:
                assert profiler.histogram() == oracle.histogram(), name


def test_sprofile_audit_survives_long_paper_streams():
    from repro.core.profile import SProfile
    from repro.core.validation import audit_profile

    for stream_name in PAPER_STREAM_NAMES:
        stream = generate_stream(paper_stream(stream_name, 20000, 500, seed=3))
        profile = SProfile(500)
        profile.consume_arrays(*stream.arrays())
        audit_profile(profile)
        assert profile.n_events == 20000
