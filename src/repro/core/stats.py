"""Distribution statistics computed from a profile's block walk.

The block set is a run-length encoding of the sorted frequency array, so
statistics that are O(m) on the raw array cost only O(#blocks) here.
All functions accept anything exposing the
:class:`~repro.core.queries.ProfileQueryMixin` surface (live profiles and
snapshots alike).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EmptyProfileError

__all__ = [
    "ProfileSummary",
    "summarize",
    "entropy",
    "gini",
    "top_share",
]


@dataclass(frozen=True)
class ProfileSummary:
    """One-shot descriptive statistics of a frequency distribution."""

    capacity: int
    total: int
    active: int
    distinct_frequencies: int
    min_frequency: int
    max_frequency: int
    mean: float
    variance: float
    median: int
    entropy_bits: float
    gini: float

    def __str__(self) -> str:
        return (
            f"ProfileSummary(m={self.capacity}, total={self.total}, "
            f"active={self.active}, freq range "
            f"[{self.min_frequency}, {self.max_frequency}], "
            f"mean={self.mean:.3f}, median={self.median}, "
            f"H={self.entropy_bits:.3f} bits, gini={self.gini:.3f})"
        )


def summarize(profile) -> ProfileSummary:
    """Compute a :class:`ProfileSummary`.  O(#blocks)."""
    m = profile.capacity
    if m == 0:
        raise EmptyProfileError("cannot summarize a zero-capacity profile")
    total = 0
    sum_sq = 0
    active = 0
    n_blocks = 0
    for f, count in profile.histogram():
        total += f * count
        sum_sq += f * f * count
        if f != 0:
            active += count
        n_blocks += 1
    mean = total / m
    variance = max(sum_sq / m - mean * mean, 0.0)
    return ProfileSummary(
        capacity=m,
        total=total,
        active=active,
        distinct_frequencies=n_blocks,
        min_frequency=profile.least().frequency,
        max_frequency=profile.mode().frequency,
        mean=mean,
        variance=variance,
        median=profile.median_frequency(),
        entropy_bits=entropy(profile),
        gini=gini(profile),
    )


def entropy(profile, base: float = 2.0) -> float:
    """Shannon entropy of the positive-frequency mass.  O(#blocks).

    Each object with frequency ``f > 0`` contributes probability
    ``f / total_positive``.  Objects at zero or negative frequency carry
    no mass and are excluded (a profile with allowed negative frequencies
    has no meaningful probability interpretation for those entries).
    Returns 0.0 when no positive mass exists.
    """
    if base <= 1.0:
        raise ValueError(f"entropy base must exceed 1, got {base}")
    positive = [
        (f, count) for f, count in profile.histogram() if f > 0
    ]
    mass = sum(f * count for f, count in positive)
    if mass == 0:
        return 0.0
    log_base = math.log(base)
    acc = 0.0
    for f, count in positive:
        p = f / mass
        acc -= count * p * math.log(p)
    return acc / log_base


def gini(profile) -> float:
    """Gini coefficient of the non-negative frequency mass.  O(#blocks).

    Uses the sorted-array identity
    ``G = (2 * sum_i i*x_i) / (m * sum_i x_i) - (m + 1) / m`` with
    1-based ``i`` over ascending ``x``; each block contributes its
    arithmetic-series rank sum in closed form.  Negative frequencies are
    clamped to zero (inequality of holdings cannot be negative).
    Returns 0.0 when the total mass is zero.
    """
    m = profile.capacity
    if m == 0:
        return 0.0
    weighted = 0  # sum of i * x_i with 1-based i over ascending order
    mass = 0
    cum = 0
    # The ascending histogram *is* the run-length encoding of the sorted
    # frequency array, so ranks are recovered from cumulative counts;
    # this keeps the function working for any backend that can produce a
    # histogram (flat, sharded merge, facade), not just ones exposing a
    # block set.
    for f, count in profile.histogram():
        lo = cum + 1  # 1-based rank of the run's first element
        hi = cum + count
        cum = hi
        if f <= 0:
            continue
        rank_sum = (lo + hi) * count // 2
        weighted += rank_sum * f
        mass += f * count
    if mass == 0:
        return 0.0
    return (2.0 * weighted) / (m * mass) - (m + 1.0) / m


def top_share(profile, k: int) -> float:
    """Fraction of positive mass held by the ``k`` most frequent objects.

    O(#blocks).  Returns 0.0 when there is no positive mass.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    runs = profile.histogram()
    mass = sum(f * count for f, count in runs if f > 0)
    if mass == 0 or k == 0:
        return 0.0
    taken = 0
    remaining = k
    for f, count in reversed(runs):
        if f <= 0 or remaining == 0:
            break
        take = min(count, remaining)
        taken += take * f
        remaining -= take
    return taken / mass
