"""repro — S-Profile: O(1) profiling of dynamic arrays with finite values.

Reproduction of Yang, Yu, Deng, Liu, *Optimal Algorithm for Profiling
Dynamic Arrays with Finite Values* (EDBT 2019; arXiv:1812.05306).

Quick start — the unified facade is the documented way in::

    from repro import Profiler, Query

    profiler = Profiler.open(1_000_000, backend="auto")
    profiler.ingest([(42, +1), (7, -1)])
    profiler.mode()              # most frequent object, O(1)
    profiler.median_frequency()  # O(1)
    profiler.evaluate(           # fused: one block walk for all four
        Query.mode(), Query.top_k(10),
        Query.histogram(), Query.quantile(0.99))

Package map:

- :mod:`repro.api` — the public facade: backend selection
  (exact / sharded / approximate / baselines), one ingest verb, fused
  multi-query plans.
- :mod:`repro.core` — the paper's algorithm and its query surface.
- :mod:`repro.engine` — scale-out layer: batched ingestion, sharding.
  (:class:`ProfileService` is deprecated in favour of the facade.)
- :mod:`repro.baselines` — heap / balanced-tree / bucket comparators.
- :mod:`repro.streams` — log-stream generators (paper section 3 setup),
  sliding windows, persistence.
- :mod:`repro.apps` — applications from section 2.3 (graph shaving,
  top-k tracking) and beyond, all built on the facade.
- :mod:`repro.bench` — harness regenerating every figure of the paper.
"""

from repro.api import EvalResult, Profiler, Query
from repro.core.dynamic import DynamicProfiler
from repro.core.flat import FlatProfile
from repro.core.profile import SProfile
from repro.core.queries import ModeResult, TopEntry
from repro.core.snapshot import ProfileSnapshot
from repro.engine.service import ProfileService
from repro.engine.sharding import ShardedProfiler
from repro.errors import (
    CapacityError,
    CheckpointError,
    EmptyProfileError,
    FrequencyUnderflowError,
    InvariantViolationError,
    ReproError,
    StreamConfigError,
    UnknownObjectError,
    UnsupportedQueryError,
    WindowError,
)

__version__ = "1.0.0"

__all__ = [
    "CapacityError",
    "CheckpointError",
    "DynamicProfiler",
    "EmptyProfileError",
    "EvalResult",
    "FlatProfile",
    "FrequencyUnderflowError",
    "InvariantViolationError",
    "ModeResult",
    "ProfileService",
    "ProfileSnapshot",
    "Profiler",
    "Query",
    "ReproError",
    "SProfile",
    "ShardedProfiler",
    "StreamConfigError",
    "TopEntry",
    "UnknownObjectError",
    "UnsupportedQueryError",
    "WindowError",
    "__version__",
]
