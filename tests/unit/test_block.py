"""Unit tests for Block and BlockPool."""

import pytest

from repro.core.block import Block, BlockPool


class TestBlock:
    def test_fields(self):
        block = Block(2, 5, 7)
        assert (block.l, block.r, block.f) == (2, 5, 7)

    def test_len_counts_covered_ranks(self):
        assert len(Block(2, 5, 0)) == 4
        assert len(Block(3, 3, 0)) == 1

    def test_len_of_emptied_block_is_nonpositive(self):
        block = Block(3, 3, 0)
        block.r = 2
        assert len(block) <= 0

    def test_contains(self):
        block = Block(2, 5, 0)
        assert 2 in block
        assert 5 in block
        assert 3 in block
        assert 1 not in block
        assert 6 not in block

    def test_as_tuple(self):
        assert Block(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_repr_mentions_fields(self):
        text = repr(Block(1, 2, 3))
        assert "l=1" in text and "r=2" in text and "f=3" in text

    def test_equality_by_value(self):
        assert Block(1, 2, 3) == Block(1, 2, 3)
        assert Block(1, 2, 3) != Block(1, 2, 4)

    def test_equality_with_other_type(self):
        assert Block(1, 2, 3) != (1, 2, 3)

    def test_hash_is_identity_based(self):
        a = Block(1, 2, 3)
        b = Block(1, 2, 3)
        assert hash(a) != hash(b) or a is b
        # Identity hashing lets equal-valued blocks coexist in a set.
        assert len({a, b}) == 2

    def test_mutation(self):
        block = Block(0, 4, 1)
        block.l = 2
        block.f = 9
        assert block.as_tuple() == (2, 4, 9)


class TestBlockPool:
    def test_acquire_creates_when_empty(self):
        pool = BlockPool()
        block = pool.acquire(0, 1, 2)
        assert block.as_tuple() == (0, 1, 2)
        assert pool.stats.created == 1
        assert pool.stats.recycled == 0

    def test_release_then_acquire_recycles(self):
        pool = BlockPool()
        block = pool.acquire(0, 0, 0)
        pool.release(block)
        assert pool.free_count == 1
        again = pool.acquire(5, 6, 7)
        assert again is block
        assert again.as_tuple() == (5, 6, 7)
        assert pool.stats.recycled == 1

    def test_max_free_bounds_retention(self):
        pool = BlockPool(max_free=1)
        first = pool.acquire(0, 0, 0)
        second = pool.acquire(1, 1, 1)
        pool.release(first)
        pool.release(second)
        assert pool.free_count == 1
        assert pool.stats.released == 2

    def test_max_free_zero_never_retains(self):
        pool = BlockPool(max_free=0)
        block = pool.acquire(0, 0, 0)
        pool.release(block)
        assert pool.free_count == 0

    def test_negative_max_free_rejected(self):
        with pytest.raises(ValueError):
            BlockPool(max_free=-1)

    def test_recycle_ratio(self):
        pool = BlockPool()
        block = pool.acquire(0, 0, 0)
        assert pool.stats.recycle_ratio == 0.0
        pool.release(block)
        pool.acquire(0, 0, 0)
        assert pool.stats.recycle_ratio == pytest.approx(0.5)

    def test_recycle_ratio_empty_pool(self):
        assert BlockPool().stats.recycle_ratio == 0.0

    def test_repr(self):
        assert "BlockPool" in repr(BlockPool())
