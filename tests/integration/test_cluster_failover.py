"""Failover + rescale integration tests: real processes, real SIGKILL.

The acceptance gates of the warm-standby tier:

- A ``--standby`` process tailing the primary's WAL must promote after
  the primary is SIGKILLed mid-stream (with scheduled fault delays in
  play), serve a state containing every acked event (bit-identical to
  a facade fed some send-order prefix covering the acked batches),
  keep ingesting under the new fencing epoch, and drain clean on
  SIGTERM — reporting the sealed WAL in its drain line.
- ``rescale(n)`` against the CLI tier must migrate to a new replica
  generation without stopping the stream, survive a restart (the
  committed ``layout.json`` overrides a stale ``--replicas``), and
  leave generation-named replica files behind.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.api import Profiler, Query
from repro.server import AsyncProfileClient, ProfileClient

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")

M = 300


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def base_cmd(tmp_path, *extra, capacity=M, replicas=2):
    return [
        sys.executable,
        "-m",
        "repro.cluster",
        "--capacity",
        str(capacity),
        "--replicas",
        str(replicas),
        "--port",
        "0",
        "--workdir",
        str(tmp_path / "replicas"),
        "--snapshot-every",
        "8",
        *extra,
    ]


def spawn_primary(tmp_path, wal, *extra, boot=1):
    port_file = tmp_path / f"primary-{boot}.port"
    proc = subprocess.Popen(
        base_cmd(
            tmp_path,
            "--port-file",
            str(port_file),
            "--journal-dir",
            str(wal),
            "--lease-interval",
            "0.1",
            *extra,
        ),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=subprocess_env(),
    )
    port = await_file(proc, port_file, "primary port")
    return proc, int(port)


def spawn_standby(tmp_path, wal, *extra):
    """Boot a ``--standby`` follower; wait until its tail cursor shows
    up in the WAL directory (its 'I am following' artifact)."""
    port_file = tmp_path / "standby.port"
    proc = subprocess.Popen(
        base_cmd(
            tmp_path,
            "--port-file",
            str(port_file),
            "--journal-dir",
            str(wal),
            "--standby",
            "--lease-timeout",
            "0.6",
            "--lease-interval",
            "0.1",
            *extra,
        ),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=subprocess_env(),
    )
    await_file(proc, wal / "cursor-standby.json", "standby cursor")
    return proc, port_file


def await_file(proc, path, label, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        if proc.poll() is not None:
            raise AssertionError(
                f"process died before {label}:\n{proc.stdout.read()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError(f"{label} never appeared at {path}")


def cluster_status(port):
    out = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cluster",
            "--status",
            "--port",
            str(port),
        ],
        capture_output=True,
        text=True,
        timeout=60,
        env=subprocess_env(),
    )
    assert out.returncode == 0, out.stdout + out.stderr
    return json.loads(out.stdout)


class TestStandbyFailover:
    def test_sigkill_primary_standby_promotes_zero_loss(self, tmp_path):
        wal = tmp_path / "wal"
        primary, port = spawn_primary(
            tmp_path,
            wal,
            "--faults",
            "router.fanout:6:delay:0.02,router.acks:14:delay:0.02",
        )
        standby, standby_port_file = spawn_standby(tmp_path, wal)
        acked_batches = []
        pipelined = []
        statuses = []
        try:
            async def drive():
                client = await AsyncProfileClient.connect(port=port)
                try:
                    # Phase 1: awaited batches — definitely acked.
                    for i in range(10):
                        batch = [
                            ((i * 17 + j) % M, 1 + (j % 3))
                            for j in range(12)
                        ]
                        await client.ingest(batch)
                        acked_batches.append(batch)
                    # Phase 2: pipelined batches racing the SIGKILL.
                    futures = []
                    for i in range(30):
                        batch = [
                            ((500 + i * 13 + j) % M, 1 + (j % 2))
                            for j in range(10)
                        ]
                        pipelined.append(batch)
                        futures.append(
                            await client.ingest(batch, wait=False)
                        )
                    os.kill(primary.pid, signal.SIGKILL)
                    return await asyncio.gather(
                        *futures, return_exceptions=True
                    )
                finally:
                    client.abort()

            results = asyncio.run(drive())
            primary.wait(30)
            for result in results:
                if isinstance(result, BaseException):
                    assert isinstance(result, ConnectionError), result
                    statuses.append(None)
                else:
                    statuses.append(result["applied"])

            # Acks are pipeline-ordered: definite outcomes must form a
            # prefix of the sends.
            acked = len(statuses)
            for i, status in enumerate(statuses):
                if status is None:
                    acked = i
                    break
            assert all(s is None for s in statuses[acked:]), statuses

            # The standby detects the death, fences, promotes, and
            # publishes its port.
            port2 = int(
                await_file(
                    standby, standby_port_file, "standby promotion"
                )
            )
            with ProfileClient("127.0.0.1", port2) as client:
                state = client.checkpoint()
                total = client.evaluate(Query.total()).values[0]
                # Ingest resumes under the new epoch.
                before = client.evaluate(Query.frequency(7)).values[0]
                assert client.ingest([(7, 5)]) == 5
                after = client.evaluate(Query.frequency(7)).values[0]
                assert after == before + 5

            info = cluster_status(port2)
            assert info["wal"]["epoch"] >= 2
            assert info["wal"]["segments"] >= 1
            assert "generation" in info["wal"]

            restored = Profiler.from_state(state)
            try:
                frequencies = restored.frequencies()
            finally:
                restored.close()
        finally:
            for proc in (primary, standby):
                if proc.poll() is None and proc is not standby:
                    proc.kill()
                    proc.wait(30)

        # Zero acked loss: the promoted state is exactly the facade
        # fed the acked prefix plus some run of the in-flight suffix.
        matched = False
        for k in range(acked, len(pipelined) + 1):
            reference = Profiler.open(M, backend="flat")
            try:
                for batch in acked_batches:
                    reference.ingest(batch)
                for batch, status in zip(pipelined[:k], statuses[:k]):
                    applied = reference.ingest(batch)
                    if status is not None:
                        assert applied == status
                if reference.frequencies() == frequencies:
                    assert total == reference.evaluate(
                        Query.total()
                    ).values[0]
                    matched = True
                    break
            finally:
                reference.close()
        assert matched, (
            f"promoted state matches no prefix >= acked={acked} "
            f"(statuses={statuses})"
        )

        # Graceful drain of the promoted router seals the WAL and says
        # so.
        standby.send_signal(signal.SIGTERM)
        out, _ = standby.communicate(timeout=60)
        assert standby.returncode == 0, out
        assert "standby promoted:" in out
        assert "lease stale" in out
        assert "drained:" in out
        assert "wal sealed:" in out

    def test_unpromoted_standby_drains_clean(self, tmp_path):
        wal = tmp_path / "wal"
        primary, _port = spawn_primary(tmp_path, wal)
        standby, _pf = spawn_standby(tmp_path, wal)
        try:
            time.sleep(0.3)
            standby.send_signal(signal.SIGTERM)
            out, _ = standby.communicate(timeout=60)
            assert standby.returncode == 0, out
            assert "standby stopping (never promoted)" in out
            # Its cursor is withdrawn: nothing pins the primary's
            # prune anymore.
            assert not (wal / "cursor-standby.json").exists()
        finally:
            for proc in (primary, standby):
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
                    proc.wait(30)


class TestLiveRescale:
    def test_rescale_migrates_and_survives_restart(self, tmp_path):
        wal = tmp_path / "wal"
        primary, port = spawn_primary(tmp_path, wal)
        try:
            with ProfileClient("127.0.0.1", port) as client:
                for i in range(12):
                    assert client.ingest([(i % M, 1), (i * 3 % M, 2)]) == 3
                receipt = client.rescale(3)
                assert receipt["partitions"] == 3
                assert receipt["generation"] == 1
                # The stream keeps flowing on the new layout.
                assert client.ingest([(5, 4)]) == 4
                info = client.health()
                assert info["partitions"] == 3
                assert info["generation"] == 1
                state = client.checkpoint()
            # The new generation's replicas live in generation-named
            # files; the old generation's processes are gone.
            workdir = tmp_path / "replicas"
            gen_ports = sorted(workdir.glob("replica-g1-*.port"))
            assert len(gen_ports) == 3
            restored = Profiler.from_state(state)
            try:
                frequencies = restored.frequencies()
            finally:
                restored.close()
        finally:
            primary.send_signal(signal.SIGTERM)
            out, _ = primary.communicate(timeout=60)
        assert primary.returncode == 0, out
        assert "generation 1" in out

        # Cold boot with a stale --replicas: the committed layout wins.
        reboot, port2 = spawn_primary(tmp_path, wal, boot=2)
        try:
            with ProfileClient("127.0.0.1", port2) as client:
                info = client.health()
                assert info["partitions"] == 3
                state2 = client.checkpoint()
            restored = Profiler.from_state(state2)
            try:
                assert restored.frequencies() == frequencies
            finally:
                restored.close()
        finally:
            reboot.send_signal(signal.SIGTERM)
            out2, _ = reboot.communicate(timeout=60)
        assert reboot.returncode == 0, out2
        assert "WAL layout overrides --replicas=2" in out2
