"""Count-Min sketch: randomized frequency estimation in sublinear space.

Cormode & Muthukrishnan, *An improved data stream summary: the
count-min sketch and its applications* (J. Algorithms 2005).  A
``depth x width`` counter matrix with one pairwise-independent hash row
per depth; an update touches one counter per row, a point query takes
the row-wise minimum.

Guarantees for add-only streams (``N`` = total mass):

- estimates never underestimate;
- with width ``w = ceil(e / eps)`` and depth ``d = ceil(ln(1/delta))``,
  ``estimate <= true + eps * N`` with probability ``>= 1 - delta``.

Removals are supported (the paper's streams remove 30% of the time);
with removals the sketch operates in the turnstile setting where the
one-sided guarantee holds for the *net* counts as long as they remain
non-negative.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from repro.errors import CapacityError

__all__ = ["CountMinSketch"]

_MERSENNE = (1 << 61) - 1  # modulus for the universal hash family


class CountMinSketch:
    """Frequency estimator with additive error ``eps * N``.

    Construct either directly (``width``, ``depth``) or from an error
    target via :meth:`from_error`.
    """

    def __init__(
        self, width: int, depth: int, *, seed: int | None = 0
    ) -> None:
        if width <= 0 or depth <= 0:
            raise CapacityError(
                f"width and depth must be positive, got {width}x{depth}"
            )
        self._width = width
        self._depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)
        rng = np.random.default_rng(seed)
        # Universal hashing: h_i(x) = ((a_i * x + b_i) mod p) mod width.
        self._a = rng.integers(1, _MERSENNE, size=depth, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE, size=depth, dtype=np.int64)
        self._n = 0

    @classmethod
    def from_error(
        cls, eps: float, delta: float, *, seed: int | None = 0
    ) -> "CountMinSketch":
        """Size the sketch for additive error ``eps*N`` w.p. ``1-delta``."""
        if not 0.0 < eps < 1.0:
            raise CapacityError(f"eps must be in (0, 1), got {eps}")
        if not 0.0 < delta < 1.0:
            raise CapacityError(f"delta must be in (0, 1), got {delta}")
        width = math.ceil(math.e / eps)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width, depth, seed=seed)

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def total(self) -> int:
        """Net mass (adds - removes) seen so far."""
        return self._n

    def _rows(self, obj: Hashable) -> np.ndarray:
        key = hash(obj) & ((1 << 60) - 1)
        return ((self._a * key + self._b) % _MERSENNE) % self._width

    def add(self, obj: Hashable, count: int = 1) -> None:
        """Add ``count`` occurrences of ``obj``.  O(depth)."""
        self._table[np.arange(self._depth), self._rows(obj)] += count
        self._n += count

    def remove(self, obj: Hashable, count: int = 1) -> None:
        """Remove ``count`` occurrences (turnstile update).  O(depth)."""
        self.add(obj, -count)

    def estimate(self, obj: Hashable) -> int:
        """Point estimate: row-wise minimum.  Never underestimates the
        net count in the add-only / non-negative regime."""
        return int(
            self._table[np.arange(self._depth), self._rows(obj)].min()
        )

    def error_bound(self, delta_margin: float = 0.0) -> float:
        """Additive error ``e/width * N`` that holds w.h.p. (add-only)."""
        if self._n <= 0:
            return 0.0
        return (math.e / self._width) * self._n * (1.0 + delta_margin)

    def __repr__(self) -> str:
        return (
            f"CountMinSketch(width={self._width}, depth={self._depth}, "
            f"total={self._n})"
        )
