"""Unit tests for the query-plan layer: Query, EvalResult, fusion.

The acceptance property of the plan layer is structural: a fused
``evaluate`` answers mode + top-k + histogram + quantile (and friends)
with **one** descending walk per underlying BlockSet — asserted here by
instrumenting the walk entry points.
"""

import contextlib
import random
from unittest import mock

import pytest

from repro.api import EvalResult, Profiler, Query, RESULT_VERSION
from repro.core.blockset import BlockSet
from repro.core.flat import _FlatBlockReader
from repro.errors import CapacityError, EmptyProfileError


def _walk_counter():
    """Patch the walk entry points of both block structures (the
    block-object BlockSet and the flat engine's reader), returning
    shared call counters."""
    counts = {"desc": 0, "asc": 0}
    stack = contextlib.ExitStack()
    for holder in (BlockSet, _FlatBlockReader):
        real_desc = holder.iter_blocks_desc
        real_asc = holder.iter_blocks

        def counting_desc(self, _real=real_desc):
            counts["desc"] += 1
            return _real(self)

        def counting_asc(self, _real=real_asc):
            counts["asc"] += 1
            return _real(self)

        stack.enter_context(
            mock.patch.object(holder, "iter_blocks_desc", counting_desc)
        )
        stack.enter_context(
            mock.patch.object(holder, "iter_blocks", counting_asc)
        )
    # Returned as a two-element tuple so existing call sites
    # (``with patches[0], patches[1]:``) keep working unchanged.
    return counts, (stack, contextlib.nullcontext())


DASHBOARD = (
    Query.mode(),
    Query.top_k(5),
    Query.histogram(),
    Query.quantile(0.5),
)


class TestQueryModel:
    def test_constructors_validate(self):
        with pytest.raises(CapacityError):
            Query.top_k(-1)
        with pytest.raises(CapacityError):
            Query.kth_most_frequent(0)
        with pytest.raises(CapacityError):
            Query.quantile(1.5)
        with pytest.raises(CapacityError):
            Query.heavy_hitters(0.0)
        with pytest.raises(CapacityError):
            Query("made-up-kind")

    def test_queries_are_frozen_and_hashable(self):
        assert Query.mode() == Query.mode()
        assert len({Query.quantile(0.5), Query.quantile(0.5)}) == 1
        with pytest.raises(AttributeError):
            Query.mode().kind = "least"

    def test_key_spelling(self):
        assert Query.quantile(0.25).key == "quantile(0.25)"
        assert Query.mode().key == "mode()"

    def test_evaluate_rejects_non_queries(self):
        with pytest.raises(CapacityError):
            Profiler.open(4).evaluate("mode")


class TestEvalResult:
    def _result(self):
        profiler = Profiler.open(8)
        profiler.ingest({1: 3, 2: 1})
        return profiler.evaluate(
            Query.mode(), Query.quantile(0.5), Query.quantile(1.0)
        )

    def test_versioned(self):
        result = self._result()
        assert result.version == RESULT_VERSION

    def test_indexing(self):
        result = self._result()
        assert result[0] == result[Query.mode()] == result["mode"]
        assert result[Query.quantile(1.0)] == 3
        with pytest.raises(KeyError):
            result["quantile"]  # two quantiles: ambiguous by kind
        with pytest.raises(KeyError):
            result["histogram"]
        with pytest.raises(KeyError):
            result[Query.least()]

    def test_iteration_and_dict(self):
        result = self._result()
        assert len(result) == 3
        assert dict(result)[Query.quantile(0.5)] == 0
        assert result.as_dict()["quantile(1.0)"] == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CapacityError):
            EvalResult(queries=(Query.mode(),), values=())

    def test_empty_evaluate(self):
        result = Profiler.open(4).evaluate()
        assert len(result) == 0


class TestFusionCorrectness:
    """Fused answers equal standalone answers on every walk backend."""

    PLAN = DASHBOARD + (
        Query.least(),
        Query.max_frequency(),
        Query.min_frequency(),
        Query.median(),
        Query.support(0),
        Query.support(2),
        Query.active_count(),
        Query.total(),
        Query.heavy_hitters(0.2),
        Query.kth_most_frequent(3),
        Query.frequency(7),
    )

    def _drive(self, profiler, seed):
        rng = random.Random(seed)
        batch = [
            (rng.randrange(30), rng.random() < 0.7) for _ in range(800)
        ]
        profiler.ingest(batch)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "exact"},
            {"backend": "sharded", "shards": 3},
            {"backend": "sharded", "shards": 7},
        ],
        ids=["exact", "sharded-3", "sharded-7"],
    )
    def test_fused_matches_standalone(self, kwargs):
        profiler = Profiler.open(30, **kwargs)
        self._drive(profiler, seed=hash(str(kwargs)) % 1000)
        result = profiler.evaluate(*self.PLAN)
        assert result[Query.mode()] == profiler.mode()
        assert result[Query.top_k(5)] == profiler.top_k(5)
        assert result[Query.histogram()] == profiler.histogram()
        assert result[Query.quantile(0.5)] == profiler.quantile(0.5)
        assert result[Query.least()] == profiler.least()
        assert result[Query.max_frequency()] == profiler.max_frequency()
        assert result[Query.min_frequency()] == profiler.min_frequency()
        assert result[Query.median()] == profiler.median_frequency()
        assert result[Query.support(0)] == profiler.support(0)
        assert result[Query.support(2)] == profiler.support(2)
        assert result[Query.active_count()] == profiler.active_count
        assert result[Query.total()] == profiler.total
        assert result[Query.heavy_hitters(0.2)] == profiler.heavy_hitters(0.2)
        kth = result[Query.kth_most_frequent(3)]
        assert kth.frequency == profiler.kth_most_frequent(3).frequency
        assert profiler.frequency(kth.obj) == kth.frequency
        assert result[Query.frequency(7)] == profiler.frequency(7)

    def test_fused_on_hashable_exact(self):
        profiler = Profiler.open(keys="hashable")
        profiler.ingest([("a", +3), ("b", +1), ("c", +2), ("d", +1)])
        result = profiler.evaluate(*DASHBOARD, Query.frequency("b"))
        assert result[Query.mode()].example == "a"
        assert result[Query.top_k(5)] == profiler.top_k(5)
        assert result[Query.histogram()] == profiler.histogram()
        assert result[Query.quantile(0.5)] == profiler.quantile(0.5)
        assert result[Query.frequency("b")] == 1

    def test_fused_on_interned_sharded(self):
        profiler = Profiler.open(
            4, backend="sharded", keys="hashable", shards=2
        )
        profiler.ingest([("x", +4), ("y", +2), ("z", +1)])
        result = profiler.evaluate(*DASHBOARD, Query.frequency("y"))
        assert result[Query.mode()].example == "x"
        assert result[Query.top_k(5)] == profiler.top_k(5)
        assert result[Query.frequency("y")] == 2

    def test_dispatch_on_structureless_backend(self):
        profiler = Profiler.open(8, backend="bucket")
        profiler.ingest({1: 4, 2: 1})
        result = profiler.evaluate(*DASHBOARD)
        assert result[Query.mode()] == profiler.mode()
        assert result[Query.histogram()] == profiler.histogram()

    def test_phantoms_excluded_from_fused_answers(self):
        profiler = Profiler.open(keys="hashable")
        profiler.ingest([("only", +1)])
        # The backing SProfile carries phantom slots at frequency 0;
        # none of them may leak into logical answers.
        result = profiler.evaluate(
            Query.histogram(), Query.least(), Query.support(0),
            Query.active_count(), Query.top_k(10),
        )
        assert result[Query.histogram()] == [(1, 1)]
        assert result[Query.least()].frequency == 1
        assert result[Query.support(0)] == 0
        assert result[Query.active_count()] == 1
        assert result[Query.top_k(10)] == [("only", 1)]


class TestEmptyProfiles:
    def test_defined_kinds_answer_without_walking(self):
        profiler = Profiler.open(0)
        result = profiler.evaluate(
            Query.histogram(), Query.top_k(3), Query.heavy_hitters(0.5),
            Query.support(0), Query.active_count(), Query.total(),
        )
        assert tuple(result.values) == ([], [], [], 0, 0, 0)

    @pytest.mark.parametrize(
        "query",
        [Query.mode(), Query.least(), Query.median(), Query.quantile(0.5),
         Query.max_frequency(), Query.kth_most_frequent(1)],
        ids=lambda q: q.kind,
    )
    def test_undefined_kinds_raise(self, query):
        with pytest.raises(EmptyProfileError):
            Profiler.open(0).evaluate(query)

    def test_kth_beyond_universe(self):
        profiler = Profiler.open(3)
        with pytest.raises(CapacityError):
            profiler.evaluate(Query.kth_most_frequent(4))


class TestWalkCount:
    """The acceptance criterion: one walk answers the whole dashboard."""

    def test_exact_dashboard_is_one_walk(self):
        profiler = Profiler.open(50)
        profiler.ingest({i: i % 7 for i in range(50)})
        counts, patches = _walk_counter()
        with patches[0], patches[1]:
            result = profiler.evaluate(*DASHBOARD)
        assert counts["desc"] == 1
        assert counts["asc"] == 0
        assert result[Query.mode()].frequency == 6

    def test_separate_calls_walk_more(self):
        profiler = Profiler.open(50)
        profiler.ingest({i: i % 7 for i in range(50)})
        counts, patches = _walk_counter()
        with patches[0], patches[1]:
            profiler.mode()
            profiler.top_k(5)
            profiler.histogram()
            profiler.quantile(0.5)
        # The standalone histogram call walks; the fused plan absorbs it
        # (and every other traversal) into its single walk.
        assert counts["desc"] + counts["asc"] >= 1

    def test_sharded_dashboard_is_one_walk_per_shard(self):
        shards = 4
        profiler = Profiler.open(40, backend="sharded", shards=shards)
        profiler.ingest({i: i % 5 for i in range(40)})
        counts, patches = _walk_counter()
        with patches[0], patches[1]:
            profiler.evaluate(*DASHBOARD)
        assert counts["desc"] == shards
        assert counts["asc"] == 0

    def test_sharded_separate_calls_walk_shards_repeatedly(self):
        shards = 4
        profiler = Profiler.open(40, backend="sharded", shards=shards)
        profiler.ingest({i: i % 5 for i in range(40)})
        counts, patches = _walk_counter()
        with patches[0], patches[1]:
            profiler.mode()       # no walk (per-shard O(1) extremes)
            profiler.top_k(5)     # descending merge: one walk per shard
            profiler.histogram()  # ascending merge: one walk per shard
            profiler.quantile(0.5)  # another full merge
        assert counts["desc"] + counts["asc"] > shards

    def test_point_queries_do_not_walk(self):
        profiler = Profiler.open(20)
        profiler.ingest({1: 3})
        counts, patches = _walk_counter()
        with patches[0], patches[1]:
            result = profiler.evaluate(Query.frequency(1), Query.total())
        assert counts["desc"] == counts["asc"] == 0
        assert result[Query.frequency(1)] == 3
