"""Graph shaving (paper section 2.3): S-Profile peel vs re-scan peel.

The S-Profile-driven peel is O(V + E); the textbook reference recomputes
the minimum degree per step, O(V^2).  Also benches core decomposition
against networkx's implementation for external context.
"""

import networkx as nx
import pytest

from repro.apps.graph_shaving import (
    core_decomposition,
    densest_subgraph,
    reference_densest_subgraph,
)


@pytest.fixture(scope="module")
def random_graph():
    return nx.gnp_random_graph(600, 0.015, seed=7)


@pytest.fixture(scope="module")
def edge_list(random_graph):
    return list(random_graph.edges())


def test_densest_subgraph_sprofile(benchmark, edge_list):
    benchmark.group = "densest subgraph peel"
    benchmark(densest_subgraph, edge_list)


def test_densest_subgraph_rescan_reference(benchmark, edge_list):
    benchmark.group = "densest subgraph peel"
    benchmark(reference_densest_subgraph, edge_list)


def test_core_decomposition_sprofile(benchmark, random_graph):
    benchmark.group = "core decomposition"
    benchmark(core_decomposition, random_graph)


def test_core_decomposition_networkx(benchmark, random_graph):
    benchmark.group = "core decomposition"
    benchmark(nx.core_number, random_graph)
