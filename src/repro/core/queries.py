"""Statistical queries over a maintained profile.

The paper's point is that once the sorted frequency array is profiled by
the block set, every order statistic is a pointer lookup:

- mode           -> the rightmost block (rank ``m-1``),
- least frequent -> the leftmost block (rank ``0``),
- k-th frequent  -> the block covering rank ``m-k``,
- median         -> the block covering rank ``(m-1) // 2``,
- histogram      -> one entry per block.

:class:`ProfileQueryMixin` implements these against the attribute
contract ``_ttof`` (rank -> object), ``_ftot`` (object -> rank) and
``_blocks`` (a :class:`~repro.core.blockset.BlockSet`-shaped reader).
Both the live :class:`~repro.core.profile.SProfile` and the frozen
:class:`~repro.core.snapshot.ProfileSnapshot` mix it in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro.errors import CapacityError, EmptyProfileError

__all__ = ["ModeResult", "TopEntry", "ProfileQueryMixin", "quantile_rank"]


def quantile_rank(q: float, size: int) -> int:
    """Rank of quantile ``q`` on an ascending array of ``size`` entries.

    The single definition of quantile semantics every backend shares
    (flat, dynamic, sharded, baselines), so their answers cannot drift:

    - *nearest-rank, lower*: the rank is ``floor(q * (size - 1))``;
    - ``q == 0.0`` names the minimum (rank 0) and ``q == 1.0`` the
      maximum (rank ``size - 1``) — both exact, never off by float
      rounding;
    - ``q`` outside ``[0, 1]`` raises
      :class:`~repro.errors.CapacityError`;
    - ``size == 0`` raises :class:`~repro.errors.EmptyProfileError`
      (callers usually pre-check and raise it with their own message).

    The definition works unchanged for profiles holding negative
    frequencies: ranks index the ascending sorted array wherever it
    starts.

    >>> quantile_rank(0.0, 10), quantile_rank(1.0, 10)
    (0, 9)
    >>> quantile_rank(0.5, 8)  # lower median rank of 8 entries
    3
    """
    if not 0.0 <= q <= 1.0:
        raise CapacityError(f"quantile must be in [0, 1], got {q}")
    if size <= 0:
        raise EmptyProfileError("profile tracks zero objects")
    if q == 1.0:
        return size - 1
    return int(q * (size - 1))


@dataclass(frozen=True)
class ModeResult:
    """Answer to a mode / least-frequent query.

    ``count`` can be huge (e.g. every object ties at frequency zero), so
    the result carries one ``example`` object and the tie count instead of
    materializing all winners; use ``mode_objects()`` to enumerate them.
    ``count`` is ``None`` when the answering structure cannot report tie
    counts (a heap knows its root, not how many equal it).
    """

    frequency: int
    count: int | None
    example: int

    def is_unique(self) -> bool | None:
        """True when exactly one object attains this frequency.

        ``None`` when the tie count is unknown.
        """
        if self.count is None:
            return None
        return self.count == 1


class TopEntry(NamedTuple):
    """One ``(object, frequency)`` entry of a top-k / bottom-k answer."""

    obj: int
    frequency: int


class ProfileQueryMixin:
    """Order-statistic queries shared by live profiles and snapshots."""

    __slots__ = ()

    # Subclasses provide these attributes.
    _ttof: list[int]
    _ftot: list[int]
    _blocks: object

    # ------------------------------------------------------------------
    # Extremes
    # ------------------------------------------------------------------

    def mode(self) -> ModeResult:
        """Most frequent object(s): frequency, tie count, one example.

        O(1).  Paper Algorithm 1, steps 29-30.
        """
        block = self._blocks.rightmost()
        return ModeResult(
            frequency=block.f,
            count=block.r - block.l + 1,
            example=int(self._ttof[block.r]),
        )

    def least(self) -> ModeResult:
        """Least frequent object(s).  O(1).  Paper steps 29a-30a."""
        block = self._blocks.leftmost()
        return ModeResult(
            frequency=block.f,
            count=block.r - block.l + 1,
            example=int(self._ttof[block.l]),
        )

    def mode_objects(self, limit: int | None = None) -> list[int]:
        """All objects attaining the maximum frequency (up to ``limit``)."""
        block = self._blocks.rightmost()
        return self._objects_in_range(block.l, block.r, limit)

    def least_objects(self, limit: int | None = None) -> list[int]:
        """All objects attaining the minimum frequency (up to ``limit``)."""
        block = self._blocks.leftmost()
        return self._objects_in_range(block.l, block.r, limit)

    def majority(self) -> int | None:
        """The object occurring in more than half of the array, if any.

        Defined for non-negative profiles with at least one element; a
        majority is necessarily the unique mode, so this is O(1).
        Generalizes the Boyer-Moore majority query ([3] in the paper).
        """
        total = self.total
        if total <= 0:
            return None
        block = self._blocks.rightmost()
        if 2 * block.f > total:
            return int(self._ttof[block.r])
        return None

    # ------------------------------------------------------------------
    # Rank queries
    # ------------------------------------------------------------------

    def kth_most_frequent(self, k: int) -> TopEntry:
        """The object of k-th largest frequency (1-based, ties arbitrary).

        O(1): the paper locates it with ``PtrB[m - K + 1]`` (section 2.2).
        """
        m = self._capacity_checked()
        if not 1 <= k <= m:
            raise CapacityError(f"k must be in [1, {m}], got {k}")
        rank = m - k
        return TopEntry(int(self._ttof[rank]), self._blocks.block_at(rank).f)

    def top_k(self, k: int) -> list[TopEntry]:
        """The ``min(k, m)`` most frequent objects, descending.  O(k)."""
        if k < 0:
            raise CapacityError(f"k must be >= 0, got {k}")
        m = self._blocks.capacity
        count = min(k, m)
        ttof = self._ttof
        blocks = self._blocks
        out: list[TopEntry] = []
        rank = m - 1
        while len(out) < count:
            block = blocks.block_at(rank)
            f = block.f
            stop = max(block.l, rank - (count - len(out)) + 1)
            for position in range(rank, stop - 1, -1):
                out.append(TopEntry(int(ttof[position]), f))
            rank = block.l - 1
        return out

    def bottom_k(self, k: int) -> list[TopEntry]:
        """The ``min(k, m)`` least frequent objects, ascending.  O(k)."""
        if k < 0:
            raise CapacityError(f"k must be >= 0, got {k}")
        m = self._blocks.capacity
        count = min(k, m)
        ttof = self._ttof
        blocks = self._blocks
        out: list[TopEntry] = []
        rank = 0
        while len(out) < count:
            block = blocks.block_at(rank)
            f = block.f
            stop = min(block.r, rank + (count - len(out)) - 1)
            for position in range(rank, stop + 1):
                out.append(TopEntry(int(ttof[position]), f))
            rank = block.r + 1
        return out

    def frequency_at_rank(self, rank: int) -> int:
        """``T[rank]`` — the frequency at ascending sorted position."""
        return self._blocks.block_at(rank).f

    def object_at_rank(self, rank: int) -> int:
        """``TtoF[rank]`` — the object sitting at sorted position."""
        m = self._capacity_checked()
        if not 0 <= rank < m:
            raise CapacityError(f"rank {rank} out of range [0, {m})")
        return int(self._ttof[rank])

    def rank_of(self, obj: int) -> int:
        """``FtoT[obj]`` — the sorted position of an object.  O(1)."""
        self._check_object(obj)
        return int(self._ftot[obj])

    def frequency(self, obj: int) -> int:
        """Net occurrence count of ``obj``.  O(1)."""
        self._check_object(obj)
        return self._blocks.block_at(self._ftot[obj]).f

    def max_frequency(self) -> int:
        """The largest frequency (the mode's frequency).  O(1)."""
        return self._blocks.rightmost().f

    def min_frequency(self) -> int:
        """The smallest frequency.  O(1)."""
        return self._blocks.leftmost().f

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------

    def median_frequency(self) -> int:
        """Lower median of the frequency array (all ``m`` entries).  O(1).

        This is the query benchmarked against the balanced tree in the
        paper's section 3.2.
        """
        m = self._capacity_checked()
        return self._blocks.block_at((m - 1) // 2).f

    def quantile(self, q: float) -> int:
        """Frequency at quantile ``q`` in [0, 1].  O(1).

        Semantics per :func:`quantile_rank`: lower nearest-rank,
        ``q=0`` is the minimum, ``q=1`` the maximum.
        """
        m = self._capacity_checked()
        return self._blocks.block_at(quantile_rank(q, m)).f

    # ------------------------------------------------------------------
    # Distribution
    # ------------------------------------------------------------------

    def histogram(self) -> list[tuple[int, int]]:
        """``(frequency, #objects)`` pairs, ascending.  O(#blocks)."""
        return [
            (block.f, block.r - block.l + 1)
            for block in self._blocks.iter_blocks()
        ]

    def support(self, f: int) -> int:
        """Number of objects with frequency exactly ``f``."""
        block = self._blocks.block_for_frequency(f)
        if block is None:
            return 0
        return block.r - block.l + 1

    def objects_with_frequency(
        self, f: int, limit: int | None = None
    ) -> list[int]:
        """Objects whose frequency is exactly ``f`` (up to ``limit``)."""
        block = self._blocks.block_for_frequency(f)
        if block is None:
            return []
        return self._objects_in_range(block.l, block.r, limit)

    def iter_sorted(self) -> Iterator[TopEntry]:
        """Yield ``(object, frequency)`` in ascending frequency order."""
        ttof = self._ttof
        for block in self._blocks.iter_blocks():
            f = block.f
            for rank in range(block.l, block.r + 1):
                yield TopEntry(int(ttof[rank]), f)

    def heavy_hitters(self, phi: float) -> list[TopEntry]:
        """Objects whose frequency exceeds ``phi * total`` — *exactly*.

        The classic phi-heavy-hitters query that sketch structures
        (Count-Min, SpaceSaving) answer approximately; with the profile
        maintained it is exact in O(#hitters) via a descending block
        walk.  Requires positive total mass; ``phi`` in (0, 1].
        """
        if not 0.0 < phi <= 1.0:
            raise CapacityError(f"phi must be in (0, 1], got {phi}")
        total = self.total
        out: list[TopEntry] = []
        if total <= 0:
            return out
        threshold = phi * total
        ttof = self._ttof
        for block in self._blocks.iter_blocks_desc():
            if block.f <= threshold:
                break
            f = block.f
            for rank in range(block.r, block.l - 1, -1):
                out.append(TopEntry(int(ttof[rank]), f))
        return out

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _objects_in_range(
        self, l: int, r: int, limit: int | None
    ) -> list[int]:
        if limit is not None:
            if limit < 0:
                raise CapacityError(f"limit must be >= 0, got {limit}")
            r = min(r, l + limit - 1)
        segment = self._ttof[l : r + 1]
        # ndarray slice (array-engine profiles) -> plain int list.
        if hasattr(segment, "tolist"):
            return segment.tolist()
        return segment

    def _capacity_checked(self) -> int:
        m = self._blocks.capacity
        if m == 0:
            raise EmptyProfileError("profile tracks zero objects")
        return m

    def _check_object(self, obj: int) -> None:
        if not 0 <= obj < self._blocks.capacity:
            raise CapacityError(
                f"object id {obj} out of range [0, {self._blocks.capacity})"
            )

    # Subclasses override with maintained counters where available.
    @property
    def total(self) -> int:
        """Sum of all frequencies (= adds - removes = len of array A)."""
        return sum(
            block.f * (block.r - block.l + 1)
            for block in self._blocks.iter_blocks()
        )
