"""Unit tests for the flat struct-of-arrays engine.

The contract under test: :class:`repro.core.flat.FlatProfile` answers
*identically* to :class:`repro.core.profile.SProfile` on every stream
and through every entry point (per-event, fused loops, batches), while
its internal flat representation stays structurally sound (audited both
by its own invariant checker and by round-tripping the runs through a
real :class:`~repro.core.blockset.BlockSet`).
"""

import random

import pytest

from repro.core.blockset import BlockSet
from repro.core.checkpoint import (
    flat_profile_from_state,
    profile_from_state,
    profile_to_state,
)
from repro.core.flat import FlatProfile
from repro.core.profile import SProfile
from repro.core.validation import audit_profile
from repro.errors import (
    CapacityError,
    CheckpointError,
    EmptyProfileError,
    FrequencyUnderflowError,
)


def drive_pair(rng, m, count, p_add=0.65):
    """An (SProfile, FlatProfile) pair fed the same random events."""
    sp, fp = SProfile(m), FlatProfile(m)
    for _ in range(count):
        x = rng.randrange(m)
        if rng.random() < p_add:
            sp.add(x)
            fp.add(x)
        else:
            sp.remove(x)
            fp.remove(x)
    return sp, fp


def assert_same_answers(sp, fp):
    assert fp.frequencies() == sp.frequencies()
    assert fp.total == sp.total
    assert fp.histogram() == sp.histogram()
    assert fp.block_count == sp.block_count
    assert fp.active_count == sp.active_count
    if sp.capacity:
        assert fp.max_frequency() == sp.max_frequency()
        assert fp.min_frequency() == sp.min_frequency()
        assert fp.median_frequency() == sp.median_frequency()
        assert fp.mode().frequency == sp.mode().frequency
        assert fp.mode().count == sp.mode().count
        assert fp.least().frequency == sp.least().frequency
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert fp.quantile(q) == sp.quantile(q)
        top_f = [e.frequency for e in fp.top_k(5)]
        assert top_f == [e.frequency for e in sp.top_k(5)]
    for f in (-1, 0, 1, 2):
        assert fp.support(f) == sp.support(f)


class TestPerEventEquivalence:
    def test_random_streams_agree_and_audit(self):
        rng = random.Random(0xF1A7)
        for trial in range(25):
            m = rng.randrange(1, 24)
            sp, fp = drive_pair(rng, m, rng.randrange(0, 150))
            assert_same_answers(sp, fp)
            audit_profile(fp)
            fp.audit()

    def test_blockset_audit_parity(self):
        """The flat runs round-trip through a real BlockSet audit."""
        rng = random.Random(7)
        for _ in range(10):
            m = rng.randrange(1, 30)
            sp, fp = drive_pair(rng, m, 120)
            assert fp.blocks.as_tuples() == sp.blocks.as_tuples()
            # A BlockSet rebuilt from the flat runs must pass its own
            # (block-object) audit — the two representations describe
            # the same partition.
            rebuilt = BlockSet.from_runs(m, fp.blocks.as_tuples())
            rebuilt.audit()

    def test_counters_and_bounds(self):
        fp = FlatProfile(4)
        fp.add(0)
        fp.add(0)
        fp.remove(1)
        assert (fp.n_adds, fp.n_removes, fp.n_events) == (2, 1, 3)
        assert fp.total == 1
        with pytest.raises(CapacityError):
            fp.add(4)
        with pytest.raises(CapacityError):
            fp.remove(-1)

    def test_strict_mode(self):
        fp = FlatProfile(3, allow_negative=False)
        fp.add(0)
        fp.remove(0)
        with pytest.raises(FrequencyUnderflowError):
            fp.remove(0)
        assert fp.frequencies() == [0, 0, 0]

    def test_empty_profile(self):
        fp = FlatProfile(0)
        assert fp.frequencies() == []
        assert fp.histogram() == []
        assert fp.block_count == 0
        with pytest.raises(EmptyProfileError):
            fp.mode()
        with pytest.raises(EmptyProfileError):
            fp.max_frequency()


class TestFusedLoops:
    def test_consume_arrays_matches_per_event(self):
        rng = random.Random(21)
        for _ in range(15):
            m = rng.randrange(1, 40)
            n = rng.randrange(0, 300)
            ids = [rng.randrange(m) for _ in range(n)]
            adds = [rng.random() < 0.6 for _ in range(n)]
            ref = FlatProfile(m)
            for x, a in zip(ids, adds):
                ref.update(x, a)
            fused = FlatProfile(m)
            assert fused.consume_arrays(ids, adds) == n
            assert fused.frequencies() == ref.frequencies()
            assert fused.n_adds == ref.n_adds
            assert fused.n_removes == ref.n_removes
            fused.audit()

    def test_consume_arrays_numpy_input(self):
        np = pytest.importorskip("numpy")
        ids = np.array([0, 1, 1, 2], dtype=np.int64)
        adds = np.array([True, True, False, True])
        fp = FlatProfile(4)
        assert fp.consume_arrays(ids, adds) == 4
        assert fp.frequencies() == [1, 0, 1, 0]

    @pytest.mark.parametrize("rank_kind", ["top", "median", "bottom"])
    def test_track_statistic_matches_brute_force(self, rank_kind):
        rng = random.Random(hash(rank_kind) & 0xFFFF)
        m = 31
        rank = {"top": m - 1, "median": (m - 1) // 2, "bottom": 0}[rank_kind]
        ids = [rng.randrange(m) for _ in range(400)]
        adds = [rng.random() < 0.6 for _ in range(400)]
        fp = FlatProfile(m)
        got = fp.track_statistic(ids, adds, rank)
        ref = FlatProfile(m)
        ref.consume_arrays(ids, adds)
        assert got == ref.frequency_at_rank(rank) == fp.last_tracked
        fp.audit()

    def test_track_statistic_is_maintained_per_event(self):
        """Replaying prefixes: the tracked value equals the statistic
        after every event, not only at the end."""
        rng = random.Random(5)
        m = 9
        ids = [rng.randrange(m) for _ in range(60)]
        adds = [rng.random() < 0.6 for _ in range(60)]
        for cut in range(len(ids) + 1):
            fp = FlatProfile(m)
            got = fp.track_statistic(ids[:cut], adds[:cut], m - 1)
            assert got == fp.max_frequency()

    def test_track_statistic_validates_rank(self):
        fp = FlatProfile(4)
        with pytest.raises(CapacityError):
            fp.track_statistic([0], [True], 4)
        with pytest.raises(CapacityError):
            fp.track_statistic([0], [True], -1)

    def test_negative_id_rejects_batch_before_mutation(self):
        fp = FlatProfile(5)
        with pytest.raises(CapacityError):
            fp.consume_arrays([0, -2, 1], [True, True, True])
        assert fp.total == 0
        assert fp.n_events == 0

    def test_oversized_id_applies_prefix_like_consume(self):
        fp = FlatProfile(5)
        with pytest.raises(CapacityError):
            fp.consume_arrays([0, 1, 7, 2], [True, True, True, True])
        assert fp.frequencies() == [1, 1, 0, 0, 0]
        assert fp.n_adds == 2
        fp.audit()

    def test_length_mismatch(self):
        fp = FlatProfile(3)
        with pytest.raises(CapacityError):
            fp.consume_arrays([0, 1], [True])

    def test_strict_mode_fused_falls_back_to_guarded_loop(self):
        fp = FlatProfile(3, allow_negative=False)
        with pytest.raises(FrequencyUnderflowError):
            fp.consume_arrays([0, 0, 0], [True, False, False])
        # Event-at-a-time contract: the prefix before the raise applied.
        assert fp.frequency(0) == 0
        assert fp.n_events == 2
        got = fp.track_statistic([1, 1], [True, True], 2)
        assert got == fp.max_frequency() == 2


class TestBatchPaths:
    def test_add_many_remove_many_apply_match_sprofile(self):
        rng = random.Random(0xBA7C)
        for trial in range(20):
            m = rng.randrange(1, 30)
            sp, fp = SProfile(m), FlatProfile(m)
            for _ in range(rng.randrange(1, 5)):
                batch = [rng.randrange(m) for _ in range(rng.randrange(0, 60))]
                assert sp.add_many(batch) == fp.add_many(batch)
                removal = [
                    rng.randrange(m) for _ in range(rng.randrange(0, 20))
                ]
                assert sp.remove_many(removal) == fp.remove_many(removal)
                deltas = {
                    rng.randrange(m): rng.randrange(-4, 5)
                    for _ in range(rng.randrange(0, 8))
                }
                assert sp.apply(dict(deltas)) == fp.apply(dict(deltas))
            assert_same_answers(sp, fp)
            assert (sp.n_adds, sp.n_removes) == (fp.n_adds, fp.n_removes)
            audit_profile(fp)

    def test_batches_cross_the_rebuild_threshold(self):
        # Dense (vectorized rebuild) and sparse (climbs) both land on
        # the same frequencies.
        m = 10
        dense = list(range(m)) * 3
        sparse = [0, 0, 1]
        for batch in (dense, sparse):
            sp, fp = SProfile(m), FlatProfile(m)
            sp.add_many(batch)
            fp.add_many(batch)
            assert fp.frequencies() == sp.frequencies()
            fp.audit()

    def test_add_many_numpy_batch(self):
        np = pytest.importorskip("numpy")
        m = 50
        arr = np.random.default_rng(0).integers(0, m, 500)
        sp, fp = SProfile(m), FlatProfile(m)
        assert sp.add_many(arr) == fp.add_many(arr) == 500
        assert fp.frequencies() == sp.frequencies()
        assert fp.n_adds == 500
        fp.audit()

    def test_bad_ids_reject_whole_batch(self):
        fp = FlatProfile(4)
        for batch in ([1, 9], [1, -1]):
            with pytest.raises(CapacityError):
                fp.add_many(batch)
            with pytest.raises(CapacityError):
                fp.remove_many(batch)
        with pytest.raises(CapacityError):
            fp.apply({9: 1})
        assert fp.total == 0

    def test_strict_underflow_is_all_or_nothing(self):
        fp = FlatProfile(4, allow_negative=False)
        fp.add_many([0, 0, 1])
        with pytest.raises(FrequencyUnderflowError):
            fp.remove_many([0, 0, 0])
        with pytest.raises(FrequencyUnderflowError):
            fp.apply({0: -1, 1: -2})
        # Dense strict rejection (rebuild path) is atomic too.
        with pytest.raises(FrequencyUnderflowError):
            fp.remove_many([0, 0, 0, 1, 2, 3])
        assert fp.frequencies() == [2, 1, 0, 0]

    def test_add_count_remove_count(self):
        fp = FlatProfile(6)
        fp.add_count(2, 5)
        fp.remove_count(2, 2)
        assert fp.frequency(2) == 3
        with pytest.raises(CapacityError):
            fp.add_count(2, -1)
        strict = FlatProfile(3, allow_negative=False)
        with pytest.raises(FrequencyUnderflowError):
            strict.remove_count(0, 1)

    def test_apply_opposing_deltas_cancel(self):
        fp = FlatProfile(4)
        assert fp.apply([(1, +2), (1, -2)]) == 0
        assert fp.total == 0 and fp.n_events == 0


class TestStructureManagement:
    def test_from_frequencies_roundtrip(self):
        rng = random.Random(77)
        freqs = [rng.randrange(-3, 9) for _ in range(40)]
        fp = FlatProfile.from_frequencies(freqs)
        sp = SProfile.from_frequencies(freqs)
        assert fp.frequencies() == freqs
        assert fp.histogram() == sp.histogram()
        assert fp.total == sum(freqs)
        audit_profile(fp)

    def test_from_frequencies_strict_rejects_negative(self):
        with pytest.raises(FrequencyUnderflowError):
            FlatProfile.from_frequencies([1, -1], allow_negative=False)

    def test_from_frequencies_accepts_iterator(self):
        fp = FlatProfile.from_frequencies(iter([3, 0, 1]))
        assert fp.frequencies() == [3, 0, 1]

    def test_grow_matches_sprofile(self):
        rng = random.Random(13)
        for _ in range(8):
            m = rng.randrange(1, 12)
            sp, fp = drive_pair(rng, m, 60, p_add=0.5)
            extra = rng.randrange(1, 6)
            sp.grow(extra)
            fp.grow(extra)
            assert fp.frequencies() == sp.frequencies()
            audit_profile(fp)
        with pytest.raises(CapacityError):
            fp.grow(0)

    def test_clear_copy_snapshot(self):
        rng = random.Random(3)
        _, fp = drive_pair(rng, 9, 70)
        clone = fp.copy()
        snap = fp.snapshot()
        assert clone.frequencies() == fp.frequencies()
        assert snap.frequencies() == fp.frequencies()
        clone.add(0)
        assert clone.frequency(0) == fp.frequency(0) + 1
        before = fp.frequencies()
        assert snap.frequencies() == before
        fp.clear()
        assert fp.total == 0
        assert fp.frequencies() == [0] * 9
        assert fp.n_events == 0
        fp.audit()

    def test_block_slot_recycling_is_bounded(self):
        fp = FlatProfile(50)
        rng = random.Random(1)
        for _ in range(5_000):
            fp.update(rng.randrange(50), rng.random() < 0.5)
        # Slots are recycled through the intrusive free list: the
        # total ever minted stays bounded by the universe size.
        assert fp.block_slots <= 51
        assert fp.block_count + fp.free_slots == fp.block_slots
        fp.audit()


class TestFlatCheckpoint:
    def test_round_trip(self):
        rng = random.Random(0xC0DE)
        _, fp = drive_pair(rng, 12, 90)
        state = profile_to_state(fp)
        restored = flat_profile_from_state(state)
        assert isinstance(restored, FlatProfile)
        assert restored.frequencies() == fp.frequencies()
        assert restored.n_adds == fp.n_adds
        assert restored.n_removes == fp.n_removes
        assert restored.total == fp.total
        restored.audit()

    def test_cross_engine_restore(self):
        """One schema, either engine: a flat checkpoint restores into
        the block-object engine and vice versa."""
        rng = random.Random(0xAB)
        sp, fp = drive_pair(rng, 10, 80)
        as_sprofile = profile_from_state(profile_to_state(fp))
        assert isinstance(as_sprofile, SProfile)
        assert as_sprofile.frequencies() == fp.frequencies()
        as_flat = flat_profile_from_state(profile_to_state(sp))
        assert isinstance(as_flat, FlatProfile)
        assert as_flat.frequencies() == sp.frequencies()

    def test_corrupted_state_rejected(self):
        fp = FlatProfile(5)
        fp.add_many([1, 1, 2])
        state = profile_to_state(fp)
        bad = dict(state)
        bad["ttof"] = list(reversed(state["ttof"]))[1:]
        with pytest.raises(CheckpointError):
            flat_profile_from_state(bad)
        bad = dict(state)
        # Non-increasing run frequencies violate the block invariant.
        bad["runs"] = [[0, 2, 1], [3, 4, 0]]
        with pytest.raises(CheckpointError):
            flat_profile_from_state(bad)
        bad = dict(state)
        bad["runs"] = [[0, 2, 0]]  # gap: ranks 3-4 uncovered
        with pytest.raises(CheckpointError):
            flat_profile_from_state(bad)
        bad = dict(state)
        bad["version"] = 999
        with pytest.raises(CheckpointError):
            flat_profile_from_state(bad)
