"""Setuptools shim enabling legacy editable installs (no-network env)."""
from setuptools import setup

setup()
