"""Profiler over an order-statistic multiset of frequencies.

This is the paper's section 3.2 comparator: "the balanced tree based
method implemented in the GNU C++ PBDS".  The multiset holds the ``m``
frequency values; every ±1 event erases the old value and inserts the
new one (two O(log) operations), after which any quantile is an O(log)
k-th query.

Like the PBDS multiset, the structure orders frequencies only — it
cannot say *which* object attains a frequency, so object-naming queries
(mode example, top-k) are unsupported; S-Profile's ability to answer
them in O(1) is part of the paper's "wider applicability" claim.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.avl import AVLMultiset
from repro.baselines.base import ProfilerBase
from repro.baselines.fenwick import FenwickMultiset
from repro.baselines.skiplist import IndexableSkipList
from repro.baselines.sortedlist import SortedListMultiset
from repro.baselines.treap import TreapMultiset
from repro.core.queries import quantile_rank
from repro.errors import CapacityError

__all__ = ["TreeProfiler", "TREE_STRUCTURES"]

#: structure name -> bulk constructor taking the number of initial zeros.
TREE_STRUCTURES: dict[str, Callable[[int], object]] = {
    "treap": TreapMultiset.from_zeros,
    "avl": AVLMultiset.from_zeros,
    "skiplist": IndexableSkipList.from_zeros,
    "fenwick": FenwickMultiset.from_zeros,
    "sortedlist": SortedListMultiset.from_zeros,
}


class TreeProfiler(ProfilerBase):
    """Median/quantile upkeep with an order-statistic multiset.

    Parameters
    ----------
    capacity:
        Number of tracked objects; the multiset starts with ``capacity``
        zeros.
    structure:
        One of :data:`TREE_STRUCTURES`: ``"treap"``, ``"avl"``,
        ``"skiplist"``, ``"fenwick"`` or ``"sortedlist"``.
    """

    SUPPORTED_QUERIES = frozenset(
        {
            "frequency",
            "max_frequency",
            "min_frequency",
            "median",
            "quantile",
            "histogram",
            "support",
        }
    )

    name = "tree"

    def __init__(
        self,
        capacity: int,
        *,
        structure: str = "treap",
        allow_negative: bool = True,
    ) -> None:
        if structure not in TREE_STRUCTURES:
            raise CapacityError(
                f"unknown structure {structure!r}; "
                f"choose from {sorted(TREE_STRUCTURES)}"
            )
        super().__init__(capacity, allow_negative=allow_negative)
        self._structure = structure
        self._set = TREE_STRUCTURES[structure](capacity)
        self.name = f"tree-{structure}"

    @property
    def structure(self) -> str:
        return self._structure

    @property
    def multiset(self):
        """The underlying order-statistic multiset."""
        return self._set

    def _after_add(self, x: int, new_freq: int) -> None:
        self._set.erase_one(new_freq - 1)
        self._set.insert(new_freq)

    def _after_remove(self, x: int, new_freq: int) -> None:
        self._set.erase_one(new_freq + 1)
        self._set.insert(new_freq)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def max_frequency(self) -> int:
        self._capacity_checked()
        return self._set.max()

    def min_frequency(self) -> int:
        self._capacity_checked()
        return self._set.min()

    def median_frequency(self) -> int:
        m = self._capacity_checked()
        return self._set.kth((m - 1) // 2)

    def quantile(self, q: float) -> int:
        m = self._capacity_checked()
        return self._set.kth(quantile_rank(q, m))

    def histogram(self) -> list[tuple[int, int]]:
        return list(self._set.items())

    def support(self, f: int) -> int:
        return self._set.count_of(f)
