"""Unit tests for the observability layer.

The registry's exactness contracts (thread-exact counters, bucket-wise
histogram merges), the Prometheus text rendering, JSON hygiene for
status payloads, structured logging's two formats, the no-op mode, and
the `metrics` wire op + client-minted trace ids over a real served
socket.  The cross-tier trace propagation (client -> router ->
replica) lives in ``tests/integration/test_cluster_e2e.py``.
"""

import json
import logging
import threading

import pytest

from repro.api import Profiler
from repro.bench.reporting import percentiles
from repro.obs.prometheus import mangle, render_prometheus
from repro.obs.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    json_sanitize,
    merge_snapshots,
    mint_trace_id,
    null_registry,
    resolve_registry,
)
from repro.obs.structlog import configure_logging, log_event
from repro.server import ProfileClient, ServerThread


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc(3)
        assert reg.counter("a.b") is c
        assert reg.counter("a.b").value == 3

    def test_kind_conflict_is_a_hard_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_snapshot_is_sorted_and_sectioned(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc()
        reg.counter("a.count").inc(2)
        reg.gauge("depth").set(7)
        reg.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["gauges"] == {"depth": 7}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_detail_false_skips_buckets_and_percentiles(self):
        reg = MetricsRegistry()
        reg.histogram("lat", bounds=(1.0,)).observe(2.0)
        h = reg.snapshot(detail=False)["histograms"]["lat"]
        assert "buckets" not in h and "percentiles" not in h
        assert h["count"] == 1 and h["sum"] == 2.0

    def test_resolve_registry_knob(self):
        reg = MetricsRegistry()
        assert resolve_registry(reg) is reg
        assert resolve_registry(False) is null_registry
        assert resolve_registry(None).enabled in (True, False)
        with pytest.raises(ValueError, match="obs must be"):
            resolve_registry("yes")

    def test_mint_trace_id_is_16_hex_and_unique(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)


class TestCounterThreadExactness:
    def test_concurrent_increments_are_exact(self):
        c = Counter("hits")
        threads, per_thread = 8, 10_000
        barrier = threading.Barrier(threads)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                c.inc()

        ts = [threading.Thread(target=work) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert c.value == threads * per_thread


class TestHistogram:
    def test_percentiles_agree_with_bench_reporting(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        samples = [float(v) for v in range(1, 101)]
        for v in samples:
            h.observe(v)
        assert h.percentiles() == percentiles(samples, (50, 95, 99))
        snap = h.snapshot()
        assert snap["percentiles"]["p99"] == percentiles(samples)[99]

    def test_bucket_counts_partition_the_observations(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 50.0):
            h.observe(v)
        # bisect_left: <=1.0 -> slot 0, (1.0, 10.0] -> slot 1, rest
        # overflow.  Exactly one slot per observation.
        assert sum(h.counts) == h.count == 4
        assert h.vmin == 0.5 and h.vmax == 50.0

    def test_reservoir_keeps_the_recent_window(self):
        h = Histogram("lat", bounds=(1.0,), sample_cap=4)
        for v in range(10):
            h.observe(float(v))
        assert len(h.samples) == 4
        assert h.count == 10
        assert set(h.samples) <= {float(v) for v in range(10)}

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError, match="bucket bounds"):
            Histogram("lat", bounds=())


class TestMergeSnapshots:
    def test_counters_add_gauges_add_histograms_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        a.gauge("depth").set(5)
        b.gauge("depth").set(2)
        for reg, values in ((a, (0.5, 2.0)), (b, (20.0,))):
            h = reg.histogram("lat", bounds=(1.0, 10.0))
            for v in values:
                h.observe(v)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 7
        assert merged["gauges"]["depth"] == 7
        h = merged["histograms"]["lat"]
        assert h["count"] == 3
        assert h["min"] == 0.5 and h["max"] == 20.0
        # Bucket-wise: one <=1.0, one <=10.0, one overflow.
        assert [n for _b, n in h["buckets"]] == [1, 1, 1]

    def test_merge_matches_per_worker_registries(self):
        # The parallel engine's contract in miniature: workers count
        # privately, the parent folds exactly.
        workers = [MetricsRegistry() for _ in range(4)]
        for i, reg in enumerate(workers):
            reg.counter("events").inc(10 * (i + 1))
        merged = merge_snapshots(reg.snapshot() for reg in workers)
        assert merged["counters"]["events"] == 10 + 20 + 30 + 40

    def test_empty_snapshots_are_ignored(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        assert merge_snapshots([{}, reg.snapshot(), {}])["counters"] == {
            "n": 1
        }


class TestNullMode:
    def test_null_instruments_are_shared_noops(self):
        reg = NullRegistry()
        assert not reg.enabled
        assert reg.counter("a") is reg.counter("b")
        reg.counter("a").inc(5)
        reg.gauge("g").set(9)
        reg.histogram("h").observe(1.0)
        reg.spans.record("stage", trace="t")
        assert reg.counter("a").value == 0
        assert reg.snapshot() == {}
        assert reg.spans.snapshot() == []

    def test_facade_obs_false_snapshot_is_empty(self):
        with Profiler.open(100, backend="flat", obs=False) as p:
            p.ingest([(1, 2), (3, 1)])
            assert p.metrics_snapshot() == {}
        # Zero registry allocations per ingest: the null registry
        # never materializes instruments, so its instrument table is
        # empty after the whole facade lifecycle counted into it.
        assert null_registry._instruments == {}
        assert len(null_registry.spans) == 0

    def test_facade_obs_registry_counts_ingest(self):
        reg = MetricsRegistry()
        with Profiler.open(100, backend="flat", obs=reg) as p:
            p.ingest([(1, 2), (3, 1)])
            snap = p.metrics_snapshot()
        assert snap["counters"]["profiler.ingest.batches"] == 1
        assert snap["counters"]["profiler.ingest.events"] == 2


class TestApproxErrorGauges:
    def test_observed_error_state_is_scrapeable(self):
        reg = MetricsRegistry()
        with Profiler.open(
            backend="approx", keys="hashable", counters=8, obs=reg
        ) as p:
            p.ingest([(f"k{i}", 1) for i in range(100)])
            snap = p.metrics_snapshot()
        gauges = snap["gauges"]
        assert gauges["approx.countmin.error_bound"] >= 0
        assert gauges["approx.countmin.eps_estimate"] >= 0
        # 100 distinct keys over 8 monitors: evictions must have
        # inflated some estimate.
        assert gauges["approx.spacesaving.max_overcount"] > 0


class TestPrometheusRender:
    def test_mangle(self):
        assert mangle("server.ingest.events") == "repro_server_ingest_events"
        assert mangle("2pc.commits") == "repro__2pc_commits"

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("server.ingest.events").inc(5)
        reg.gauge("server.queue.depth").set(3)
        h = reg.histogram("lat_ms", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(reg.snapshot(), labels={"tier": "server"})
        lines = text.splitlines()
        assert "# TYPE repro_server_ingest_events_total counter" in lines
        assert (
            'repro_server_ingest_events_total{tier="server"} 5' in lines
        )
        assert 'repro_server_queue_depth{tier="server"} 3' in lines
        # Histogram buckets are cumulative and end at +Inf == count.
        assert 'repro_lat_ms_bucket{tier="server",le="1"} 1' in lines
        assert 'repro_lat_ms_bucket{tier="server",le="10"} 2' in lines
        assert 'repro_lat_ms_bucket{tier="server",le="+Inf"} 3' in lines
        assert 'repro_lat_ms_count{tier="server"} 3' in lines
        assert text.endswith("\n")

    def test_empty_snapshot_is_a_valid_scrape(self):
        assert render_prometheus({}) == ""


class TestJsonSanitize:
    def test_numpy_scalars_become_native(self):
        np = pytest.importorskip("numpy")
        out = json_sanitize(
            {"seq": np.int64(7), "lag": np.float64(0.5), "ok": True}
        )
        assert out == {"lag": 0.5, "ok": True, "seq": 7}
        assert type(out["seq"]) is int and type(out["lag"]) is float

    def test_keys_sorted_and_containers_normalized(self):
        out = json_sanitize({"b": (1, 2), "a": {3, 1}})
        assert list(out) == ["a", "b"]
        assert out == {"a": [1, 3], "b": [1, 2]}
        json.dumps(out)  # strictly serializable


class TestStructuredLogging:
    def _capture(self, log_format):
        import io

        stream = io.StringIO()
        logger = configure_logging(log_format, stream=stream)
        return logging.getLogger("repro.server"), stream, logger

    def test_plain_format_is_the_bare_message(self):
        log, stream, _ = self._capture("plain")
        log_event(log, "listening on 127.0.0.1:7421", event="listening")
        assert stream.getvalue() == "listening on 127.0.0.1:7421\n"

    def test_json_format_is_sorted_objects_with_fields(self):
        log, stream, _ = self._capture("json")
        log_event(log, "drained: 3 batches", event="drained", batches=3)
        doc = json.loads(stream.getvalue())
        assert doc["msg"] == "drained: 3 batches"
        assert doc["event"] == "drained" and doc["batches"] == 3
        assert list(doc) == sorted(doc)

    def test_reconfigure_never_stacks_handlers(self):
        _, _, root = self._capture("plain")
        for _ in range(3):
            root = configure_logging("json")
        assert len(root.handlers) == 1
        configure_logging("plain")  # leave the tree in default shape

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown log format"):
            configure_logging("yaml")


class TestServedMetricsAndTrace:
    @pytest.fixture()
    def served(self):
        reg = MetricsRegistry()
        prof = Profiler.open(1000, backend="flat", obs=reg)
        with ServerThread(prof, obs=reg, linger_ms=0.5) as server:
            yield server

    def test_metrics_wire_op_returns_the_registry(self, served):
        with ProfileClient(served.host, served.port) as client:
            client.ingest([(1, 2), (2, 1)])
            snap = client.metrics()
        assert snap["metrics"]["counters"]["server.ingest.batches"] >= 1
        assert snap["metrics"]["counters"]["server.ingest.events"] >= 2
        json.dumps(snap)  # wire payloads are strictly JSON-clean

    def test_client_minted_trace_id_stamps_spans(self, served):
        with ProfileClient(served.host, served.port, trace=True) as client:
            trace = client.trace
            assert trace and len(trace) == 16
            client.ingest([(5, 3)])
            spans = client.metrics()["spans"]
        named = {s["name"] for s in spans if s.get("trace") == trace}
        assert "server.hello" in named
        assert "server.queue_wait" in named

    def test_explicit_trace_id_passes_through(self, served):
        with ProfileClient(
            served.host, served.port, trace="feedfacecafebeef"
        ) as client:
            assert client.trace == "feedfacecafebeef"
            client.ingest([(1, 1)])
            spans = client.metrics()["spans"]
        assert any(s.get("trace") == "feedfacecafebeef" for s in spans)

    def test_untraced_client_has_no_trace(self, served):
        with ProfileClient(served.host, served.port) as client:
            assert client.trace is None
            client.ingest([(1, 1)])

    def test_noop_server_answers_metrics_empty(self):
        prof = Profiler.open(100, backend="flat", obs=False)
        with ServerThread(prof, obs=False) as server:
            with ProfileClient(server.host, server.port) as client:
                client.ingest([(1, 1)])
                snap = client.metrics()
        assert snap["metrics"] == {}
        assert snap["spans"] == []
