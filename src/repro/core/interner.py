"""Mapping of arbitrary hashable ids onto dense integers.

The paper assumes object ids are integers in ``[1, m]`` ("for any m
distinct objects, we can map them into the integers from 1 to m as ids",
section 2).  :class:`ObjectInterner` is that mapping: first-come
first-served dense assignment, O(1) both ways.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import UnknownObjectError

__all__ = ["ObjectInterner"]


class ObjectInterner:
    """Bidirectional map ``external id <-> dense int`` with O(1) lookups."""

    __slots__ = ("_to_dense", "_to_external")

    def __init__(self) -> None:
        self._to_dense: dict[Hashable, int] = {}
        self._to_external: list[Hashable] = []

    def intern(self, obj: Hashable) -> int:
        """Return the dense id of ``obj``, assigning the next one if new."""
        dense = self._to_dense.get(obj)
        if dense is None:
            dense = len(self._to_external)
            self._to_dense[obj] = dense
            self._to_external.append(obj)
        return dense

    def lookup(self, obj: Hashable) -> int:
        """Dense id of a known object; raise if never interned."""
        dense = self._to_dense.get(obj)
        if dense is None:
            raise UnknownObjectError(obj)
        return dense

    def get(self, obj: Hashable) -> int | None:
        """Dense id of ``obj`` or ``None`` (no registration side effect)."""
        return self._to_dense.get(obj)

    def external(self, dense: int) -> Hashable:
        """External id for a dense id; raise on out-of-range."""
        if not 0 <= dense < len(self._to_external):
            raise UnknownObjectError(dense)
        return self._to_external[dense]

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._to_dense

    def __len__(self) -> int:
        return len(self._to_external)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._to_external)

    def items(self) -> Iterator[tuple[Hashable, int]]:
        """Yield ``(external, dense)`` pairs in registration order."""
        for dense, obj in enumerate(self._to_external):
            yield obj, dense

    def __repr__(self) -> str:
        return f"ObjectInterner(size={len(self._to_external)})"
