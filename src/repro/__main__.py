"""``python -m repro`` — command-line front door.

Subcommands
-----------
``bench``
    Regenerate the paper's figures (see ``repro.bench.cli``).
``profile``
    Run a named workload through S-Profile and print a statistics
    summary — a quick way to see the library work end to end.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.cli import main as bench_main
from repro.bench.workloads import WORKLOAD_NAMES, build_stream
from repro.core.profile import SProfile
from repro.core.stats import summarize


def _profile_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Profile a synthetic log stream with S-Profile.",
    )
    parser.add_argument(
        "--stream", default="stream1", choices=WORKLOAD_NAMES
    )
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--universe", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=10)
    args = parser.parse_args(argv)

    stream = build_stream(
        args.stream, args.events, args.universe, seed=args.seed
    )
    profile = SProfile(args.universe)
    profile.consume_arrays(*stream.arrays())

    print(f"stream={args.stream} events={len(stream):,} "
          f"universe={args.universe:,}")
    print(summarize(profile))
    mode = profile.mode()
    print(
        f"mode: object {mode.example} at frequency {mode.frequency} "
        f"({mode.count} object(s) tie)"
    )
    least = profile.least()
    print(
        f"least: object {least.example} at frequency {least.frequency} "
        f"({least.count} object(s) tie)"
    )
    print(f"top-{args.top}:")
    for rank, entry in enumerate(profile.top_k(args.top), start=1):
        print(f"  {rank:>3}. object {entry.obj:>8}  freq {entry.frequency}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("usage: python -m repro {bench,profile} ...")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "bench":
        return bench_main(rest)
    if command == "profile":
        return _profile_main(rest)
    print(f"unknown command {command!r}; use 'bench' or 'profile'",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
