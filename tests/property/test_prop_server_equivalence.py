"""Property: the server is indistinguishable from a direct facade.

Random event streams are cut into wire batches, spread over several
concurrent pipelining clients and pushed through an in-process
:class:`~repro.server.service.ProfileServer` with a small
``batch_max`` (so flush boundaries land mid-stream constantly).  Every
ingest ack carries ``seq`` — the server's serialization order — so the
reference is exact: a directly-driven facade fed the same wire batches
one ``ingest()`` at a time in seq order must

- accept and reject exactly the same wire batches (same error types,
  same ``applied`` counts: rejections are all-or-nothing per wire
  batch, whatever flush they were coalesced into), and
- end in the same state — compared bit-for-bit via the dense frequency
  array for the exact dense backends (through a server checkpoint
  download, which exercises that path too) and via the full fused
  query surface everywhere.

This is the contract that makes micro-batching an *optimization*
rather than a semantics change.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Profiler, Query
from repro.server import AsyncProfileClient, ProfileServer

# Small batch_max + nonzero linger: flushes constantly split and merge
# wire batches from different clients.
SERVER_KNOBS = dict(batch_max=5, linger_ms=2.0)

DASHBOARD = (
    Query.mode(),
    Query.least(),
    Query.top_k(3),
    Query.histogram(),
    Query.quantile(0.5),
    Query.support(0),
    Query.total(),
    Query.active_count(),
)


def wire_batches(keys):
    """Lists of wire batches of (key, delta) pairs."""
    pair = st.tuples(keys, st.integers(min_value=-3, max_value=3))
    batch = st.lists(pair, min_size=1, max_size=6)
    return st.lists(batch, min_size=1, max_size=14)


async def drive_server(profiler, batches, n_clients, codecs=None):
    """Push ``batches`` round-robin over ``n_clients`` pipelining
    clients; return per-batch outcomes and the final server view.

    ``codecs`` optionally names each client's wire codec (``"json"``,
    ``"binary"`` or ``"auto"``) — mixed lists exercise JSON and binary
    connections coalescing into the *same* server flushes."""
    async with ProfileServer(profiler, **SERVER_KNOBS) as server:
        clients = [
            await AsyncProfileClient.connect(
                port=server.port,
                codec="json" if codecs is None else codecs[i],
            )
            for i in range(n_clients)
        ]
        futures = []
        for i, batch in enumerate(batches):
            futures.append(
                await clients[i % n_clients].ingest(batch, wait=False)
            )
        outcomes = []
        for batch, future in zip(batches, futures):
            try:
                ack = await future
                outcomes.append((ack["seq"], batch, ack["applied"], None))
            except Exception as exc:  # noqa: BLE001 - compared by type
                outcomes.append(
                    (exc.remote_seq, batch, None, type(exc))
                )
        try:
            state = await clients[0].checkpoint()
        except Exception:  # noqa: BLE001 - baselines don't checkpoint
            state = None
        try:
            answers = await clients[0].evaluate(*DASHBOARD)
        except Exception as exc:  # noqa: BLE001 - compared by type
            answers = type(exc)
        for client in clients:
            await client.aclose()
        return outcomes, state, answers


def replay_reference(make_profiler, outcomes):
    """Apply the same wire batches directly, in server seq order."""
    reference = make_profiler()
    for _seq, batch, applied, error_type in sorted(
        outcomes, key=lambda o: o[0]
    ):
        if error_type is None:
            assert reference.ingest(batch) == applied
        else:
            try:
                reference.ingest(batch)
            except error_type:
                pass
            else:
                raise AssertionError(
                    f"server rejected {batch} with {error_type.__name__} "
                    f"but the facade accepted it"
                )
    return reference


def assert_same_answers(server_answers, reference):
    if isinstance(server_answers, type):
        # The server's evaluate raised (e.g. EmptyProfileError on a
        # zero-object universe); the reference must raise identically.
        try:
            reference.evaluate(*DASHBOARD)
        except server_answers:
            return
        raise AssertionError(
            f"server raised {server_answers.__name__} but the facade "
            f"answered"
        )
    expected = reference.evaluate(*DASHBOARD)
    for query, value in server_answers:
        ref_value = expected[query]
        if query.kind in ("mode", "least"):
            assert (value.frequency, value.count) == (
                ref_value.frequency,
                ref_value.count,
            )
        elif query.kind == "top_k":
            assert [e.frequency for e in value] == [
                e.frequency for e in ref_value
            ]
        else:
            assert value == ref_value, query


def check_equivalence(make_profiler, batches, n_clients, codecs=None):
    outcomes, state, answers = asyncio.run(
        drive_server(make_profiler(), batches, n_clients, codecs)
    )
    assert all(seq is not None for seq, *_ in outcomes)
    reference = replay_reference(make_profiler, outcomes)
    assert_same_answers(answers, reference)
    return state, reference


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=12),
    backend=st.sampled_from(["flat", "exact", "sharded"]),
    strict=st.booleans(),
    n_clients=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_dense_backends_bit_identical(
    capacity, backend, strict, n_clients, data
):
    # Out-of-range ids included: bad-id rejections must also isolate.
    keys = st.integers(min_value=-2, max_value=capacity + 2)
    batches = data.draw(wire_batches(keys))
    shards = 2 if backend == "sharded" else None

    def make_profiler():
        return Profiler.open(
            capacity, backend=backend, shards=shards, strict=strict
        )

    state, reference = check_equivalence(
        make_profiler, batches, n_clients
    )
    # Bit-identical state, via the wire checkpoint.
    assert Profiler.from_state(state).frequencies() == (
        reference.frequencies()
    )


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=4),
    mode=st.sampled_from(["interned", "dynamic"]),
    strict=st.booleans(),
    n_clients=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_hashable_backends_equivalent(
    capacity, mode, strict, n_clients, data
):
    # More distinct keys than interned capacity: registration-order
    # capacity overflows must match the reference exactly.
    keys = st.sampled_from(["a", "b", "c", "d", "e", 7])
    batches = data.draw(wire_batches(keys))

    def make_profiler():
        if mode == "interned":
            return Profiler.open(
                capacity, backend="flat", keys="hashable", strict=strict
            )
        return Profiler.open(keys="hashable", strict=strict)

    state, reference = check_equivalence(
        make_profiler, batches, n_clients
    )
    restored = Profiler.from_state(state)
    for key in ("a", "b", "c", "d", "e", 7):
        assert restored.frequency(key) == reference.frequency(key)


@settings(max_examples=10, deadline=None)
@given(
    n_clients=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_sequential_strategy_baseline_equivalent(n_clients, data):
    """Registry baselines take the no-coalescing path; same contract."""
    keys = st.integers(min_value=-1, max_value=8)
    batches = data.draw(wire_batches(keys))

    def make_profiler():
        return Profiler.open(8, backend="bucket")

    check_equivalence(make_profiler, batches, n_clients)


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=12),
    backend=st.sampled_from(["flat", "exact", "sharded"]),
    strict=st.booleans(),
    codecs=st.lists(
        st.sampled_from(["json", "binary", "auto"]),
        min_size=1,
        max_size=3,
    ),
    data=st.data(),
)
def test_codec_matrix_bit_identical(capacity, backend, strict, codecs, data):
    """The codec is invisible to semantics: any mix of JSON and binary
    connections — pipelining, coalescing into shared flushes, strict
    rejections included — replays in seq order to the same bits as a
    directly driven facade."""
    pytest.importorskip("numpy")
    # Out-of-range ids ride binary frames too: the server, not the
    # codec, must reject them (all-or-nothing, isolated per batch).
    keys = st.integers(min_value=-2, max_value=capacity + 2)
    batches = data.draw(wire_batches(keys))
    shards = 2 if backend == "sharded" else None

    def make_profiler():
        return Profiler.open(
            capacity, backend=backend, shards=shards, strict=strict
        )

    state, reference = check_equivalence(
        make_profiler, batches, len(codecs), codecs
    )
    # Bit-identical state, via the wire checkpoint.
    assert Profiler.from_state(state).frequencies() == (
        reference.frequencies()
    )
