"""Keep the documentation examples executable."""

import doctest

import pytest

import repro.apps.click_analytics
import repro.apps.leaderboard
import repro.apps.median_service
import repro.apps.topk_tracker
import repro.approx.spacesaving
import repro.core.dynamic
import repro.core.profile
import repro.engine.service
import repro.engine.sharding

MODULES = [
    repro.apps.click_analytics,
    repro.apps.leaderboard,
    repro.apps.median_service,
    repro.apps.topk_tracker,
    repro.approx.spacesaving,
    repro.core.dynamic,
    repro.core.profile,
    repro.engine.service,
    repro.engine.sharding,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0  # the module must actually carry examples
