"""Checkpointing: serialize a profiler to a plain dict and back.

The state format is JSON-safe (ints, lists, strings only) and versioned.
Restoring audits the rebuilt structure, so a corrupted or hand-edited
checkpoint fails loudly with :class:`~repro.errors.CheckpointError`
instead of silently producing wrong statistics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.flat import FlatProfile
from repro.core.profile import SProfile
from repro.core.validation import audit_profile
from repro.errors import CheckpointError, InvariantViolationError

__all__ = [
    "STATE_VERSION",
    "profile_to_state",
    "profile_from_state",
    "flat_profile_from_state",
    "save_profile",
    "load_profile",
]

#: Bump when the state layout changes incompatibly.
STATE_VERSION = 1

_REQUIRED_KEYS = frozenset(
    {
        "version",
        "capacity",
        "allow_negative",
        "track_freq_index",
        "ttof",
        "runs",
        "n_adds",
        "n_removes",
    }
)


def profile_to_state(profile) -> dict[str, Any]:
    """Capture the full state of a profiler as a JSON-safe dict.

    Works on any profiler exposing the block-structured contract —
    :class:`~repro.core.profile.SProfile` and
    :class:`~repro.core.flat.FlatProfile` share one schema, so a
    checkpoint written by either engine restores into either
    (:func:`profile_from_state` / :func:`flat_profile_from_state`).
    """
    return {
        "version": STATE_VERSION,
        "capacity": profile.capacity,
        "allow_negative": profile.allow_negative,
        "track_freq_index": profile.blocks.tracks_freq_index,
        "ttof": list(profile._ttof),
        "runs": [list(run) for run in profile.blocks.as_tuples()],
        "n_adds": profile.n_adds,
        "n_removes": profile.n_removes,
    }


def _restore(state: dict[str, Any], install):
    """Shared validate/install/re-anchor/audit pipeline of both engines.

    ``install(ttof, runs, state)`` builds and returns the profile from
    the validated permutation and runs; everything around it — schema
    checks, counter restoration, the base-total re-anchor, and the
    post-restore audit — is engine-independent, so the two restore
    paths cannot drift.
    """
    if not isinstance(state, dict):
        raise CheckpointError(
            f"state must be a dict, got {type(state).__name__}"
        )
    missing = _REQUIRED_KEYS - state.keys()
    if missing:
        raise CheckpointError(f"state is missing keys: {sorted(missing)}")
    if state["version"] != STATE_VERSION:
        raise CheckpointError(
            f"state version {state['version']} unsupported "
            f"(expected {STATE_VERSION})"
        )
    capacity = state["capacity"]
    ttof = state["ttof"]
    runs = state["runs"]
    if not isinstance(capacity, int) or capacity < 0:
        raise CheckpointError(f"bad capacity: {capacity!r}")
    if len(ttof) != capacity:
        raise CheckpointError(
            f"ttof length {len(ttof)} != capacity {capacity}"
        )

    try:
        profile = install(
            [int(x) for x in ttof],
            [tuple(int(v) for v in run) for run in runs],
            state,
        )
    except (InvariantViolationError, ValueError, TypeError, IndexError) as exc:
        raise CheckpointError(
            f"state does not describe a valid profile: {exc}"
        ) from exc

    profile._n_adds = int(state["n_adds"])
    profile._n_removes = int(state["n_removes"])
    # Re-anchor the total: current block mass minus net event delta
    # gives the mass the profile carried before its first event.
    total = 0
    for block in profile.blocks.iter_blocks():
        total += block.f * (block.r - block.l + 1)
    profile._base_total = total - (profile._n_adds - profile._n_removes)

    try:
        audit_profile(profile)
    except InvariantViolationError as exc:
        raise CheckpointError(f"restored profile failed audit: {exc}") from exc
    return profile


def profile_from_state(state: dict[str, Any]) -> SProfile:
    """Rebuild a block-object profiler from :func:`profile_to_state`
    output.  Validates structure before and after the rebuild.
    """

    def install(ttof, runs, st):
        profile = SProfile(0, allow_negative=bool(st["allow_negative"]))
        profile._install(
            ttof,
            runs,
            allow_negative=bool(st["allow_negative"]),
            track_freq_index=bool(st["track_freq_index"]),
        )
        return profile

    return _restore(state, install)


def flat_profile_from_state(state: dict[str, Any]) -> FlatProfile:
    """Rebuild a :class:`~repro.core.flat.FlatProfile` from
    :func:`profile_to_state` output (same schema as the block-object
    engine; ``track_freq_index`` is accepted and ignored — the flat
    engine answers ``support`` from the run walk).

    Validates structure before and after the rebuild.
    """

    def install(ttof, runs, st):
        profile = FlatProfile(
            0, allow_negative=bool(st["allow_negative"])
        )
        profile._install_runs(ttof, runs)
        return profile

    return _restore(state, install)


def save_profile(profile: SProfile, path: str | Path) -> None:
    """Write a profiler's state to ``path`` as JSON."""
    state = profile_to_state(profile)
    Path(path).write_text(json.dumps(state, separators=(",", ":")))


def load_profile(path: str | Path) -> SProfile:
    """Load a profiler previously written by :func:`save_profile`."""
    try:
        state = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
    return profile_from_state(state)
