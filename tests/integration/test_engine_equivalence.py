"""Integration: the engine agrees with the sequential profile on the
paper's workloads and on the adversarial streams.

The property suite covers small random cases exhaustively; this file
drives the real stream generators at size — batched ingestion through
:class:`ProfileService` against a per-event :class:`SProfile`, across
shard counts, on streams chosen to stress both bulk strategies
(dense rebuilds on uniform streams, long climbs on single-hot).
"""

import pytest

from repro.bench.workloads import build_stream
from repro.core.profile import SProfile
from repro.engine.service import ProfileService
from repro.engine.sharding import ShardedProfiler

# This module drives the legacy shim on purpose; the facade's own
# equivalence coverage lives in tests/property/test_prop_api_equivalence.
pytestmark = pytest.mark.filterwarnings(
    "ignore:ProfileService is deprecated:DeprecationWarning"
)

UNIVERSE = 300
N_EVENTS = 6_000
BATCH = 512

STREAMS = ("stream1", "stream2", "stream3", "single-hot", "staircase")


@pytest.mark.parametrize("stream_name", STREAMS)
@pytest.mark.parametrize("n_shards", (1, 4))
def test_batched_sharded_service_matches_sequential(stream_name, n_shards):
    stream = build_stream(stream_name, N_EVENTS, UNIVERSE, seed=23)
    ids, adds = stream.ids.tolist(), stream.adds.tolist()

    sequential = SProfile(UNIVERSE)
    sequential.consume_arrays(ids, adds)

    service = ProfileService(UNIVERSE, n_shards=n_shards)
    for start in range(0, N_EVENTS, BATCH):
        service.submit_arrays(
            ids[start : start + BATCH], adds[start : start + BATCH]
        )

    service.profiler.audit()
    freqs = sequential.frequencies()
    sorted_freqs = sorted(freqs)
    assert service.profiler.frequencies() == freqs
    assert service.total == sequential.total
    assert service.histogram() == sequential.histogram()
    assert service.median_frequency() == sorted_freqs[(UNIVERSE - 1) // 2]
    assert service.mode().frequency == max(freqs)
    assert [e.frequency for e in service.top_k(25)] == (
        sorted_freqs[::-1][:25]
    )
    assert sorted(service.heavy_hitters(0.05)) == sorted(
        sequential.heavy_hitters(0.05)
    )
    assert service.events_ingested == N_EVENTS


@pytest.mark.parametrize("stream_name", ("stream2", "root-thrash"))
def test_checkpoint_mid_stream_resumes_identically(stream_name):
    """Checkpoint at half-stream, restore, finish: same final answers."""
    stream = build_stream(stream_name, N_EVENTS, UNIVERSE, seed=5)
    ids, adds = stream.ids.tolist(), stream.adds.tolist()
    half = N_EVENTS // 2

    straight = ProfileService(UNIVERSE, n_shards=3)
    straight.submit_arrays(ids, adds)

    first_leg = ProfileService(UNIVERSE, n_shards=3)
    first_leg.submit_arrays(ids[:half], adds[:half])
    resumed = ProfileService.from_state(first_leg.to_state())
    resumed.submit_arrays(ids[half:], adds[half:])

    assert resumed.profiler.frequencies() == (
        straight.profiler.frequencies()
    )
    assert resumed.histogram() == straight.histogram()
    assert resumed.total == straight.total


def test_sharded_batch_equals_sharded_per_event_at_size():
    stream = build_stream("stream3", N_EVENTS, UNIVERSE, seed=31)
    ids, adds = stream.ids.tolist(), stream.adds.tolist()

    per_event = ShardedProfiler(UNIVERSE, n_shards=5)
    per_event.consume_arrays(ids, adds)

    batched = ShardedProfiler(UNIVERSE, n_shards=5)
    batched.apply(
        [(x, 1 if a else -1) for x, a in zip(ids, adds)]
    )

    assert batched.frequencies() == per_event.frequencies()
    assert batched.histogram() == per_event.histogram()
    batched.audit()
