"""Fused query plans vs separate calls (emits BENCH_query_plan.json).

The dashboard read pattern: mode + top-10 + histogram + p50 + p99,
refreshed together.  Standalone calls traverse the block structure once
per statistic — on the sharded backend every order statistic is a full
O(n_shards + total blocks) merge, so four calls pay for the merge
several times over.  ``Profiler.evaluate`` fuses all four into one
descending run walk (one walk per shard), which is the structural win
measured here.

On the flat exact backend most standalone queries are O(1)/O(k)
pointer reads (that is the paper's point), so fusion only saves the
histogram's walk; both shapes are reported for honesty, but the
speedup acceptance is asserted on the sharded engine where the merge
dominates.

Timings are min-of-N wall clock (no pytest-benchmark dependency so the
module can emit its JSON artifact in one shot).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_query_plan.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import Profiler, Query
from repro.bench.workloads import build_stream

UNIVERSE = 20_000
N_EVENTS = 60_000
SHARDS = 8
ROUNDS = 7

ARTIFACT = Path(__file__).resolve().parent / "BENCH_query_plan.json"

PLAN = (
    Query.mode(),
    Query.top_k(10),
    Query.histogram(),
    Query.quantile(0.5),
    Query.quantile(0.99),
)


def _loaded_profiler(backend: str, **kwargs) -> Profiler:
    profiler = Profiler.open(UNIVERSE, backend=backend, **kwargs)
    stream = build_stream("stream1", N_EVENTS, UNIVERSE, seed=7)
    ids, adds = stream.arrays()
    profiler.ingest(zip(ids.tolist(), adds.tolist()))
    return profiler


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _separate(profiler: Profiler) -> None:
    profiler.mode()
    profiler.top_k(10)
    profiler.histogram()
    profiler.quantile(0.5)
    profiler.quantile(0.99)


def _fused(profiler: Profiler) -> None:
    profiler.evaluate(*PLAN)


def _measure(backend: str, **kwargs) -> dict:
    profiler = _loaded_profiler(backend, **kwargs)
    # Answers must agree before timings mean anything.
    fused = profiler.evaluate(*PLAN)
    assert fused[Query.mode()] == profiler.mode()
    assert fused[Query.top_k(10)] == profiler.top_k(10)
    assert fused[Query.histogram()] == profiler.histogram()
    assert fused[Query.quantile(0.5)] == profiler.quantile(0.5)
    assert fused[Query.quantile(0.99)] == profiler.quantile(0.99)
    separate_s = _best_of(lambda: _separate(profiler))
    fused_s = _best_of(lambda: _fused(profiler))
    return {
        "backend": profiler.backend_name,
        "shards": profiler.n_shards,
        "universe": UNIVERSE,
        "events": N_EVENTS,
        "queries": [q.key for q in PLAN],
        "separate_s": separate_s,
        "fused_s": fused_s,
        "speedup": separate_s / fused_s if fused_s else float("inf"),
    }


def test_fused_plan_beats_separate_calls_on_sharded_engine():
    """Acceptance: one merged walk beats four independent merges."""
    sharded = _measure("sharded", shards=SHARDS)
    exact = _measure("exact")

    ARTIFACT.write_text(
        json.dumps({"results": [sharded, exact]}, indent=2)
    )
    print(
        f"\nsharded: separate {sharded['separate_s'] * 1e3:.2f} ms, "
        f"fused {sharded['fused_s'] * 1e3:.2f} ms "
        f"({sharded['speedup']:.2f}x)"
    )
    print(
        f"exact:   separate {exact['separate_s'] * 1e3:.2f} ms, "
        f"fused {exact['fused_s'] * 1e3:.2f} ms "
        f"({exact['speedup']:.2f}x)"
    )
    assert sharded["speedup"] > 1.2, sharded
