"""Unit tests for the warm-standby router (`repro.cluster.standby`).

Everything runs in-process: replicas are real `ProfileServer`s on
loopback, the primary `ClusterRouter` journals to a real WAL on
tmp_path, and the `StandbyRouter` tails the same directory.  "Killing"
the primary aborts its transports and tasks without releasing the
lease — indistinguishable from `kill -9` as far as the standby's
death detection is concerned.  Subprocess-grade coverage (real
SIGKILL, supervisor generations) lives in
tests/integration/test_cluster_failover.py.
"""

import asyncio

import pytest

from repro.api.facade import Profiler
from repro.cluster import ClusterRouter, StandbyRouter, partition_capacity
from repro.errors import CapacityError, FencedWriterError
from repro.server.client import AsyncProfileClient
from repro.server.service import ProfileServer

CAPACITY = 20


class InProcessSupervisor:
    """Replica tier as in-process servers (duck-types the real one)."""

    def __init__(self, m, n_parts):
        self.m = m
        self.n = n_parts
        self.cells = [None] * n_parts
        self.staged = None
        self.generation = 0

    async def start(self):
        for p in range(self.n):
            self.cells[p] = await self._spawn(p, self.n)
        return self

    async def _spawn(self, p, n):
        profiler = Profiler.open(
            partition_capacity(self.m, p, n), backend="flat"
        )
        server = ProfileServer(
            profiler, port=0, role="replica", partition=(p, n),
            linger_ms=0.2,
        )
        await server.start()
        return (server, profiler)

    @property
    def endpoints(self):
        return [(srv.host, srv.port) for srv, _ in self.cells]

    async def ensure_replica(self, p):
        server, _profiler = self.cells[p]
        if server._server is None or not server._server.is_serving():
            self.cells[p] = await self._spawn(p, self.n)
            server, _profiler = self.cells[p]
        return (server.host, server.port)

    async def spawn_generation(self, n_new):
        assert self.staged is None
        cells = [await self._spawn(q, n_new) for q in range(n_new)]
        self.staged = (n_new, cells)
        return [(srv.host, srv.port) for srv, _ in cells]

    async def commit_generation(self):
        n_new, cells = self.staged
        self.staged = None
        old = self.cells
        self.n = n_new
        self.cells = cells
        self.generation += 1
        await self._stop_cells(old)

    async def abort_generation(self):
        if self.staged is None:
            return
        _n, cells = self.staged
        self.staged = None
        await self._stop_cells(cells)

    @staticmethod
    async def _stop_cells(cells):
        for server, profiler in cells:
            try:
                await server.stop()
            except Exception:
                pass
            profiler.close()

    async def stop(self):
        cells = list(self.cells)
        if self.staged is not None:
            cells.extend(self.staged[1])
        await self._stop_cells(cells)


async def kill_router(router):
    """In-process SIGKILL: abort every transport and task, leave the
    lease un-released and the WAL handle dangling, exactly like a dead
    process would."""
    if router._server is not None:
        router._server.close()
    for task in list(router._reader_tasks):
        task.cancel()
    if router._flusher is not None:
        router._flusher.cancel()
    if router._lease_task is not None:
        router._lease_task.cancel()
    for conn in list(router._conns):
        conn.writer.transport.abort()
    for client in router._clients.values():
        client.abort()


def make_primary(sup, wal_dir, **kw):
    kw.setdefault("snapshot_every", 3)
    kw.setdefault("batch_max", 4)
    kw.setdefault("linger_ms", 0.5)
    kw.setdefault("lease_interval", 0.1)
    return ClusterRouter(
        CAPACITY, supervisor=sup, journal_dir=wal_dir, port=0, **kw
    )


def make_standby(sup, wal_dir, **kw):
    kw.setdefault("lease_timeout", 0.4)
    kw.setdefault("poll_interval", 0.05)
    kw.setdefault("probe_timeout", 0.2)
    kw.setdefault("snapshot_every", 3)
    kw.setdefault("batch_max", 4)
    kw.setdefault("linger_ms", 0.5)
    kw.setdefault("lease_interval", 0.1)
    return StandbyRouter(
        CAPACITY, wal_dir, endpoints=sup.endpoints, port=0, **kw
    )


def reference_state(batches):
    with Profiler.open(CAPACITY, backend="flat") as ref:
        for batch in batches:
            ref.ingest(batch)
        return ref.frequencies()


async def checkpoint_freqs(client):
    state = await client.checkpoint()
    with Profiler.from_state(state) as restored:
        return restored.frequencies()


class TestValidation:
    def test_needs_exactly_one_replica_source(self, tmp_path):
        with pytest.raises(CapacityError):
            StandbyRouter(CAPACITY, tmp_path)
        with pytest.raises(CapacityError):
            StandbyRouter(
                CAPACITY, tmp_path, supervisor=object(), endpoints=[]
            )

    def test_rejects_bad_timeouts(self, tmp_path):
        with pytest.raises(CapacityError):
            StandbyRouter(
                CAPACITY, tmp_path, endpoints=[("h", 1)], lease_timeout=0
            )
        with pytest.raises(CapacityError):
            StandbyRouter(
                CAPACITY, tmp_path, endpoints=[("h", 1)], poll_interval=-1
            )


class TestFailover:
    def test_killed_primary_promotes_with_zero_acked_loss(self, tmp_path):
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            primary = make_primary(sup, tmp_path)
            await primary.start()
            client = await AsyncProfileClient.connect(
                primary.host, primary.port
            )
            acked = []
            for i in range(10):
                batch = [(i % CAPACITY, 1), ((i * 7) % CAPACITY, 2)]
                await client.ingest(batch)
                acked.append(batch)
            client.abort()

            standby = await make_standby(sup, tmp_path).start()
            await asyncio.sleep(0.2)  # tail follows while primary lives
            assert not standby.promoted
            await kill_router(primary)
            await standby.wait_promoted(timeout=10.0)
            assert "lease stale" in standby.promote_reason
            router2 = standby.router
            assert router2.wal_info["epoch"] == 2

            c2 = await AsyncProfileClient.connect(
                router2.host, router2.port
            )
            # Every acked event survived the failover ...
            assert await checkpoint_freqs(c2) == reference_state(acked)
            # ... and ingest resumes under the new epoch.
            await c2.ingest([(3, 5)])
            assert await checkpoint_freqs(c2) == reference_state(
                acked + [[(3, 5)]]
            )
            await c2.aclose()
            await standby.stop()
            await sup.stop()

        asyncio.run(scenario())

    def test_graceful_drain_promotes_without_waiting(self, tmp_path):
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            primary = make_primary(sup, tmp_path)
            await primary.start()
            client = await AsyncProfileClient.connect(
                primary.host, primary.port
            )
            await client.ingest([(1, 4), (2, 1)])
            await client.aclose()

            # A long lease_timeout would stall a crash takeover for
            # 30s; a *released* lease must not wait at all.
            standby = await make_standby(
                sup, tmp_path, lease_timeout=30.0
            ).start()
            await primary.stop()  # graceful: releases the lease
            await standby.wait_promoted(timeout=10.0)
            assert "lease released" in standby.promote_reason

            c2 = await AsyncProfileClient.connect(
                standby.router.host, standby.router.port
            )
            assert await checkpoint_freqs(c2) == reference_state(
                [[(1, 4), (2, 1)]]
            )
            await c2.aclose()
            await standby.stop()
            await sup.stop()

        asyncio.run(scenario())

    def test_live_primary_is_left_alone(self, tmp_path):
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            # Primary heartbeats slower than the standby's timeout: the
            # lease goes stale, but the health probe still connects, so
            # the standby must not move.
            primary = make_primary(sup, tmp_path, lease_interval=5.0)
            await primary.start()
            standby = await make_standby(
                sup, tmp_path, lease_timeout=0.2
            ).start()
            await asyncio.sleep(0.8)
            assert not standby.promoted
            await standby.stop()
            await primary.stop()
            await sup.stop()

        asyncio.run(scenario())


class TestSplitBrain:
    def test_fenced_primary_cannot_ack(self, tmp_path):
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            primary = make_primary(sup, tmp_path, lease_interval=60.0)
            await primary.start()
            client = await AsyncProfileClient.connect(
                primary.host, primary.port
            )
            acked = []
            for i in range(6):
                batch = [(i % CAPACITY, 1)]
                await client.ingest(batch)
                acked.append(batch)

            # Operator-forced promotion while the primary is ALIVE —
            # the worst case fencing exists for.
            standby = await make_standby(sup, tmp_path).start()
            router2 = await standby.promote()
            assert router2.wal_info["epoch"] > primary.wal_info["epoch"]

            # The deposed primary's next ack-gating sync hits the
            # higher-epoch lease and dies instead of acking.
            lost = [(7, 100)]
            with pytest.raises(ConnectionError):
                await client.ingest(lost)
            assert primary.crashed
            client.abort()

            # The promoted router serves every pre-fence ack and none
            # of the fenced writer's unacked residue.
            c2 = await AsyncProfileClient.connect(
                router2.host, router2.port
            )
            assert await checkpoint_freqs(c2) == reference_state(acked)
            await c2.aclose()
            await standby.stop()
            await sup.stop()

        asyncio.run(scenario())

    def test_fenced_wal_sync_raises(self, tmp_path):
        # The primitive under the behavior above, asserted directly.
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            primary = make_primary(sup, tmp_path, lease_interval=60.0)
            await primary.start()
            standby = await make_standby(sup, tmp_path).start()
            await standby.promote()
            # The fence trips at the first durability step it can —
            # segment open or the ack-gating sync, whichever comes
            # first for this WAL's state.
            with pytest.raises(FencedWriterError):
                primary._wal.append_entry(0, 99, [1], [1])
                primary._wal.sync()
            await kill_router(primary)
            await standby.stop()
            await sup.stop()

        asyncio.run(scenario())


class TestPromotionMechanics:
    def test_concurrent_promotes_collapse(self, tmp_path):
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            primary = make_primary(sup, tmp_path)
            await primary.start()
            await primary.stop()
            standby = await make_standby(sup, tmp_path).start()
            first, second = await asyncio.gather(
                standby.promote(), standby.promote()
            )
            assert first is second is standby.router
            await standby.stop()
            await sup.stop()

        asyncio.run(scenario())

    def test_promote_after_stop_refuses(self, tmp_path):
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            standby = await make_standby(sup, tmp_path).start()
            await standby.stop()
            with pytest.raises(RuntimeError):
                await standby.promote()
            await sup.stop()

        asyncio.run(scenario())

    def test_wait_promoted_times_out(self, tmp_path):
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            standby = await make_standby(sup, tmp_path).start()
            with pytest.raises(asyncio.TimeoutError):
                await standby.wait_promoted(timeout=0.05)
            await standby.stop()
            await sup.stop()

        asyncio.run(scenario())

    def test_describe_tracks_role_and_tail(self, tmp_path):
        async def scenario():
            sup = await InProcessSupervisor(CAPACITY, 2).start()
            primary = make_primary(sup, tmp_path)
            await primary.start()
            client = await AsyncProfileClient.connect(
                primary.host, primary.port
            )
            await client.ingest([(1, 1)])
            await client.aclose()

            standby = await make_standby(sup, tmp_path).start()
            await asyncio.sleep(0.2)
            info = standby.describe()
            assert info["role"] == "standby"
            assert not info["promoted"]
            assert info["lease_epoch"] == 1
            assert info["tail"]["seq"] == 1

            # The primary's health report sees the follower's cursor.
            health = primary.health_info()
            readers = [s["reader"] for s in health["standbys"]]
            assert "standby" in readers

            await primary.stop()
            await standby.wait_promoted(timeout=10.0)
            info = standby.describe()
            assert info["promoted"]
            assert info["lease_epoch"] == 2
            assert "promote_reason" in info
            await standby.stop()
            await sup.stop()

        asyncio.run(scenario())
