"""Unit tests for the flat struct-of-arrays engine.

The contract under test: :class:`repro.core.flat.FlatProfile` answers
*identically* to :class:`repro.core.profile.SProfile` on every stream
and through every entry point (per-event, fused loops, batches), while
its internal flat representation stays structurally sound (audited both
by its own invariant checker and by round-tripping the runs through a
real :class:`~repro.core.blockset.BlockSet`).
"""

import random

import pytest

from repro.core.blockset import BlockSet
from repro.core.checkpoint import (
    flat_profile_from_state,
    profile_from_state,
    profile_to_state,
)
from repro.core.flat import FlatProfile
from repro.core.profile import SProfile
from repro.core.validation import audit_profile
from repro.errors import (
    CapacityError,
    CheckpointError,
    EmptyProfileError,
    FrequencyUnderflowError,
)


def drive_pair(rng, m, count, p_add=0.65):
    """An (SProfile, FlatProfile) pair fed the same random events."""
    sp, fp = SProfile(m), FlatProfile(m)
    for _ in range(count):
        x = rng.randrange(m)
        if rng.random() < p_add:
            sp.add(x)
            fp.add(x)
        else:
            sp.remove(x)
            fp.remove(x)
    return sp, fp


def assert_same_answers(sp, fp):
    assert fp.frequencies() == sp.frequencies()
    assert fp.total == sp.total
    assert fp.histogram() == sp.histogram()
    assert fp.block_count == sp.block_count
    assert fp.active_count == sp.active_count
    if sp.capacity:
        assert fp.max_frequency() == sp.max_frequency()
        assert fp.min_frequency() == sp.min_frequency()
        assert fp.median_frequency() == sp.median_frequency()
        assert fp.mode().frequency == sp.mode().frequency
        assert fp.mode().count == sp.mode().count
        assert fp.least().frequency == sp.least().frequency
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert fp.quantile(q) == sp.quantile(q)
        top_f = [e.frequency for e in fp.top_k(5)]
        assert top_f == [e.frequency for e in sp.top_k(5)]
    for f in (-1, 0, 1, 2):
        assert fp.support(f) == sp.support(f)


class TestPerEventEquivalence:
    def test_random_streams_agree_and_audit(self):
        rng = random.Random(0xF1A7)
        for trial in range(25):
            m = rng.randrange(1, 24)
            sp, fp = drive_pair(rng, m, rng.randrange(0, 150))
            assert_same_answers(sp, fp)
            audit_profile(fp)
            fp.audit()

    def test_blockset_audit_parity(self):
        """The flat runs round-trip through a real BlockSet audit."""
        rng = random.Random(7)
        for _ in range(10):
            m = rng.randrange(1, 30)
            sp, fp = drive_pair(rng, m, 120)
            assert fp.blocks.as_tuples() == sp.blocks.as_tuples()
            # A BlockSet rebuilt from the flat runs must pass its own
            # (block-object) audit — the two representations describe
            # the same partition.
            rebuilt = BlockSet.from_runs(m, fp.blocks.as_tuples())
            rebuilt.audit()

    def test_counters_and_bounds(self):
        fp = FlatProfile(4)
        fp.add(0)
        fp.add(0)
        fp.remove(1)
        assert (fp.n_adds, fp.n_removes, fp.n_events) == (2, 1, 3)
        assert fp.total == 1
        with pytest.raises(CapacityError):
            fp.add(4)
        with pytest.raises(CapacityError):
            fp.remove(-1)

    def test_strict_mode(self):
        fp = FlatProfile(3, allow_negative=False)
        fp.add(0)
        fp.remove(0)
        with pytest.raises(FrequencyUnderflowError):
            fp.remove(0)
        assert fp.frequencies() == [0, 0, 0]

    def test_empty_profile(self):
        fp = FlatProfile(0)
        assert fp.frequencies() == []
        assert fp.histogram() == []
        assert fp.block_count == 0
        with pytest.raises(EmptyProfileError):
            fp.mode()
        with pytest.raises(EmptyProfileError):
            fp.max_frequency()


class TestFusedLoops:
    def test_consume_arrays_matches_per_event(self):
        rng = random.Random(21)
        for _ in range(15):
            m = rng.randrange(1, 40)
            n = rng.randrange(0, 300)
            ids = [rng.randrange(m) for _ in range(n)]
            adds = [rng.random() < 0.6 for _ in range(n)]
            ref = FlatProfile(m)
            for x, a in zip(ids, adds):
                ref.update(x, a)
            fused = FlatProfile(m)
            assert fused.consume_arrays(ids, adds) == n
            assert fused.frequencies() == ref.frequencies()
            assert fused.n_adds == ref.n_adds
            assert fused.n_removes == ref.n_removes
            fused.audit()

    def test_consume_arrays_numpy_input(self):
        np = pytest.importorskip("numpy")
        ids = np.array([0, 1, 1, 2], dtype=np.int64)
        adds = np.array([True, True, False, True])
        fp = FlatProfile(4)
        assert fp.consume_arrays(ids, adds) == 4
        assert fp.frequencies() == [1, 0, 1, 0]

    @pytest.mark.parametrize("rank_kind", ["top", "median", "bottom"])
    def test_track_statistic_matches_brute_force(self, rank_kind):
        rng = random.Random(hash(rank_kind) & 0xFFFF)
        m = 31
        rank = {"top": m - 1, "median": (m - 1) // 2, "bottom": 0}[rank_kind]
        ids = [rng.randrange(m) for _ in range(400)]
        adds = [rng.random() < 0.6 for _ in range(400)]
        fp = FlatProfile(m)
        got = fp.track_statistic(ids, adds, rank)
        ref = FlatProfile(m)
        ref.consume_arrays(ids, adds)
        assert got == ref.frequency_at_rank(rank) == fp.last_tracked
        fp.audit()

    def test_track_statistic_is_maintained_per_event(self):
        """Replaying prefixes: the tracked value equals the statistic
        after every event, not only at the end."""
        rng = random.Random(5)
        m = 9
        ids = [rng.randrange(m) for _ in range(60)]
        adds = [rng.random() < 0.6 for _ in range(60)]
        for cut in range(len(ids) + 1):
            fp = FlatProfile(m)
            got = fp.track_statistic(ids[:cut], adds[:cut], m - 1)
            assert got == fp.max_frequency()

    def test_track_statistic_validates_rank(self):
        fp = FlatProfile(4)
        with pytest.raises(CapacityError):
            fp.track_statistic([0], [True], 4)
        with pytest.raises(CapacityError):
            fp.track_statistic([0], [True], -1)

    def test_negative_id_rejects_batch_before_mutation(self):
        fp = FlatProfile(5)
        with pytest.raises(CapacityError):
            fp.consume_arrays([0, -2, 1], [True, True, True])
        assert fp.total == 0
        assert fp.n_events == 0

    def test_oversized_id_applies_prefix_like_consume(self):
        fp = FlatProfile(5)
        with pytest.raises(CapacityError):
            fp.consume_arrays([0, 1, 7, 2], [True, True, True, True])
        assert fp.frequencies() == [1, 1, 0, 0, 0]
        assert fp.n_adds == 2
        fp.audit()

    def test_length_mismatch(self):
        fp = FlatProfile(3)
        with pytest.raises(CapacityError):
            fp.consume_arrays([0, 1], [True])

    def test_strict_mode_fused_falls_back_to_guarded_loop(self):
        fp = FlatProfile(3, allow_negative=False)
        with pytest.raises(FrequencyUnderflowError):
            fp.consume_arrays([0, 0, 0], [True, False, False])
        # Event-at-a-time contract: the prefix before the raise applied.
        assert fp.frequency(0) == 0
        assert fp.n_events == 2
        got = fp.track_statistic([1, 1], [True, True], 2)
        assert got == fp.max_frequency() == 2


class TestBatchPaths:
    def test_add_many_remove_many_apply_match_sprofile(self):
        rng = random.Random(0xBA7C)
        for trial in range(20):
            m = rng.randrange(1, 30)
            sp, fp = SProfile(m), FlatProfile(m)
            for _ in range(rng.randrange(1, 5)):
                batch = [rng.randrange(m) for _ in range(rng.randrange(0, 60))]
                assert sp.add_many(batch) == fp.add_many(batch)
                removal = [
                    rng.randrange(m) for _ in range(rng.randrange(0, 20))
                ]
                assert sp.remove_many(removal) == fp.remove_many(removal)
                deltas = {
                    rng.randrange(m): rng.randrange(-4, 5)
                    for _ in range(rng.randrange(0, 8))
                }
                assert sp.apply(dict(deltas)) == fp.apply(dict(deltas))
            assert_same_answers(sp, fp)
            assert (sp.n_adds, sp.n_removes) == (fp.n_adds, fp.n_removes)
            audit_profile(fp)

    def test_batches_cross_the_rebuild_threshold(self):
        # Dense (vectorized rebuild) and sparse (climbs) both land on
        # the same frequencies.
        m = 10
        dense = list(range(m)) * 3
        sparse = [0, 0, 1]
        for batch in (dense, sparse):
            sp, fp = SProfile(m), FlatProfile(m)
            sp.add_many(batch)
            fp.add_many(batch)
            assert fp.frequencies() == sp.frequencies()
            fp.audit()

    def test_add_many_numpy_batch(self):
        np = pytest.importorskip("numpy")
        m = 50
        arr = np.random.default_rng(0).integers(0, m, 500)
        sp, fp = SProfile(m), FlatProfile(m)
        assert sp.add_many(arr) == fp.add_many(arr) == 500
        assert fp.frequencies() == sp.frequencies()
        assert fp.n_adds == 500
        fp.audit()

    def test_bad_ids_reject_whole_batch(self):
        fp = FlatProfile(4)
        for batch in ([1, 9], [1, -1]):
            with pytest.raises(CapacityError):
                fp.add_many(batch)
            with pytest.raises(CapacityError):
                fp.remove_many(batch)
        with pytest.raises(CapacityError):
            fp.apply({9: 1})
        assert fp.total == 0

    def test_strict_underflow_is_all_or_nothing(self):
        fp = FlatProfile(4, allow_negative=False)
        fp.add_many([0, 0, 1])
        with pytest.raises(FrequencyUnderflowError):
            fp.remove_many([0, 0, 0])
        with pytest.raises(FrequencyUnderflowError):
            fp.apply({0: -1, 1: -2})
        # Dense strict rejection (rebuild path) is atomic too.
        with pytest.raises(FrequencyUnderflowError):
            fp.remove_many([0, 0, 0, 1, 2, 3])
        assert fp.frequencies() == [2, 1, 0, 0]

    def test_add_count_remove_count(self):
        fp = FlatProfile(6)
        fp.add_count(2, 5)
        fp.remove_count(2, 2)
        assert fp.frequency(2) == 3
        with pytest.raises(CapacityError):
            fp.add_count(2, -1)
        strict = FlatProfile(3, allow_negative=False)
        with pytest.raises(FrequencyUnderflowError):
            strict.remove_count(0, 1)

    def test_apply_opposing_deltas_cancel(self):
        fp = FlatProfile(4)
        assert fp.apply([(1, +2), (1, -2)]) == 0
        assert fp.total == 0 and fp.n_events == 0


class TestStructureManagement:
    def test_from_frequencies_roundtrip(self):
        rng = random.Random(77)
        freqs = [rng.randrange(-3, 9) for _ in range(40)]
        fp = FlatProfile.from_frequencies(freqs)
        sp = SProfile.from_frequencies(freqs)
        assert fp.frequencies() == freqs
        assert fp.histogram() == sp.histogram()
        assert fp.total == sum(freqs)
        audit_profile(fp)

    def test_from_frequencies_strict_rejects_negative(self):
        with pytest.raises(FrequencyUnderflowError):
            FlatProfile.from_frequencies([1, -1], allow_negative=False)

    def test_from_frequencies_accepts_iterator(self):
        fp = FlatProfile.from_frequencies(iter([3, 0, 1]))
        assert fp.frequencies() == [3, 0, 1]

    def test_grow_matches_sprofile(self):
        rng = random.Random(13)
        for _ in range(8):
            m = rng.randrange(1, 12)
            sp, fp = drive_pair(rng, m, 60, p_add=0.5)
            extra = rng.randrange(1, 6)
            sp.grow(extra)
            fp.grow(extra)
            assert fp.frequencies() == sp.frequencies()
            audit_profile(fp)
        with pytest.raises(CapacityError):
            fp.grow(0)

    def test_clear_copy_snapshot(self):
        rng = random.Random(3)
        _, fp = drive_pair(rng, 9, 70)
        clone = fp.copy()
        snap = fp.snapshot()
        assert clone.frequencies() == fp.frequencies()
        assert snap.frequencies() == fp.frequencies()
        clone.add(0)
        assert clone.frequency(0) == fp.frequency(0) + 1
        before = fp.frequencies()
        assert snap.frequencies() == before
        fp.clear()
        assert fp.total == 0
        assert fp.frequencies() == [0] * 9
        assert fp.n_events == 0
        fp.audit()

    def test_block_slot_recycling_is_bounded(self):
        fp = FlatProfile(50)
        rng = random.Random(1)
        for _ in range(5_000):
            fp.update(rng.randrange(50), rng.random() < 0.5)
        # Slots are recycled through the intrusive free list: the
        # total ever minted stays bounded by the universe size.
        assert fp.block_slots <= 51
        assert fp.block_count + fp.free_slots == fp.block_slots
        fp.audit()


class TestFlatCheckpoint:
    def test_round_trip(self):
        rng = random.Random(0xC0DE)
        _, fp = drive_pair(rng, 12, 90)
        state = profile_to_state(fp)
        restored = flat_profile_from_state(state)
        assert isinstance(restored, FlatProfile)
        assert restored.frequencies() == fp.frequencies()
        assert restored.n_adds == fp.n_adds
        assert restored.n_removes == fp.n_removes
        assert restored.total == fp.total
        restored.audit()

    def test_cross_engine_restore(self):
        """One schema, either engine: a flat checkpoint restores into
        the block-object engine and vice versa."""
        rng = random.Random(0xAB)
        sp, fp = drive_pair(rng, 10, 80)
        as_sprofile = profile_from_state(profile_to_state(fp))
        assert isinstance(as_sprofile, SProfile)
        assert as_sprofile.frequencies() == fp.frequencies()
        as_flat = flat_profile_from_state(profile_to_state(sp))
        assert isinstance(as_flat, FlatProfile)
        assert as_flat.frequencies() == sp.frequencies()

    def test_corrupted_state_rejected(self):
        fp = FlatProfile(5)
        fp.add_many([1, 1, 2])
        state = profile_to_state(fp)
        bad = dict(state)
        bad["ttof"] = list(reversed(state["ttof"]))[1:]
        with pytest.raises(CheckpointError):
            flat_profile_from_state(bad)
        bad = dict(state)
        # Non-increasing run frequencies violate the block invariant.
        bad["runs"] = [[0, 2, 1], [3, 4, 0]]
        with pytest.raises(CheckpointError):
            flat_profile_from_state(bad)
        bad = dict(state)
        bad["runs"] = [[0, 2, 0]]  # gap: ranks 3-4 uncovered
        with pytest.raises(CheckpointError):
            flat_profile_from_state(bad)
        bad = dict(state)
        bad["version"] = 999
        with pytest.raises(CheckpointError):
            flat_profile_from_state(bad)


class TestArrayEngine:
    """`array_engine=True`: same structure, numpy-buffer storage.

    Equivalence is asserted against the list engine (itself pinned to
    SProfile above), plus the array-specific contracts: in-place batch
    installs, amortized-doubling slot growth, zero-copy state export,
    and external-buffer attachment.
    """

    def drive_pair(self, rng, m, count, p_add=0.65):
        pytest.importorskip("numpy")
        lp = FlatProfile(m)
        ap = FlatProfile(m, array_engine=True)
        for _ in range(count):
            x = rng.randrange(m)
            if rng.random() < p_add:
                lp.add(x)
                ap.add(x)
            else:
                lp.remove(x)
                ap.remove(x)
        return lp, ap

    def test_per_event_equivalence(self, rng):
        lp, ap = self.drive_pair(rng, 80, 4000)
        assert ap.array_engine and ap.owns_buffers
        assert lp.frequencies() == ap.frequencies()
        assert lp.histogram() == ap.histogram()
        assert lp.total == ap.total
        ap.audit()
        audit_profile(ap)

    def test_fused_loops_equivalence(self, rng):
        np = pytest.importorskip("numpy")
        m = 64
        lp = FlatProfile(m)
        ap = FlatProfile(m, array_engine=True)
        ids = np.array([rng.randrange(m) for _ in range(6000)])
        adds = np.array([rng.random() < 0.7 for _ in range(6000)])
        assert lp.consume_arrays(ids, adds) == ap.consume_arrays(ids, adds)
        assert lp.track_statistic(ids, adds, m - 1) == ap.track_statistic(
            ids, adds, m - 1
        )
        assert lp.track_statistic(ids, adds, m // 2) == ap.track_statistic(
            ids, adds, m // 2
        )
        assert lp.frequencies() == ap.frequencies()
        assert lp.n_events == ap.n_events
        ap.audit()

    def test_fused_fault_persists_prefix(self):
        np = pytest.importorskip("numpy")
        ap = FlatProfile(8, array_engine=True)
        ids = np.array([1, 2, 99, 3])
        adds = np.array([True, True, True, True])
        with pytest.raises(CapacityError):
            ap.consume_arrays(ids, adds)
        # The applied prefix survived the fault (consume's contract).
        assert ap.frequency(1) == 1 and ap.frequency(2) == 1
        assert ap.frequency(3) == 0
        ap.audit()

    def test_batch_paths_equivalence(self, rng):
        np = pytest.importorskip("numpy")
        m = 50
        lp = FlatProfile(m)
        ap = FlatProfile(m, array_engine=True)
        dense = np.array([rng.randrange(m) for _ in range(4000)])
        assert lp.add_many(dense) == ap.add_many(dense)
        sparse = [3, 3, 7]
        assert lp.add_many(sparse) == ap.add_many(sparse)
        assert lp.remove_many(sparse) == ap.remove_many(sparse)
        deltas = [(rng.randrange(m), rng.randrange(-3, 4)) for _ in range(25)]
        assert lp.apply(deltas) == ap.apply(deltas)
        assert lp.frequencies() == ap.frequencies()
        assert lp.total == ap.total
        ap.audit()

    def test_queries_return_plain_ints(self, rng):
        _, ap = self.drive_pair(rng, 40, 800)
        assert type(ap.frequency(3)) is int
        assert type(ap.max_frequency()) is int
        assert type(ap.mode().example) is int
        entry = ap.top_k(3)[0]
        assert type(entry.obj) is int and type(entry.frequency) is int
        f, count = ap.histogram()[0]
        assert type(f) is int and type(count) is int

    def test_slot_growth_doubles_amortized(self):
        pytest.importorskip("numpy")
        m = 512
        ap = FlatProfile(m, array_engine=True)
        assert len(ap._bl) == 8  # modest preallocation
        # Distinct frequencies 1..many force fresh slot mints.
        for x in range(m):
            for _ in range(x % 40):
                ap.add(x)
        assert ap.block_count > 8
        cap = len(ap._bl)
        assert cap >= ap.block_slots and cap & (cap - 1) == 0  # 2^k
        ap.audit()

    def test_copy_clear_grow(self, rng):
        _, ap = self.drive_pair(rng, 30, 500)
        clone = ap.copy()
        assert clone.array_engine and clone.owns_buffers
        clone.add(0)
        assert clone.frequency(0) == ap.frequency(0) + 1
        grown = ap.copy()
        grown.grow(5)
        assert grown.capacity == 35
        assert grown.frequencies()[:30] == ap.frequencies()
        grown.audit()
        ap.clear()
        assert ap.total == 0 and ap.frequencies() == [0] * 30
        ap.audit()

    def test_strict_mode(self):
        pytest.importorskip("numpy")
        ap = FlatProfile(5, allow_negative=False, array_engine=True)
        ap.add(1)
        with pytest.raises(FrequencyUnderflowError):
            ap.remove(2)
        with pytest.raises(FrequencyUnderflowError):
            ap.remove_many([1, 1])
        assert ap.frequencies() == [0, 1, 0, 0, 0]

    def test_from_frequencies_array(self):
        pytest.importorskip("numpy")
        ap = FlatProfile.from_frequencies([3, 1, 2, 0, 5], array_engine=True)
        assert ap.array_engine
        assert ap.frequencies() == [3, 1, 2, 0, 5]
        assert ap.total == 11
        ap.audit()

    def test_json_checkpoint_round_trips_both_engines(self, rng):
        import json

        _, ap = self.drive_pair(rng, 30, 600)
        state = profile_to_state(ap)
        json.dumps(state)  # no np.int64 leakage
        as_array = flat_profile_from_state(state, array_engine=True)
        as_list = flat_profile_from_state(state)
        as_blocks = profile_from_state(state)
        assert as_array.frequencies() == ap.frequencies()
        assert as_list.frequencies() == ap.frequencies()
        assert as_blocks.frequencies() == ap.frequencies()
        assert as_array.array_engine and not as_list.array_engine


class TestArrayState:
    """The zero-copy buffer-level checkpoint."""

    def test_round_trip(self, rng):
        np = pytest.importorskip("numpy")
        from repro.core.checkpoint import (
            flat_profile_from_array_state,
            flat_profile_to_array_state,
        )

        ap = FlatProfile(40, array_engine=True)
        ids = np.array([rng.randrange(40) for _ in range(3000)])
        ap.add_many(ids)
        state = flat_profile_to_array_state(ap)
        restored = flat_profile_from_array_state(state)
        assert restored.frequencies() == ap.frequencies()
        assert restored.n_events == ap.n_events
        assert restored.total == ap.total

    def test_export_allocates_o1_objects_per_buffer(self, rng):
        """The acceptance bar: checkpointing a numpy-backed profile is
        O(buffers) Python objects, not O(m) boxed ints."""
        np = pytest.importorskip("numpy")
        import gc

        from repro.core.checkpoint import flat_profile_to_array_state

        m = 50_000
        ap = FlatProfile(m, array_engine=True)
        ap.add_many(np.arange(m) % 97)
        gc.collect()
        before = len(gc.get_objects())
        state = flat_profile_to_array_state(ap)
        gc.collect()
        created = len(gc.get_objects()) - before
        # One dict + six ndarray views + a few scalars — far under any
        # per-element regime (m would add ~50k objects).
        assert created < 100, created
        # And the export really is zero-copy: it aliases live storage.
        assert np.shares_memory(state["ftot"], ap._ftot)
        assert np.shares_memory(state["bl"], ap._bl)

    def test_list_engine_also_exports(self, rng):
        pytest.importorskip("numpy")
        from repro.core.checkpoint import (
            flat_profile_from_array_state,
            flat_profile_to_array_state,
        )

        lp = FlatProfile(20)
        lp.add_many([1, 1, 2, 9])
        restored = flat_profile_from_array_state(
            flat_profile_to_array_state(lp)
        )
        assert restored.frequencies() == lp.frequencies()

    def test_tampered_state_fails_loudly(self, rng):
        pytest.importorskip("numpy")
        from repro.core.checkpoint import (
            flat_profile_from_array_state,
            flat_profile_to_array_state,
        )

        ap = FlatProfile(10, array_engine=True)
        ap.add_many([1, 1, 2])
        state = flat_profile_to_array_state(ap)
        bad_ptrb = dict(state)
        bad_ptrb["ptrb"] = bad_ptrb["ptrb"].copy()
        bad_ptrb["ptrb"][0] = 99
        with pytest.raises(CheckpointError):
            flat_profile_from_array_state(bad_ptrb)
        # A free-list head outside the minted slots must fail at
        # restore time, not crash the next add that pops the list.
        bad_free = dict(state)
        bad_free["free_head"] = 10**9
        with pytest.raises(CheckpointError):
            flat_profile_from_array_state(bad_free)
        bad_ttof = dict(state)
        bad_ttof["ttof"] = bad_ttof["ttof"].copy()
        bad_ttof["ttof"][0] = 10**6
        with pytest.raises(CheckpointError):
            flat_profile_from_array_state(bad_ttof)


class TestAttachBuffers:
    """External (caller-owned) buffer hosting — the shared-memory
    contract, exercised on plain heap buffers."""

    def build_buffers(self, m):
        np = pytest.importorskip("numpy")
        from repro.core.flat import HEADER_SLOTS

        slots = max(m, 1)
        buf = np.zeros(HEADER_SLOTS + 3 * m + 3 * slots, dtype=np.int64)
        header = buf[:HEADER_SLOTS]
        rest = buf[HEADER_SLOTS:]
        views = []
        offset = 0
        for length in (m, m, m, slots, slots, slots):
            views.append(rest[offset : offset + length])
            offset += length
        return header, views

    def test_writer_and_reader_views_stay_coherent(self, rng):
        np = pytest.importorskip("numpy")
        m = 33
        header, views = self.build_buffers(m)
        writer = FlatProfile.attach_buffers(header, *views, fresh=True)
        ref = FlatProfile(m)
        for _ in range(2000):
            x = rng.randrange(m)
            if rng.random() < 0.6:
                writer.add(x)
                ref.add(x)
            else:
                writer.remove(x)
                ref.remove(x)
        batch = np.array([rng.randrange(m) for _ in range(900)])
        writer.add_many(batch)
        ref.add_many(batch)
        writer._sync_header()
        reader = FlatProfile.attach_buffers(header, *views, fresh=False)
        assert reader.frequencies() == writer.frequencies()
        assert reader.total == writer.total
        assert reader.n_events == writer.n_events
        reader.audit()

    def test_attach_validates_layout(self):
        pytest.importorskip("numpy")
        header, views = self.build_buffers(10)
        with pytest.raises(CapacityError):  # no magic stamp yet
            FlatProfile.attach_buffers(header, *views, fresh=False)
        short = list(views)
        short[3] = short[3][:4]  # fewer block slots than max(m, 1)
        with pytest.raises(CapacityError):
            FlatProfile.attach_buffers(header, *short, fresh=True)

    def test_external_buffers_refuse_growth(self):
        pytest.importorskip("numpy")
        header, views = self.build_buffers(6)
        writer = FlatProfile.attach_buffers(header, *views, fresh=True)
        with pytest.raises(CapacityError):
            writer.grow(3)

    def test_release_buffers_detaches(self):
        pytest.importorskip("numpy")
        header, views = self.build_buffers(6)
        writer = FlatProfile.attach_buffers(header, *views, fresh=True)
        writer.add(2)
        writer.release_buffers()
        assert not writer.array_engine or writer._ftot is None
        writer.release_buffers()  # idempotent
