"""Unit tests for ProfileSnapshot."""

import pytest

from repro.core.profile import SProfile
from repro.core.snapshot import ProfileSnapshot
from repro.errors import EmptyProfileError


@pytest.fixture
def live_and_snap(small_profile):
    return small_profile, small_profile.snapshot()


class TestSnapshotConsistency:
    def test_same_answers_at_capture_time(self, live_and_snap):
        live, snap = live_and_snap
        assert snap.frequencies() == live.frequencies()
        assert snap.mode() == live.mode()
        assert snap.least() == live.least()
        assert snap.median_frequency() == live.median_frequency()
        assert snap.histogram() == live.histogram()
        assert snap.top_k(4) == live.top_k(4)
        assert snap.total == live.total
        assert snap.capacity == live.capacity

    def test_immune_to_later_updates(self, live_and_snap):
        live, snap = live_and_snap
        before = snap.frequencies()
        for _ in range(10):
            live.add(0)
        assert snap.frequencies() == before
        assert snap.frequency(0) == 0

    def test_records_event_position(self, small_profile):
        snap = small_profile.snapshot()
        assert snap.n_events == small_profile.n_events

    def test_of_classmethod(self, small_profile):
        snap = ProfileSnapshot.of(small_profile)
        assert snap.frequencies() == small_profile.frequencies()


class TestSnapshotQueries:
    def test_rank_lookups(self, live_and_snap):
        live, snap = live_and_snap
        for rank in range(8):
            assert snap.frequency_at_rank(rank) == live.frequency_at_rank(rank)
            assert snap.object_at_rank(rank) == live.object_at_rank(rank)

    def test_block_at_out_of_range(self, live_and_snap):
        __, snap = live_and_snap
        with pytest.raises(IndexError):
            snap._blocks.block_at(99)

    def test_block_for_frequency_binary_search(self, live_and_snap):
        __, snap = live_and_snap
        assert snap.support(0) == 4
        assert snap.support(3) == 1
        assert snap.support(42) == 0
        assert snap.support(-5) == 0

    def test_quantiles(self, live_and_snap):
        live, snap = live_and_snap
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert snap.quantile(q) == live.quantile(q)

    def test_iter_desc(self, live_and_snap):
        __, snap = live_and_snap
        asc = [b.as_tuple() for b in snap._blocks.iter_blocks()]
        desc = [b.as_tuple() for b in snap._blocks.iter_blocks_desc()]
        assert asc == desc[::-1]

    def test_block_count(self, live_and_snap):
        live, snap = live_and_snap
        assert snap.block_count == live.block_count

    def test_repr(self, live_and_snap):
        assert "ProfileSnapshot" in repr(live_and_snap[1])


class TestEmptySnapshot:
    def test_zero_capacity(self):
        snap = SProfile(0).snapshot()
        assert snap.capacity == 0
        with pytest.raises(EmptyProfileError):
            snap.mode()
        with pytest.raises(EmptyProfileError):
            snap.median_frequency()
