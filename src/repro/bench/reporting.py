"""ASCII reporting of benchmark series, in the paper's terms.

Tables show absolute seconds per sweep point plus the speedup of
S-Profile over the baseline — the quantity the paper headlines ("at
least 2X speedup to the heap based approach and 13X or larger speedup
to the balanced tree based approach").
"""

from __future__ import annotations

from repro.bench.runner import SeriesResult

__all__ = ["format_series_table", "format_figure", "summarize_speedups"]


def _format_time(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:9.1f}s"
    if seconds >= 1:
        return f"{seconds:9.3f}s"
    return f"{seconds * 1e3:8.2f}ms"


def format_series_table(series: SeriesResult, *, ours: str = "sprofile") -> str:
    """Render one sweep as an aligned ASCII table."""
    names = list(series.times)
    baselines = [name for name in names if name != ours]
    header_cells = [f"{series.x_label:>12}"]
    header_cells += [f"{name:>12}" for name in names]
    for baseline in baselines:
        header_cells.append(f"{baseline + '/ours':>14}")
    lines = [series.title, "-" * len(series.title)]
    lines.append(" ".join(header_cells))
    for row_index, x in enumerate(series.x_values):
        cells = [f"{x:>12,}"]
        for name in names:
            cells.append(f"{_format_time(series.times[name][row_index]):>12}")
        for baseline in baselines:
            ratio = series.speedup(baseline, ours)[row_index]
            cells.append(f"{ratio:>13.2f}x")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def summarize_speedups(series: SeriesResult, *, ours: str = "sprofile") -> str:
    """One-line min/max speedup summary per baseline."""
    parts = []
    for name in series.times:
        if name == ours:
            continue
        low = series.min_speedup(name, ours)
        high = series.max_speedup(name, ours)
        parts.append(f"{ours} vs {name}: {low:.2f}x – {high:.2f}x")
    return "; ".join(parts)


def format_figure(result, *, ours: str = "sprofile") -> str:
    """Render a full :class:`~repro.bench.figures.FigureResult`."""
    blocks = [
        f"=== Figure {result.figure} (scale: {result.scale}) ===",
        result.description,
        f"expected shape: {result.expectation}",
        "",
    ]
    for series in result.series:
        blocks.append(format_series_table(series, ours=ours))
        blocks.append("  -> " + summarize_speedups(series, ours=ours))
        blocks.append("")
    return "\n".join(blocks)
