"""Unit tests for the cluster tier: journal, partition/merge algebra,
router validation, and the two CLIs' cluster-facing pieces.

The merge helpers are pinned against :class:`ShardedProfiler` ground
truth — partition ``p`` of the cluster is shard ``p`` of a sharded
engine over the same universe by construction, so every merged answer
must match the in-process engine bit for bit.  Full wire-level
equivalence (with crashes) lives in
``tests/property/test_prop_cluster_equivalence.py`` and
``tests/integration/test_cluster_e2e.py``.
"""

import asyncio

import pytest

from repro.api import Profiler, Query
from repro.cluster import (
    ClusterRouter,
    PartitionJournal,
    partition_capacity,
)
from repro.cluster.merge import (
    count_above,
    count_at,
    merge_extremes,
    merge_histograms,
    merge_top_entries,
    partition_batch,
    rank_frequency,
)
from repro.errors import CapacityError
from repro.server import ProfileServer
from repro.server.cli import _parse_partition, _write_port_file
from repro.server.protocol import ProtocolError


class TestPartitionJournal:
    def test_append_entries_clear_roundtrip(self):
        journal = PartitionJournal(0)
        journal.append(3, [1, 2], [1, -1])
        journal.append(5, [0], [2])
        assert [e.seq for e in journal.entries()] == [3, 5]
        assert len(journal) == 2
        assert journal.last_seq == 5
        assert journal.clear(5) == 2
        assert len(journal) == 0
        assert journal.snapshot_seq == 5
        assert journal.last_seq == 5

    def test_seq_must_be_monotonic(self):
        journal = PartitionJournal(0)
        journal.append(4, [0], [1])
        with pytest.raises(ValueError, match="monotonic"):
            journal.append(4, [1], [1])
        with pytest.raises(ValueError, match="monotonic"):
            journal.append(2, [1], [1])

    def test_clear_refuses_partial_coverage(self):
        journal = PartitionJournal(0)
        journal.append(2, [0], [1])
        journal.append(7, [1], [1])
        with pytest.raises(ValueError, match="does not cover"):
            journal.clear(5)
        # The tape survives a refused truncation intact.
        assert [e.seq for e in journal.entries()] == [2, 7]

    def test_boot_state_is_the_implicit_empty_snapshot(self):
        journal = PartitionJournal(2)
        assert journal.snapshot_seq == 0
        assert journal.last_seq == 0
        assert list(journal.entries()) == []


class TestPartitionBatch:
    def test_pairs_split_by_modulus(self):
        parts, applied = partition_batch(
            [(0, 1), (1, 2), (3, 1), (4, -1)], 3, 9
        )
        assert set(parts) == {0, 1}
        ids0, deltas0 = parts[0]
        assert list(ids0) == [0, 1] and list(deltas0) == [1, 1]
        ids1, deltas1 = parts[1]
        assert list(ids1) == [0, 1] and list(deltas1) == [2, -1]
        assert applied == 5

    def test_applied_matches_facade_ingest(self):
        # Opposing deltas on one id cancel (net unit events).
        batch = [(5, 2), (5, -2), (7, 1), (2, 3)]
        with Profiler.open(9, backend="flat") as ref:
            expected = ref.ingest(batch)
        _parts, applied = partition_batch(batch, 2, 9)
        assert applied == expected

    def test_out_of_range_rejects_whole_batch(self):
        with pytest.raises(
            CapacityError, match=r"object id 9 out of range \[0, 9\)"
        ):
            partition_batch([(1, 1), (9, 1)], 3, 9)
        with pytest.raises(CapacityError, match="out of range"):
            partition_batch([(-1, 1)], 3, 9)

    def test_binary_columns_split_identically(self):
        np = pytest.importorskip("numpy")
        from repro.server.protocol import ArrayBatch

        ids = np.array([0, 1, 3, 4], dtype=np.int64)
        deltas = np.array([1, 2, 1, -1], dtype=np.int64)
        parts, applied = partition_batch(ArrayBatch(ids, deltas), 3, 9)
        ref_parts, ref_applied = partition_batch(
            list(zip(ids.tolist(), deltas.tolist())), 3, 9
        )
        assert applied == ref_applied
        assert set(parts) == set(ref_parts)
        for p in parts:
            assert list(parts[p][0]) == list(ref_parts[p][0])
            assert list(parts[p][1]) == list(ref_parts[p][1])

    def test_empty_batch(self):
        parts, applied = partition_batch([], 3, 9)
        assert parts == {} and applied == 0


def partitioned_reference(m, n_parts, events):
    """Per-partition flat facades fed the partition split of ``events``,
    plus one whole-universe facade — the merge helpers' ground truth."""
    locals_ = [
        Profiler.open(partition_capacity(m, p, n_parts), backend="flat")
        for p in range(n_parts)
    ]
    whole = Profiler.open(m, backend="flat")
    for x, d in events:
        locals_[x % n_parts].ingest([(x // n_parts, d)])
        whole.ingest([(x, d)])
    return locals_, whole


EVENTS = [(0, 3), (1, 1), (2, 4), (3, 1), (4, 1), (5, 2), (6, 4),
          (2, -2), (8, 1), (9, 1), (6, 1), (0, 1)]


class TestMergeAlgebra:
    @pytest.fixture(scope="class")
    def ground(self):
        locals_, whole = partitioned_reference(10, 3, EVENTS)
        yield locals_, whole
        for prof in locals_:
            prof.close()
        whole.close()

    def test_extremes(self, ground):
        locals_, whole = ground
        for kind, desc in (("mode", True), ("least", False)):
            merged = merge_extremes(
                [p.evaluate(Query(kind)).values[0] for p in locals_],
                3,
                desc=desc,
            )
            ref = whole.evaluate(Query(kind)).values[0]
            assert (merged.frequency, merged.count) == (
                ref.frequency, ref.count,
            )
            # The example maps back to a global id at that frequency.
            assert whole.frequency(merged.example) == merged.frequency

    def test_histogram(self, ground):
        locals_, whole = ground
        merged = merge_histograms(
            [p.histogram() for p in locals_]
        )
        assert merged == whole.histogram()

    def test_rank_walks_match_order_statistics(self, ground):
        locals_, whole = ground
        hist = merge_histograms([p.histogram() for p in locals_])
        m = 10
        assert rank_frequency(hist, (m - 1) // 2) == (
            whole.median_frequency()
        )
        for rank in range(m):
            assert rank_frequency(hist, rank) == sorted(
                whole.frequencies()
            )[rank]
        with pytest.raises(CapacityError, match="rank 10 out of range"):
            rank_frequency(hist, m)

    def test_top_k_merge(self, ground):
        locals_, whole = ground
        for k in (0, 1, 3, 10, 15):
            merged = merge_top_entries(
                [p.top_k(min(k, p.capacity)) for p in locals_],
                3,
                min(k, 10),
            )
            ref = whole.top_k(k)
            assert [e.frequency for e in merged] == [
                e.frequency for e in ref
            ]
            for entry in merged:
                assert whole.frequency(entry.obj) == entry.frequency

    def test_count_above_and_at(self, ground):
        locals_, whole = ground
        hist = merge_histograms([p.histogram() for p in locals_])
        freqs = whole.frequencies()
        for f in (-1, 0, 1, 2, 3.5, 4, 99):
            assert count_above(hist, f) == sum(
                1 for v in freqs if v > f
            )
        assert count_at(hist, 1) == freqs.count(1)


class TestRouterValidation:
    def test_needs_endpoints_or_supervisor(self):
        with pytest.raises(CapacityError, match="endpoints or a supervisor"):
            ClusterRouter(10)

    def test_capacity_must_cover_partitions(self):
        with pytest.raises(CapacityError, match="cannot spread"):
            ClusterRouter(2, [("h", 1), ("h", 2), ("h", 3)])

    def test_snapshot_every_positive(self):
        with pytest.raises(CapacityError, match="snapshot_every"):
            ClusterRouter(10, [("h", 1)], snapshot_every=0)

    def test_replica_identity_mismatch_fails_start(self):
        # A 2-partition router over a 10-universe needs replica 0 at
        # capacity 5; serve 7 instead and start() must refuse loudly.
        async def scenario():
            prof = Profiler.open(7, backend="flat")
            async with ProfileServer(prof, port=0) as replica:
                router = ClusterRouter(
                    10,
                    [(replica.host, replica.port)] * 2,
                    port=0,
                )
                with pytest.raises(ProtocolError, match="capacity=7"):
                    await router.start()
            prof.close()

        asyncio.run(scenario())

    def test_partition_capacity_covers_universe(self):
        for m in (1, 5, 9, 10, 17):
            for n in range(1, m + 1):
                caps = [partition_capacity(m, p, n) for p in range(n)]
                assert sum(caps) == m
                assert min(caps) >= 1


class TestServeCliClusterPieces:
    def test_parse_partition(self):
        assert _parse_partition(None) is None
        assert _parse_partition("0/3") == (0, 3)
        assert _parse_partition("2/3") == (2, 3)
        for bad in ("3/3", "-1/3", "1", "a/b", "1/0"):
            with pytest.raises(SystemExit):
                _parse_partition(bad)

    def test_port_file_written_atomically(self, tmp_path):
        target = tmp_path / "svc.port"
        _write_port_file(str(target), 4242)
        assert target.read_text() == "4242\n"
        # No tmp residue: the rename consumed it.
        assert list(tmp_path.iterdir()) == [target]

    def test_array_engine_flag(self):
        from repro.server.cli import build_parser

        args = build_parser().parse_args(
            ["--capacity", "100", "--backend", "flat", "--array-engine"]
        )
        assert args.array_engine is True
        assert build_parser().parse_args(
            ["--capacity", "100"]
        ).array_engine is False


class TestClusterCliParser:
    def test_flags(self):
        from repro.cluster.cli import build_parser

        args = build_parser().parse_args(
            ["--capacity", "1000", "--replicas", "4",
             "--snapshot-every", "16", "--replica-backend", "exact"]
        )
        assert args.capacity == 1000
        assert args.replicas == 4
        assert args.snapshot_every == 16
        assert args.replica_backend == "exact"
        assert args.status is False

    def test_status_flag(self):
        from repro.cluster.cli import build_parser

        args = build_parser().parse_args(["--status", "--port", "7777"])
        assert args.status and args.port == 7777

    def test_module_entrypoint(self):
        import repro.cluster.__main__  # noqa: F401 - importable

        from repro.cluster.cli import main

        assert callable(main)
