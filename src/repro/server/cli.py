"""``python -m repro.serve`` — stand up a profiling service.

Examples
--------
Serve a 100k-key dense universe on the flat engine::

    python -m repro.serve --capacity 100000

Sharded backend, fixed port, aggressive micro-batching::

    python -m repro.serve --capacity 1000000 --shards 8 --port 7421 \\
        --batch-max 2048 --linger-ms 5

The server prints one ``listening on HOST:PORT`` line once bound
(``--port 0`` picks a free port; ``--port-file`` additionally writes
the bound port to a file so scripts can wait for it), then serves
until SIGINT/SIGTERM, drains the ingest queue, acks everything
accepted, and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging
import os
import signal
import sys
from pathlib import Path

from repro.api import Profiler, available_backends
from repro.obs.http import MetricsExporter
from repro.obs.structlog import configure_logging, log_event
from repro.server.protocol import DEFAULT_MAX_FRAME
from repro.server.service import ProfileServer

__all__ = ["build_parser", "main"]

_log = logging.getLogger("repro.server")

#: Default TCP port (unregistered; chosen once, spelled everywhere).
DEFAULT_PORT = 7421


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a repro profiler over TCP with "
        "micro-batching ingestion.",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="universe size m (required for dense keys)",
    )
    parser.add_argument(
        "--backend",
        default="auto",
        choices=available_backends(),
        help="profiling backend behind the facade (default: auto)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard fan-out (implies the sharded backend under auto)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process fan-out (implies the parallel backend "
        "under auto)",
    )
    parser.add_argument(
        "--keys",
        choices=("dense", "hashable"),
        default="dense",
        help="object id mode (default: dense integers)",
    )
    parser.add_argument(
        "--array-engine",
        action="store_true",
        help="host the flat backend on its NumPy array engine "
        "(flat backend only; requires numpy)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="forbid negative frequencies (underflowing wire batches "
        "are rejected whole)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port; 0 picks a free one (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound port here once listening (for scripts; "
        "written atomically via tmp + rename)",
    )
    parser.add_argument(
        "--role",
        default="standalone",
        choices=("standalone", "replica"),
        help="how this process is deployed (replica: fronted by a "
        "repro.cluster router; purely introspective)",
    )
    parser.add_argument(
        "--partition",
        metavar="P/N",
        default=None,
        help="key-space partition this replica owns, as 'index/count' "
        "(e.g. 1/3); introspective, surfaced by health/describe",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=512,
        help="flush a micro-batch at this many coalesced events "
        "(1 disables micro-batching; default: 512)",
    )
    parser.add_argument(
        "--linger-ms",
        type=float,
        default=1.0,
        help="max wait for a non-full micro-batch (default: 1.0)",
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=4096,
        help="ingest queue bound, in wire batches (backpressure)",
    )
    parser.add_argument(
        "--write-timeout",
        type=float,
        default=30.0,
        help="seconds before a stalled client is dropped",
    )
    parser.add_argument(
        "--max-frame",
        type=int,
        default=DEFAULT_MAX_FRAME,
        help="per-frame byte cap, both directions",
    )
    parser.add_argument(
        "--codec",
        choices=("binary", "json"),
        default="binary",
        help="binary: clients may negotiate the binary frame codec "
        "(JSON stays the default and fallback); json: JSON only "
        "(default: binary)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus text exposition of the metrics "
        "registry on this port (0 picks a free one; off by default)",
    )
    parser.add_argument(
        "--metrics-port-file",
        metavar="PATH",
        default=None,
        help="write the bound metrics port here (atomic tmp + rename)",
    )
    parser.add_argument(
        "--log-format",
        choices=("plain", "json"),
        default="plain",
        help="status-line format: plain (the legacy print lines) or "
        "one JSON object per line (default: plain)",
    )
    return parser


def _parse_partition(text: str | None) -> tuple[int, int] | None:
    """Parse ``--partition P/N`` into ``(index, count)``."""
    if text is None:
        return None
    try:
        index_s, count_s = text.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise SystemExit(
            f"--partition must look like INDEX/COUNT, got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise SystemExit(
            f"--partition index must be in [0, count), got {text!r}"
        )
    return index, count


def _write_port_file(path: str, port: int) -> None:
    """Publish the bound port atomically (tmp + rename).

    Watchers (e.g. the cluster supervisor) poll for this file; the
    rename guarantees they never observe a half-written number.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(f"{port}\n")
    os.replace(tmp, target)


async def _amain(args: argparse.Namespace) -> int:
    configure_logging(args.log_format)
    open_options = {}
    if args.array_engine:
        # Only forwarded when requested: array_engine= is a
        # flat-backend-only option and errors elsewhere.
        open_options["array_engine"] = True
    profiler = Profiler.open(
        args.capacity,
        backend=args.backend,
        shards=args.shards,
        workers=args.workers,
        keys=args.keys,
        strict=args.strict,
        **open_options,
    )
    with profiler:
        server = ProfileServer(
            profiler,
            host=args.host,
            port=args.port,
            batch_max=args.batch_max,
            linger_ms=args.linger_ms,
            queue_size=args.queue_size,
            write_timeout=args.write_timeout,
            max_frame=args.max_frame,
            binary=args.codec == "binary",
            role=args.role,
            partition=_parse_partition(args.partition),
        )
        await server.start()
        codecs = server.describe_server()["codecs"]
        log_event(
            _log,
            f"listening on {server.host}:{server.port} "
            f"(backend={profiler.backend_name}, strategy="
            f"{server.strategy}, codecs={','.join(codecs)}, "
            f"batch_max={args.batch_max}, "
            f"linger_ms={args.linger_ms:g})",
            event="listening",
            host=server.host,
            port=server.port,
            backend=profiler.backend_name,
        )
        if args.port_file:
            _write_port_file(args.port_file, server.port)
        exporter = None
        if args.metrics_port is not None:
            exporter = MetricsExporter(
                server.metrics_snapshot,
                host=args.host,
                port=args.metrics_port,
                labels={"tier": "server", "role": args.role},
            )
            await exporter.start()
            log_event(
                _log,
                f"metrics on {args.host}:{exporter.port}/metrics",
                event="metrics_listening",
                port=exporter.port,
            )
            if args.metrics_port_file:
                _write_port_file(args.metrics_port_file, exporter.port)

        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop_requested.set)
        await stop_requested.wait()
        log_event(_log, "draining...", event="draining")
        if exporter is not None:
            await exporter.stop()
        await server.stop()
        stats = server.stats
        log_event(
            _log,
            f"drained: {stats.wire_batches} wire batches "
            f"({stats.wire_events} events) in {stats.flushes} flushes, "
            f"{stats.rejected} rejected, "
            f"{stats.connections_total} connections",
            event="drained",
            wire_batches=stats.wire_batches,
            wire_events=stats.wire_events,
            flushes=stats.flushes,
            rejected=stats.rejected,
            connections=stats.connections_total,
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
