"""``python -m repro.bench`` — benchmark harness front door.

Subcommands
-----------
``trajectory``
    Measure the canonical core perf trajectory and write
    ``BENCH_core.json`` (see :mod:`repro.bench.trajectory`).
``figures``
    Regenerate the paper's figures (same flags as
    ``python -m repro bench``; see :mod:`repro.bench.cli`).
"""

from __future__ import annotations

import sys

from repro.bench.cli import main as figures_main
from repro.bench.trajectory import main as trajectory_main


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("usage: python -m repro.bench {trajectory,figures} ...")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "trajectory":
        return trajectory_main(rest)
    if command == "figures":
        return figures_main(rest)
    print(
        f"unknown command {command!r}; use 'trajectory' or 'figures'",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
