"""Versioned, frozen result containers for the unified query surface.

Every backend — flat, dynamic, sharded (merged), baseline, approximate —
answers through the same vocabulary:

- scalar statistics are plain ints/floats,
- mode / least answers are :class:`~repro.core.queries.ModeResult`,
- ranked entries are :class:`~repro.core.queries.TopEntry`,
- a fused :meth:`repro.api.Profiler.evaluate` call returns one
  :class:`EvalResult` pairing each submitted
  :class:`~repro.api.plan.Query` with its value.

``RESULT_VERSION`` stamps :class:`EvalResult` so downstream consumers
(dashboards, serialized reports) can detect layout changes; bump it when
a field is added, removed or reinterpreted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.queries import ModeResult, TopEntry
from repro.errors import CapacityError

__all__ = ["RESULT_VERSION", "EvalResult", "ModeResult", "TopEntry"]

#: Bump when the EvalResult layout changes incompatibly.
RESULT_VERSION = 1


@dataclass(frozen=True)
class EvalResult:
    """Answers of one fused :meth:`~repro.api.Profiler.evaluate` call.

    ``queries`` and ``values`` are parallel tuples in submission order.
    Index by position (``result[0]``), by the :class:`Query` itself
    (``result[Query.mode()]``) or — when unambiguous — by kind name
    (``result["mode"]``).

    ``partial`` is ``False`` for every in-process evaluate; a cluster
    router serving degraded reads sets it ``True`` when the answers
    were merged from a subset of live partitions (one or more replicas
    were circuit-broken) — the explicit staleness marker of the
    degraded-read contract.
    """

    queries: tuple
    values: tuple
    version: int = field(default=RESULT_VERSION)
    partial: bool = field(default=False)

    def __post_init__(self) -> None:
        if len(self.queries) != len(self.values):
            raise CapacityError(
                f"{len(self.queries)} queries but {len(self.values)} values"
            )

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[tuple]:
        return iter(zip(self.queries, self.values))

    def __getitem__(self, key) -> Any:
        if isinstance(key, int):
            return self.values[key]
        if isinstance(key, str):
            matches = [
                value
                for query, value in zip(self.queries, self.values)
                if query.kind == key
            ]
            if not matches:
                raise KeyError(f"no {key!r} query in this result")
            if len(matches) > 1:
                raise KeyError(
                    f"{len(matches)} {key!r} queries in this result; "
                    f"index by position or by Query instance"
                )
            return matches[0]
        for query, value in zip(self.queries, self.values):
            if query == key:
                return value
        raise KeyError(f"query {key!r} not part of this result")

    def as_dict(self) -> dict[str, Any]:
        """``{query.key: value}`` — keys are unique query spellings."""
        return {
            query.key: value
            for query, value in zip(self.queries, self.values)
        }
