"""Unit tests for the cluster-hardening building blocks.

Covers the deterministic fault-injection schedule, the jittered client
reconnect backoff (pinned sleep schedules via an injected RNG), the
replica-side 2PC staging ops, the mid-restore fail-fast contract, the
supervisor's respawn-storm escalation, and the router's new parameter
validation.  The end-to-end behaviors these enable live in the
integration and property suites.
"""

import asyncio

import pytest

from repro.api.facade import Profiler
from repro.errors import (
    CapacityError,
    ClusterUnhealthyError,
    FrequencyUnderflowError,
    ReplicaRecoveringError,
)
from repro.server.protocol import ProtocolError
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ReplicaSupervisor
from repro.server.client import AsyncProfileClient, ProfileClient
from repro.server.service import ProfileServer
from repro.testing import faults
from repro.testing.faults import (
    FaultSchedule,
    InjectedFault,
    SimulatedCrash,
    arm,
    disarm,
    fault_point,
    fault_point_sync,
)


@pytest.fixture(autouse=True)
def _no_schedule_leaks():
    # Fault schedules are process-wide by design; never let one leak
    # out of the test that armed it.
    disarm()
    yield
    disarm()


# ----------------------------------------------------------------------
# FaultSchedule
# ----------------------------------------------------------------------


class TestFaultSchedule:
    def test_occurrence_counting_and_error(self):
        schedule = arm(FaultSchedule([("x", 1, "error")]))

        async def scenario():
            await fault_point("x")  # occurrence 0: free
            with pytest.raises(InjectedFault) as exc:
                await fault_point("x")  # occurrence 1: fires
            assert exc.value.point == "x"
            assert exc.value.occurrence == 1
            assert isinstance(exc.value, ConnectionError)
            await fault_point("x")  # occurrence 2: free again

        asyncio.run(scenario())
        assert schedule.counts == {"x": 3}
        assert schedule.fired == [("x", 1, "error")]
        assert schedule.unfired() == []

    def test_crash_is_not_an_exception(self):
        arm(FaultSchedule([("p", 0, "crash")]))
        with pytest.raises(SimulatedCrash) as exc:
            fault_point_sync("p")
        assert not isinstance(exc.value, Exception)
        assert isinstance(exc.value, BaseException)

    def test_delay_and_callable_actions(self):
        ran = []
        arm(
            FaultSchedule(
                [("d", 0, 0.0), ("c", 0, lambda: ran.append("sync"))]
            )
        )

        async def scenario():
            await fault_point("d")  # sleeps 0.0 — must not raise
            await fault_point("c")

        asyncio.run(scenario())
        assert ran == ["sync"]
        fault_point_sync("d")  # occurrence 1: free

    def test_async_callable_awaited(self):
        ran = []

        async def boom():
            ran.append("async")

        arm(FaultSchedule([("c", 0, boom)]))
        asyncio.run(fault_point("c"))
        assert ran == ["async"]

    def test_disarm_frees_every_point(self):
        arm(FaultSchedule([("x", 0, "error")]))
        disarm()
        fault_point_sync("x")  # no raise
        assert faults.active_schedule() is None

    def test_unfired_names_stale_triggers(self):
        schedule = arm(
            FaultSchedule([("x", 0, "error"), ("never", 3, "crash")])
        )
        with pytest.raises(InjectedFault):
            fault_point_sync("x")
        assert schedule.unfired() == [("never", 3)]

    def test_random_is_seed_deterministic(self):
        points = ["a.b", "c.d", "e.f"]
        one = FaultSchedule.random(7, points, n_faults=5)
        two = FaultSchedule.random(7, points, n_faults=5)
        assert one._triggers == two._triggers
        assert len(one) == len(one._triggers) <= 5  # collisions collapse
        other = FaultSchedule.random(8, points, n_faults=5)
        # Not guaranteed distinct in principle, but with 3 points x 8
        # occurrences x 3 actions a collision across seeds 7/8 would be
        # a broken RNG.
        assert one._triggers != other._triggers

    def test_random_rejects_empty_points(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(1, [])

    def test_from_spec_round_trip(self):
        schedule = FaultSchedule.from_spec(
            "router.fanout:3:delay:0.05, supervisor.spawn:1:error,"
            "wal.sync:0:crash,"
        )
        assert schedule._triggers == {
            ("router.fanout", 3): 0.05,
            ("supervisor.spawn", 1): "error",
            ("wal.sync", 0): "crash",
        }

    @pytest.mark.parametrize(
        "spec",
        [
            "router.fanout",  # too few fields
            "x:1:delay",  # delay without seconds
            "x:1:error:zap",  # error takes no arg
            "x:1:frobnicate",  # unknown action
            "x:-1:error",  # negative occurrence
        ],
    )
    def test_from_spec_rejects(self, spec):
        with pytest.raises(ValueError):
            FaultSchedule.from_spec(spec)

    @pytest.mark.parametrize("action", [True, -0.5, None, "sigkill"])
    def test_invalid_actions_reject(self, action):
        with pytest.raises(ValueError):
            FaultSchedule([("x", 0, action)])


# ----------------------------------------------------------------------
# Jittered reconnect backoff — pinned sleep schedules
# ----------------------------------------------------------------------


def _rng_from(values):
    it = iter(values)
    return lambda: next(it)


class TestBackoffJitter:
    def test_async_dial_schedule_pinned(self, monkeypatch):
        slept = []

        async def fake_sleep(delay):
            slept.append(delay)

        monkeypatch.setattr(asyncio, "sleep", fake_sleep)

        async def scenario():
            with pytest.raises(ConnectionError):
                # Port 1 on localhost: nothing listens, dial refuses.
                await AsyncProfileClient._dial_backoff(
                    "127.0.0.1", 1, "binary", 1 << 20,
                    0.05, 0.2, 4,
                    0.5, _rng_from([0.0, 1.0, 0.5, 0.25]),
                )

        asyncio.run(scenario())
        # delay doubles 0.05 -> 0.1 -> 0.2 (capped); each sleep is
        # delay * (1 - jitter * rng()).
        assert slept == pytest.approx([0.05, 0.05, 0.15, 0.175])

    def test_async_dial_zero_jitter_is_nominal(self, monkeypatch):
        slept = []

        async def fake_sleep(delay):
            slept.append(delay)

        monkeypatch.setattr(asyncio, "sleep", fake_sleep)

        async def scenario():
            with pytest.raises(ConnectionError):
                await AsyncProfileClient._dial_backoff(
                    "127.0.0.1", 1, "binary", 1 << 20,
                    0.05, 0.2, 4,
                    0.0, _rng_from([0.9, 0.9, 0.9, 0.9]),
                )

        asyncio.run(scenario())
        assert slept == pytest.approx([0.05, 0.1, 0.2, 0.2])

    def test_blocking_dial_schedule_pinned(self, monkeypatch):
        slept = []
        monkeypatch.setattr(
            "repro.server.client.sleep", lambda d: slept.append(d)
        )
        client = ProfileClient.__new__(ProfileClient)
        client._host, client._port = "127.0.0.1", 1
        client._backoff_base = 0.05
        client._backoff_max = 0.2
        client._max_attempts = 3
        client._backoff_jitter = 0.5
        client._backoff_rng = _rng_from([1.0, 0.0, 1.0])

        def refuse():
            raise ConnectionRefusedError("nobody home")

        client._connect = refuse
        with pytest.raises(ConnectionError):
            client._connect_backoff()
        assert slept == pytest.approx([0.025, 0.1, 0.1])


# ----------------------------------------------------------------------
# Replica-side 2PC staging
# ----------------------------------------------------------------------


async def _start_replica(m=32):
    profiler = Profiler.open(m, backend="flat")
    server = ProfileServer(profiler, linger_ms=0.2)
    await server.start()
    client = await AsyncProfileClient.connect(port=server.port)
    return server, client


class TestTwoPhaseOps:
    def test_prepare_commit_abort(self):
        async def scenario():
            server, client = await _start_replica()
            try:
                await client.ingest([(3, +2), (4, +1)])
                assert await client.prepare(1, [3, 5], [1, 2]) == 1
                # Staging applies nothing until the decision.
                assert await client.frequency(5) == 0
                # "applied" counts events, |+1| + |+2| here.
                assert await client.commit_txn(1) == 3
                assert await client.frequency(5) == 2
                assert await client.frequency(3) == 3
                # Abort is idempotent, even for unknown transactions.
                assert await client.abort_txn(1) is True
                assert await client.abort_txn(99) is True
                with pytest.raises(ProtocolError):
                    await client.commit_txn(1)  # already decided
            finally:
                await client.aclose()
                await server.stop()

        asyncio.run(scenario())

    def test_prepare_validates_against_staged_overlay(self):
        async def scenario():
            server, client = await _start_replica()
            try:
                await client.ingest([(3, +2)])
                # txn 1 stages the removal of both copies of 3 …
                await client.prepare(1, [3], [-2])
                # … so txn 2's further removal would underflow the
                # would-be frequency even though the live one is 2.
                with pytest.raises(FrequencyUnderflowError):
                    await client.prepare(2, [3], [-1])
                with pytest.raises(CapacityError):
                    await client.prepare(3, [99], [1])
                assert await client.commit_txn(1) == 2
                assert await client.frequency(3) == 0
                health = await client.health()
                assert health["staged_txns"] == 0
            finally:
                await client.aclose()
                await server.stop()

        asyncio.run(scenario())

    def test_restore_clears_staged(self):
        async def scenario():
            server, client = await _start_replica()
            try:
                state = await client.checkpoint()
                await client.prepare(1, [2], [1])
                assert (await client.health())["staged_txns"] == 1
                await client.restore(state)
                with pytest.raises(ProtocolError):
                    await client.commit_txn(1)
            finally:
                await client.aclose()
                await server.stop()

        asyncio.run(scenario())


class TestRecoveringFailFast:
    def test_queries_fail_fast_until_resume(self):
        async def scenario():
            server, client = await _start_replica()
            try:
                await client.ingest([(1, +1)])
                state = await client.checkpoint()
                await client.restore(state, recovering=True)
                # Reads fail fast with the typed, retryable error …
                with pytest.raises(ReplicaRecoveringError) as exc:
                    await client.evaluate()
                assert exc.value.retryable
                with pytest.raises(ReplicaRecoveringError):
                    await client.checkpoint()
                with pytest.raises(ReplicaRecoveringError):
                    await client.describe()
                # … while replay ingest and health stay open.
                assert await client.ingest([(2, +1)]) == 1
                health = await client.health()
                assert health["recovering"] is True
                assert await client.resume() is True
                assert (await client.health())["recovering"] is False
                assert await client.frequency(2) == 1
            finally:
                await client.aclose()
                await server.stop()

        asyncio.run(scenario())

    def test_plain_restore_does_not_gate(self):
        async def scenario():
            server, client = await _start_replica()
            try:
                state = await client.checkpoint()
                await client.restore(state)
                assert await client.total() == 0
            finally:
                await client.aclose()
                await server.stop()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Supervisor respawn-storm escalation
# ----------------------------------------------------------------------


class TestRespawnStorm:
    def _rigged(self, tmp_path, **kw):
        sup = ReplicaSupervisor(
            10, 1, workdir=tmp_path, max_respawn_burst=2, **kw
        )
        sup._spawn = lambda p: None
        sup.alive = lambda p: False

        async def fake_wait(p):
            return 4242

        sup._wait_port = fake_wait
        return sup

    def test_storm_escalates_and_sticks(self, tmp_path):
        sup = self._rigged(tmp_path, respawn_window=60.0)

        async def scenario():
            for _ in range(2):  # within the burst allowance
                host, port = await sup.ensure_replica(0)
                assert (host, port) == ("127.0.0.1", 4242)
            assert sup.unhealthy is None
            with pytest.raises(ClusterUnhealthyError) as exc:
                await sup.ensure_replica(0)
            assert exc.value.retryable is False
            assert "crash-looping" in str(exc.value)
            # Sticky: no further respawns are attempted.
            before = sup.respawns
            with pytest.raises(ClusterUnhealthyError):
                await sup.ensure_replica(0)
            assert sup.respawns == before
            assert sup.unhealthy is not None

        asyncio.run(scenario())

    def test_respawns_outside_window_do_not_count(self, tmp_path):
        sup = self._rigged(tmp_path, respawn_window=30.0)

        async def scenario():
            for _ in range(5):  # far past the burst, but spread out
                await sup.ensure_replica(0)
                # Age every recorded respawn out of the 30s window, as
                # if the next crash came much later.
                times = sup._respawn_times[0]
                times[:] = [t - 31.0 for t in times]
            assert sup.unhealthy is None

        asyncio.run(scenario())

    def test_burst_validation(self, tmp_path):
        with pytest.raises(CapacityError):
            ReplicaSupervisor(10, 1, workdir=tmp_path, max_respawn_burst=0)


# ----------------------------------------------------------------------
# Router parameter validation
# ----------------------------------------------------------------------


class TestRouterParams:
    ENDPOINTS = [("127.0.0.1", 1)]

    def test_replica_timeout_must_be_positive(self):
        with pytest.raises(CapacityError):
            ClusterRouter(10, self.ENDPOINTS, replica_timeout=0)
        with pytest.raises(CapacityError):
            ClusterRouter(10, self.ENDPOINTS, replica_timeout=-1.0)

    def test_breaker_cooldown_must_be_nonnegative(self):
        with pytest.raises(CapacityError):
            ClusterRouter(10, self.ENDPOINTS, breaker_cooldown=-0.1)

    def test_valid_params_construct(self, tmp_path):
        router = ClusterRouter(
            10,
            self.ENDPOINTS,
            journal_dir=tmp_path / "wal",
            strict=True,
            replica_timeout=0.5,
            breaker_cooldown=0.0,
            degraded_reads=True,
        )
        info = router.describe_server()
        assert info["strict"] is True
        assert info["replica_timeout"] == 0.5
        assert info["degraded_reads"] is True
