"""Unit tests for repro.core.stats."""

import math

import pytest

from repro.core.profile import SProfile
from repro.core.stats import ProfileSummary, entropy, gini, summarize, top_share
from repro.errors import EmptyProfileError


def profile_of(freqs):
    return SProfile.from_frequencies(freqs)


class TestSummarize:
    def test_known_values(self, small_profile):
        summary = summarize(small_profile)
        assert summary.capacity == 8
        assert summary.total == 4
        assert summary.active == 4
        assert summary.distinct_frequencies == 4
        assert summary.min_frequency == -1
        assert summary.max_frequency == 3
        assert summary.mean == pytest.approx(0.5)
        assert summary.median == 0

    def test_str_renders(self, small_profile):
        text = str(summarize(small_profile))
        assert "m=8" in text and "gini=" in text

    def test_empty_raises(self):
        with pytest.raises(EmptyProfileError):
            summarize(SProfile(0))

    def test_works_on_snapshot(self, small_profile):
        live = summarize(small_profile)
        snap = summarize(small_profile.snapshot())
        assert isinstance(snap, ProfileSummary)
        assert snap == live


class TestEntropy:
    def test_uniform_distribution(self):
        profile = profile_of([2, 2, 2, 2])
        assert entropy(profile) == pytest.approx(2.0)  # log2(4)

    def test_single_object_all_mass(self):
        profile = profile_of([10, 0, 0])
        assert entropy(profile) == pytest.approx(0.0)

    def test_skewed_between_uniform_and_point(self):
        value = entropy(profile_of([3, 1, 0, 0]))
        expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
        assert value == pytest.approx(expected)

    def test_ignores_negative_mass(self):
        with_negative = entropy(profile_of([3, 1, -5]))
        without = entropy(profile_of([3, 1, 0]))
        assert with_negative == pytest.approx(without)

    def test_no_positive_mass(self):
        assert entropy(profile_of([0, 0, -1])) == 0.0

    def test_natural_base(self):
        profile = profile_of([2, 2])
        assert entropy(profile, base=math.e) == pytest.approx(math.log(2))

    def test_bad_base(self):
        with pytest.raises(ValueError):
            entropy(profile_of([1]), base=1.0)


class TestGini:
    def test_perfect_equality(self):
        assert gini(profile_of([5, 5, 5, 5])) == pytest.approx(0.0)

    def test_perfect_inequality_approaches_limit(self):
        m = 100
        freqs = [0] * (m - 1) + [1000]
        assert gini(profile_of(freqs)) == pytest.approx((m - 1) / m)

    def test_manual_small_case(self):
        # freqs 1, 3 ascending -> G = (2*(1*1+2*3))/(2*4) - 3/2 = 0.25
        assert gini(profile_of([1, 3])) == pytest.approx(0.25)

    def test_zero_mass(self):
        assert gini(profile_of([0, 0])) == 0.0
        assert gini(SProfile(0)) == 0.0

    def test_in_unit_interval(self, paired_with_oracle):
        profile, __ = paired_with_oracle(30, 500)
        assert 0.0 <= gini(profile) <= 1.0


class TestTopShare:
    def test_all_mass_in_one(self):
        profile = profile_of([10, 0, 0])
        assert top_share(profile, 1) == pytest.approx(1.0)

    def test_uniform_mass(self):
        profile = profile_of([2, 2, 2, 2])
        assert top_share(profile, 1) == pytest.approx(0.25)
        assert top_share(profile, 2) == pytest.approx(0.5)
        assert top_share(profile, 4) == pytest.approx(1.0)

    def test_monotone_in_k(self, paired_with_oracle):
        profile, __ = paired_with_oracle(20, 300)
        shares = [top_share(profile, k) for k in range(0, 21)]
        assert shares == sorted(shares)
        assert shares[0] == 0.0

    def test_zero_mass(self):
        assert top_share(profile_of([0, -3]), 2) == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            top_share(profile_of([1]), -1)

    def test_k_beyond_positive_objects(self):
        profile = profile_of([4, 1, 0, -2])
        assert top_share(profile, 10) == pytest.approx(1.0)
