"""Property-based tests: every multiset behaves like a sorted list."""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.avl import AVLMultiset
from repro.baselines.fenwick import FenwickMultiset
from repro.baselines.skiplist import IndexableSkipList
from repro.baselines.sortedlist import SortedListMultiset
from repro.baselines.treap import TreapMultiset

IMPLEMENTATIONS = {
    "treap": TreapMultiset,
    "avl": AVLMultiset,
    "skiplist": IndexableSkipList,
    "fenwick": FenwickMultiset,
    "sortedlist": SortedListMultiset,
}

# op encoding: (value, is_insert).  Erases target an existing value when
# possible (decoded against the model inside the test).
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-30, max_value=30),
        st.booleans(),
        st.integers(min_value=0, max_value=10 ** 6),
    ),
    max_size=200,
)


@pytest.mark.parametrize("name", sorted(IMPLEMENTATIONS))
@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_multiset_matches_sorted_list_model(name, ops):
    impl = IMPLEMENTATIONS[name]
    ms = impl()
    model: list[int] = []
    for value, is_insert, pick in ops:
        if is_insert or not model:
            ms.insert(value)
            bisect.insort(model, value)
        else:
            victim = model[pick % len(model)]
            ms.erase_one(victim)
            model.remove(victim)
        assert len(ms) == len(model)

    assert list(_expand(ms.items())) == model
    if model:
        assert ms.min() == model[0]
        assert ms.max() == model[-1]
        for index in range(0, len(model), max(1, len(model) // 7)):
            assert ms.kth(index) == model[index]
    for probe in range(-32, 33, 8):
        assert ms.rank_lt(probe) == bisect.bisect_left(model, probe)
        assert ms.count_of(probe) == model.count(probe)
    assert ms.check_structure()


def _expand(items):
    for key, count in items:
        for _ in range(count):
            yield key


@pytest.mark.parametrize("name", sorted(IMPLEMENTATIONS))
@given(
    zeros=st.integers(min_value=0, max_value=50),
    extra=st.lists(st.integers(min_value=-5, max_value=5), max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_from_zeros_then_mutate(name, zeros, extra):
    impl = IMPLEMENTATIONS[name]
    ms = impl.from_zeros(zeros)
    model = [0] * zeros
    for value in extra:
        ms.insert(value)
        bisect.insort(model, value)
    assert list(_expand(ms.items())) == model
    assert len(ms) == len(model)
    assert ms.check_structure()
