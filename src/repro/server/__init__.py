"""The serving layer: profile ingestion and queries over TCP.

The compute stack (flat core, sharded and parallel engines, the
facade's fused plans) answers in-process; this subpackage puts it on a
wire so many concurrent writers can share one profiler:

- :mod:`repro.server.protocol` — length-prefixed JSON frames, the
  negotiated zero-copy binary frame codec, the request/response
  vocabulary, value and error codecs;
- :mod:`repro.server.service` — :class:`ProfileServer`, the asyncio
  TCP service with the **micro-batching** ingest pipeline (concurrent
  wire batches coalesce into one vectorized ``ingest`` without
  changing per-batch semantics), plus :class:`ServerThread` for
  blocking callers;
- :mod:`repro.server.client` — :class:`AsyncProfileClient`
  (pipelining) and the blocking :class:`ProfileClient`;
- :mod:`repro.server.cli` — the ``python -m repro.serve`` entry point.

See ``docs/api.md`` (usage) and ``docs/perf.md`` §7 (the
latency-vs-throughput model of micro-batching).
"""

from repro.server.client import AsyncProfileClient, ProfileClient
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    binary_supported,
)
from repro.server.service import ProfileServer, ServerStats, ServerThread

__all__ = [
    "PROTOCOL_VERSION",
    "AsyncProfileClient",
    "ProfileClient",
    "ProfileServer",
    "ProtocolError",
    "RemoteError",
    "ServerStats",
    "ServerThread",
    "binary_supported",
]
