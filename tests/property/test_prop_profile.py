"""Property-based tests: SProfile vs the bucket oracle.

The central claim of the reproduction: after ANY ±1 event sequence,
S-Profile's answers coincide with a trivially correct recomputation, and
its internal invariants hold.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.baselines.bucket import BucketProfiler
from repro.core.profile import SProfile
from repro.core.validation import audit_profile

# (object fraction of capacity, is_add) event encoded as two draws.
events_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10 ** 9), st.booleans()),
    max_size=300,
)


@st.composite
def capacity_and_events(draw):
    capacity = draw(st.integers(min_value=1, max_value=40))
    raw = draw(events_strategy)
    events = [(obj % capacity, is_add) for obj, is_add in raw]
    return capacity, events


@given(capacity_and_events())
@settings(max_examples=150, deadline=None)
def test_profile_matches_oracle_after_any_sequence(case):
    capacity, events = case
    profile = SProfile(capacity)
    oracle = BucketProfiler(capacity)
    for obj, is_add in events:
        profile.update(obj, is_add)
        oracle.update(obj, is_add)

    audit_profile(profile)
    freqs = oracle.frequencies()
    sorted_freqs = sorted(freqs)

    assert profile.frequencies() == freqs
    assert profile.total == sum(freqs)
    assert profile.max_frequency() == max(freqs)
    assert profile.min_frequency() == min(freqs)
    assert profile.median_frequency() == sorted_freqs[(capacity - 1) // 2]
    assert profile.histogram() == sorted(Counter(freqs).items())

    mode = profile.mode()
    assert mode.frequency == max(freqs)
    assert freqs[mode.example] == max(freqs)
    assert mode.count == freqs.count(max(freqs))
    assert sorted(profile.mode_objects()) == sorted(
        x for x, f in enumerate(freqs) if f == max(freqs)
    )

    top = profile.top_k(capacity)
    assert [entry.frequency for entry in top] == sorted_freqs[::-1]
    assert sorted(entry.obj for entry in top) == list(range(capacity))


@given(capacity_and_events())
@settings(max_examples=60, deadline=None)
def test_freq_index_variant_is_equivalent(case):
    capacity, events = case
    plain = SProfile(capacity)
    indexed = SProfile(capacity, track_freq_index=True)
    for obj, is_add in events:
        plain.update(obj, is_add)
        indexed.update(obj, is_add)
    audit_profile(indexed)
    assert plain.frequencies() == indexed.frequencies()
    assert plain.blocks.as_tuples() == indexed.blocks.as_tuples()
    for f in range(-5, 10):
        assert plain.support(f) == indexed.support(f)


@given(capacity_and_events())
@settings(max_examples=60, deadline=None)
def test_quantiles_match_sorted_array(case):
    capacity, events = case
    profile = SProfile(capacity)
    freqs = [0] * capacity
    for obj, is_add in events:
        profile.update(obj, is_add)
        freqs[obj] += 1 if is_add else -1
    sorted_freqs = sorted(freqs)
    for numerator in range(0, 11):
        q = numerator / 10
        assert profile.quantile(q) == sorted_freqs[int(q * (capacity - 1))]


@given(
    st.lists(st.integers(min_value=-20, max_value=20), max_size=60),
)
@settings(max_examples=100, deadline=None)
def test_from_frequencies_round_trips(freqs):
    profile = SProfile.from_frequencies(freqs)
    audit_profile(profile)
    assert profile.frequencies() == list(freqs)
    assert profile.total == sum(freqs)


class ProfileMachine(RuleBasedStateMachine):
    """Stateful fuzz: arbitrary interleavings of events, growth, copies."""

    @initialize(capacity=st.integers(min_value=1, max_value=16))
    def setup(self, capacity):
        self.capacity = capacity
        self.profile = SProfile(capacity, track_freq_index=True)
        self.model = [0] * capacity

    @rule(obj=st.integers(min_value=0, max_value=10 ** 6))
    def add(self, obj):
        obj %= self.capacity
        self.profile.add(obj)
        self.model[obj] += 1

    @rule(obj=st.integers(min_value=0, max_value=10 ** 6))
    def remove(self, obj):
        obj %= self.capacity
        self.profile.remove(obj)
        self.model[obj] -= 1

    @rule(extra=st.integers(min_value=1, max_value=5))
    def grow(self, extra):
        self.profile.grow(extra)
        self.model.extend([0] * extra)
        self.capacity += extra

    @rule()
    def replace_with_copy(self):
        self.profile = self.profile.copy()

    @invariant()
    def matches_model(self):
        assert self.profile.frequencies() == self.model
        audit_profile(self.profile)


TestProfileMachine = ProfileMachine.TestCase
TestProfileMachine.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)
