"""Experiment definitions: one entry per figure of the paper.

The paper's evaluation (section 3) contains four figures and no tables:

- **Figure 3** — mode upkeep, heap vs S-Profile, time vs ``n``
  (``m = 10^8``), streams 1-3.  Claim: S-Profile >= ~2.2x faster.
- **Figure 4** — mode upkeep, heap vs S-Profile, time vs ``m``
  (``n = 10^8``), streams 1-3.  Claim: >= ~2x faster.
- **Figure 5** — per-``m`` trend on stream1: S-Profile flat, heap grows.
- **Figure 6** — median upkeep, balanced tree vs S-Profile; left: time
  vs ``n`` (``m = 10^6``), right: time vs ``m`` (``n = 10^6``).  Claim:
  13x-452x faster; S-Profile linear in ``n``, flat in ``m``; the tree
  superlinear.  The default comparator is the indexable skip list,
  which (like the paper's GNU PBDS tree) stores all ``m`` frequencies
  as individual entries; the counted treap/AVL variants collapse equal
  keys and are correspondingly harder to beat (``--tree`` to switch).

The paper's C++ runs used ``n, m = 10^8``; pure-Python reruns scale the
sweeps down (SCALES below) — the *shapes* (who wins, flat-vs-growing
trends) are scale-independent, which EXPERIMENTS.md verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import make_profiler
from repro.bench.runner import (
    SeriesResult,
    run_series,
    time_median_workload,
    time_mode_workload,
)
from repro.bench.workloads import build_stream
from repro.errors import StreamConfigError

__all__ = ["FIGURES", "SCALES", "FigureResult", "run_figure"]

#: Figure ids reproduced from the paper.
FIGURES = (3, 4, 5, 6)

#: Sweep sizes per scale.  "paper" mirrors the published parameters and
#: is provided for completeness — at Python speeds it runs for days and
#: needs tens of GB; use "small" (seconds) or "medium" (minutes).
SCALES: dict[str, dict[str, object]] = {
    "tiny": {
        # Smoke-test scale: finishes in about a second; used by the
        # test suite and quick sanity checks, too noisy for conclusions.
        "fig3_m": 2_000,
        "fig3_n": [1_000, 2_000],
        "fig4_n": 2_000,
        "fig4_m": [1_000, 2_000],
        "fig5_n": 2_000,
        "fig5_m": [1_000, 2_000],
        "fig6_m": 1_000,
        "fig6_n": [1_000, 2_000],
        "fig6_n_fixed": 2_000,
        "fig6_m_sweep": [500, 1_000],
    },
    "small": {
        "fig3_m": 20_000,
        "fig3_n": [10_000, 20_000, 40_000, 80_000],
        "fig4_n": 40_000,
        "fig4_m": [5_000, 10_000, 20_000, 40_000, 80_000],
        "fig5_n": 40_000,
        "fig5_m": [5_000, 10_000, 20_000, 40_000, 80_000],
        "fig6_m": 10_000,
        "fig6_n": [5_000, 10_000, 20_000, 40_000],
        "fig6_n_fixed": 20_000,
        "fig6_m_sweep": [2_500, 5_000, 10_000, 20_000, 40_000],
    },
    "medium": {
        "fig3_m": 200_000,
        "fig3_n": [100_000, 200_000, 400_000, 800_000],
        "fig4_n": 400_000,
        "fig4_m": [50_000, 100_000, 200_000, 400_000, 800_000],
        "fig5_n": 400_000,
        "fig5_m": [50_000, 100_000, 200_000, 400_000, 800_000],
        "fig6_m": 100_000,
        "fig6_n": [50_000, 100_000, 200_000, 400_000],
        "fig6_n_fixed": 200_000,
        "fig6_m_sweep": [25_000, 50_000, 100_000, 200_000, 400_000],
    },
    "paper": {
        "fig3_m": 100_000_000,
        "fig3_n": [12_500_000, 25_000_000, 50_000_000, 100_000_000],
        "fig4_n": 100_000_000,
        "fig4_m": [20_000_000, 40_000_000, 60_000_000, 80_000_000,
                   100_000_000],
        "fig5_n": 100_000_000,
        "fig5_m": [20_000_000, 40_000_000, 60_000_000, 80_000_000,
                   100_000_000],
        "fig6_m": 1_000_000,
        "fig6_n": [100_000, 1_000_000, 10_000_000, 100_000_000],
        "fig6_n_fixed": 1_000_000,
        "fig6_m_sweep": [100_000, 1_000_000, 10_000_000, 100_000_000],
    },
}


@dataclass
class FigureResult:
    """All series regenerating one paper figure."""

    figure: int
    scale: str
    description: str
    expectation: str
    series: list[SeriesResult]


def _factories(names: tuple[str, ...]):
    return {
        name: (lambda capacity, _n=name: make_profiler(_n, capacity))
        for name in names
    }


def run_figure(
    figure: int,
    *,
    scale: str = "small",
    repeats: int = 3,
    tree: str = "tree-skiplist",
    seed: int = 0,
) -> FigureResult:
    """Run all experiments behind one paper figure and collect times."""
    if scale not in SCALES:
        raise StreamConfigError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        )
    params = SCALES[scale]
    if figure == 3:
        return _run_fig3(params, scale, repeats, seed)
    if figure == 4:
        return _run_fig4(params, scale, repeats, seed)
    if figure == 5:
        return _run_fig5(params, scale, repeats, seed)
    if figure == 6:
        return _run_fig6(params, scale, repeats, tree, seed)
    raise StreamConfigError(f"paper has no figure {figure}")


def _run_fig3(params, scale, repeats, seed) -> FigureResult:
    m = params["fig3_m"]
    sweep = params["fig3_n"]
    series = []
    for stream_name in ("stream1", "stream2", "stream3"):
        series.append(
            run_series(
                title=f"Figure 3 · {stream_name}",
                x_label="n",
                x_values=sweep,
                profiler_factories=_factories(("heap-max", "sprofile")),
                stream_for_x=lambda n, s=stream_name: build_stream(
                    s, n, m, seed=seed
                ),
                capacity_for_x=lambda n: m,
                timer=time_mode_workload,
                repeats=repeats,
            )
        )
    return FigureResult(
        figure=3,
        scale=scale,
        description=(
            f"Mode upkeep: CPU time vs n at fixed m={m} "
            "(paper: m=10^8), heap vs S-Profile, streams 1-3"
        ),
        expectation="S-Profile >= ~2x faster at every n on every stream",
        series=series,
    )


def _run_fig4(params, scale, repeats, seed) -> FigureResult:
    n = params["fig4_n"]
    sweep = params["fig4_m"]
    series = []
    for stream_name in ("stream1", "stream2", "stream3"):
        series.append(
            run_series(
                title=f"Figure 4 · {stream_name}",
                x_label="m",
                x_values=sweep,
                profiler_factories=_factories(("heap-max", "sprofile")),
                stream_for_x=lambda m, s=stream_name: build_stream(
                    s, n, m, seed=seed
                ),
                capacity_for_x=lambda m: m,
                timer=time_mode_workload,
                repeats=repeats,
            )
        )
    return FigureResult(
        figure=4,
        scale=scale,
        description=(
            f"Mode upkeep: CPU time vs m at fixed n={n} "
            "(paper: n=10^8), heap vs S-Profile, streams 1-3"
        ),
        expectation="S-Profile >= ~2x faster at every m on every stream",
        series=series,
    )


def _run_fig5(params, scale, repeats, seed) -> FigureResult:
    n = params["fig5_n"]
    sweep = params["fig5_m"]
    series = [
        run_series(
            title="Figure 5 · stream1 trend",
            x_label="m",
            x_values=sweep,
            profiler_factories=_factories(("heap-max", "sprofile")),
            stream_for_x=lambda m: build_stream("stream1", n, m, seed=seed),
            capacity_for_x=lambda m: m,
            timer=time_mode_workload,
            repeats=repeats,
        )
    ]
    return FigureResult(
        figure=5,
        scale=scale,
        description=(
            f"Mode upkeep trend vs m at fixed n={n} on stream1 "
            "(paper: n=10^8)"
        ),
        expectation=(
            "S-Profile's curve is flat in m (O(1) per event); "
            "the heap's grows with m (O(log m) sifts)"
        ),
        series=series,
    )


def _run_fig6(params, scale, repeats, tree, seed) -> FigureResult:
    m_fixed = params["fig6_m"]
    n_sweep = params["fig6_n"]
    n_fixed = params["fig6_n_fixed"]
    m_sweep = params["fig6_m_sweep"]
    series = [
        run_series(
            title=f"Figure 6 (left) · median, time vs n (m={m_fixed})",
            x_label="n",
            x_values=n_sweep,
            profiler_factories=_factories((tree, "sprofile")),
            stream_for_x=lambda n: build_stream(
                "stream1", n, m_fixed, seed=seed
            ),
            capacity_for_x=lambda n: m_fixed,
            timer=time_median_workload,
            repeats=repeats,
        ),
        run_series(
            title=f"Figure 6 (right) · median, time vs m (n={n_fixed})",
            x_label="m",
            x_values=m_sweep,
            profiler_factories=_factories((tree, "sprofile")),
            stream_for_x=lambda m: build_stream(
                "stream1", n_fixed, m, seed=seed
            ),
            capacity_for_x=lambda m: m,
            timer=time_median_workload,
            repeats=repeats,
        ),
    ]
    return FigureResult(
        figure=6,
        scale=scale,
        description=(
            "Median upkeep: balanced tree vs S-Profile "
            "(paper: m=10^6 / n=10^6, GNU PBDS tree)"
        ),
        expectation=(
            "S-Profile linear in n and flat in m; the tree superlinear "
            "in both; paper reports 13x-452x speedups"
        ),
        series=series,
    )
