"""Command-line entry point for regenerating the paper's figures.

Examples
--------
Regenerate one figure at the default (seconds-long) scale::

    python -m repro bench --figure 3

Everything, at the minutes-long scale, machine-readable::

    python -m repro bench --all --scale medium --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict

from repro.bench.figures import FIGURES, SCALES, run_figure
from repro.bench.reporting import format_figure

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the figures of the S-Profile paper.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--figure",
        type=int,
        choices=FIGURES,
        help="paper figure number to regenerate",
    )
    group.add_argument(
        "--all", action="store_true", help="regenerate every figure"
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="sweep sizes (small: seconds, medium: minutes, "
        "paper: published sizes — impractical in Python)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per point (median is reported)",
    )
    parser.add_argument(
        "--tree",
        default="tree-skiplist",
        choices=(
            "tree-treap",
            "tree-avl",
            "tree-skiplist",
            "tree-fenwick",
            "tree-sortedlist",
        ),
        help="balanced-tree stand-in for figure 6",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="stream generation seed"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also dump raw results as JSON to PATH",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    figures = list(FIGURES) if args.all else [args.figure]
    results = []
    for figure in figures:
        result = run_figure(
            figure,
            scale=args.scale,
            repeats=args.repeats,
            tree=args.tree,
            seed=args.seed,
        )
        results.append(result)
        print(format_figure(result))
        sys.stdout.flush()
    if args.json:
        payload = [asdict(result) for result in results]
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"raw results written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
