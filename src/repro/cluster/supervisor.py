"""Replica process lifecycle: spawn, watch, respawn.

:class:`ReplicaSupervisor` turns ``python -m repro.serve`` into the
cluster's replica tier: one subprocess per partition, each serving a
dense non-strict profiler of exactly its partition capacity, each
publishing its bound port through an atomically written port file
(``--port-file``; tmp + rename, so a polling supervisor never reads a
half-written number) and its pid through a pid file (so external
chaos — a CI kill gate, an operator — can target a replica without
asking the supervisor).

The router drives recovery through one duck-typed method:
``await ensure_replica(p)`` returns the partition's current endpoint,
respawning the process first if it has died.  The supervisor never
watches proactively — the router notices a dead replica the instant a
send fails, and whoever notices calls ``ensure_replica``.

Respawning is rationed: more than ``max_respawn_burst`` respawns of
the *same* partition inside ``respawn_window`` seconds means the
replica is crash-looping — a bad binary, an OOM treadmill, a poisoned
snapshot — and blindly respawning forever converts a config problem
into an invisible availability problem.  The supervisor escalates to a
**sticky** terminal state instead: every further ``ensure_replica``
raises :class:`~repro.errors.ClusterUnhealthyError` (non-retryable)
and the router shuts the tier down rather than keep accepting batches
it cannot deliver.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import CapacityError, ClusterUnhealthyError
from repro.testing.faults import fault_point_sync

__all__ = ["ReplicaSupervisor"]


def _partition_capacity(m: int, p: int, n: int) -> int:
    return (m - p + n - 1) // n


class ReplicaSupervisor:
    """Manage ``n_replicas`` serve subprocesses for one universe.

    Parameters
    ----------
    capacity:
        Global universe size ``m``; replica ``p`` serves
        ``(m - p + n - 1) // n`` ids.
    n_replicas:
        Partition count.
    workdir:
        Directory for port files, pid files and per-replica logs.
    backend:
        Facade backend each replica opens (default ``auto``; use
        ``flat``/``exact`` — the cluster checkpoint assembles only
        single-profile replica states).
    codec:
        ``--codec`` forwarded to every replica (``binary`` offers the
        negotiated binary frame codec; ``json`` forces JSON).
    serve_args:
        Extra ``python -m repro.serve`` flags appended verbatim
        (e.g. ``["--batch-max", "2048"]``).
    boot_timeout:
        Seconds to wait for a (re)spawned replica's port file.
    max_respawn_burst / respawn_window:
        The crash-loop escalation threshold: strictly more than
        ``max_respawn_burst`` respawns of one partition within
        ``respawn_window`` seconds marks the cluster unhealthy —
        terminally (see the module docstring).
    """

    def __init__(
        self,
        capacity: int,
        n_replicas: int,
        *,
        workdir: str | Path,
        host: str = "127.0.0.1",
        backend: str = "auto",
        codec: str = "binary",
        serve_args: list[str] | None = None,
        boot_timeout: float = 30.0,
        python: str = sys.executable,
        max_respawn_burst: int = 5,
        respawn_window: float = 30.0,
    ) -> None:
        if n_replicas < 1:
            raise CapacityError(
                f"n_replicas must be >= 1, got {n_replicas}"
            )
        if capacity < n_replicas:
            raise CapacityError(
                f"capacity {capacity} cannot spread over {n_replicas} "
                f"replicas"
            )
        self._capacity = capacity
        self._n = n_replicas
        self._workdir = Path(workdir)
        self._host = host
        self._backend = backend
        self._codec = codec
        self._serve_args = list(serve_args or ())
        self._boot_timeout = boot_timeout
        self._python = python
        if max_respawn_burst < 1:
            raise CapacityError(
                f"max_respawn_burst must be >= 1, got {max_respawn_burst}"
            )
        self._max_burst = max_respawn_burst
        self._window = respawn_window
        self._procs: list[subprocess.Popen | None] = [None] * n_replicas
        self._ports: list[int | None] = [None] * n_replicas
        self._respawn_times: list[list[float]] = [
            [] for _ in range(n_replicas)
        ]
        self._unhealthy: str | None = None
        self.respawns = 0

    # -- paths ---------------------------------------------------------

    def port_file(self, p: int) -> Path:
        return self._workdir / f"replica-{p}.port"

    def pid_file(self, p: int) -> Path:
        return self._workdir / f"replica-{p}.pid"

    def log_file(self, p: int) -> Path:
        return self._workdir / f"replica-{p}.log"

    # -- lifecycle -----------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return self._n

    @property
    def endpoints(self) -> list[tuple[str, int]]:
        """Current ``(host, port)`` per partition (after :meth:`start`)."""
        if any(port is None for port in self._ports):
            raise RuntimeError("supervisor not started")
        return [(self._host, port) for port in self._ports]

    async def start(self) -> "ReplicaSupervisor":
        """Spawn every replica and wait until all ports are published."""
        self._workdir.mkdir(parents=True, exist_ok=True)
        for p in range(self._n):
            self._spawn(p)
        for p in range(self._n):
            self._ports[p] = await self._wait_port(p)
        return self

    def _spawn(self, p: int) -> None:
        fault_point_sync("supervisor.spawn")
        self._kill_stale(p)
        port_file = self.port_file(p)
        port_file.unlink(missing_ok=True)
        cmd = [
            self._python,
            "-m",
            "repro.serve",
            "--capacity",
            str(_partition_capacity(self._capacity, p, self._n)),
            "--backend",
            self._backend,
            "--host",
            self._host,
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--codec",
            self._codec,
            "--role",
            "replica",
            "--partition",
            f"{p}/{self._n}",
            *self._serve_args,
        ]
        log = open(self.log_file(p), "ab")
        try:
            proc = subprocess.Popen(
                cmd,
                stdout=log,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
            )
        finally:
            log.close()
        self._procs[p] = proc
        self.pid_file(p).write_text(f"{proc.pid}\n")

    def _kill_stale(self, p: int) -> None:
        """Kill a leftover replica from a dead supervisor, by pid file.

        A router SIGKILL orphans its replicas: a *new* supervisor in
        the same workdir has no Popen handle on them, but their pid
        files survive.  Spawning a second replica for the same
        partition next to a live orphan would split the partition's
        state, so the stale pid is killed first.  Only pids this
        supervisor does not own are touched, and only best-effort (the
        pid may be long dead or recycled — ESRCH/EPERM are fine).
        """
        proc = self._procs[p]
        try:
            stale = int(self.pid_file(p).read_text().strip())
        except (FileNotFoundError, ValueError):
            return
        if proc is not None and proc.pid == stale:
            return
        try:
            os.kill(stale, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass

    async def _wait_port(self, p: int) -> int:
        """Poll for the replica's (atomically written) port file."""
        deadline = time.monotonic() + self._boot_timeout
        port_file = self.port_file(p)
        while time.monotonic() < deadline:
            proc = self._procs[p]
            if proc is not None and proc.poll() is not None:
                raise RuntimeError(
                    f"replica {p} exited with code {proc.returncode} "
                    f"before binding (see {self.log_file(p)})"
                )
            try:
                text = port_file.read_text()
            except FileNotFoundError:
                text = ""
            if text.strip():
                return int(text.strip())
            await asyncio.sleep(0.02)
        raise RuntimeError(
            f"replica {p} did not publish a port within "
            f"{self._boot_timeout:g}s (see {self.log_file(p)})"
        )

    def alive(self, p: int) -> bool:
        proc = self._procs[p]
        return proc is not None and proc.poll() is None

    def pid(self, p: int) -> int:
        proc = self._procs[p]
        if proc is None:
            raise RuntimeError(f"replica {p} was never spawned")
        return proc.pid

    async def ensure_replica(self, p: int) -> tuple[str, int]:
        """The router's recovery hook: endpoint of a live replica ``p``.

        A dead process is respawned (fresh, empty — the router restores
        the snapshot and replays the journal on top) and its new port
        awaited.  A live process just returns its current endpoint —
        the caller's connection failure may have been transient.
        """
        if not 0 <= p < self._n:
            raise CapacityError(
                f"partition {p} out of range [0, {self._n})"
            )
        if self._unhealthy is not None:
            raise ClusterUnhealthyError(self._unhealthy)
        if not self.alive(p):
            self._note_respawn(p)
            self.respawns += 1
            self._spawn(p)
            self._ports[p] = await self._wait_port(p)
        return (self._host, self._ports[p])

    def _note_respawn(self, p: int) -> None:
        """Record one respawn of ``p``; escalate on a storm.

        Sticky on purpose: once a partition crash-loops past the
        threshold, the answer is an operator (or a test teardown), not
        respawn attempt number fifty — so the unhealthy verdict never
        resets by itself.
        """
        now = time.monotonic()
        times = self._respawn_times[p]
        times.append(now)
        cutoff = now - self._window
        while times and times[0] < cutoff:
            times.pop(0)
        if len(times) > self._max_burst:
            self._unhealthy = (
                f"replica {p} respawned {len(times)} times within "
                f"{self._window:g}s (limit {self._max_burst}); the "
                f"partition is crash-looping and the cluster is "
                f"terminally unhealthy"
            )
            raise ClusterUnhealthyError(self._unhealthy)

    @property
    def unhealthy(self) -> str | None:
        """The sticky escalation verdict (``None`` while healthy)."""
        return self._unhealthy

    def kill(self, p: int, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` to replica ``p`` (the chaos hook for tests)."""
        os.kill(self.pid(p), sig)

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM every live replica and reap them (idempotent)."""
        for p, proc in enumerate(self._procs):
            if proc is None or proc.poll() is not None:
                continue
            try:
                proc.terminate()
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            if proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(5.0)

    async def __aenter__(self) -> "ReplicaSupervisor":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        self.stop()
