"""Unit tests for the event vocabulary."""

from repro.streams.events import Action, Event


class TestAction:
    def test_opposites(self):
        assert Action.ADD.opposite is Action.REMOVE
        assert Action.REMOVE.opposite is Action.ADD

    def test_is_add(self):
        assert Action.ADD.is_add
        assert not Action.REMOVE.is_add

    def test_from_flag(self):
        assert Action.from_flag(True) is Action.ADD
        assert Action.from_flag(False) is Action.REMOVE

    def test_str(self):
        assert str(Action.ADD) == "add"
        assert str(Action.REMOVE) == "remove"


class TestEvent:
    def test_fields(self):
        event = Event(3, Action.ADD)
        assert event.obj == 3
        assert event.is_add

    def test_opposite(self):
        event = Event(3, Action.ADD)
        flipped = event.opposite()
        assert flipped.obj == 3
        assert flipped.action is Action.REMOVE
        assert flipped.opposite() == event

    def test_tuple_behaviour(self):
        obj, action = Event(1, Action.REMOVE)
        assert obj == 1 and action is Action.REMOVE
