"""Dynamic-universe profiling: arbitrary ids, growable capacity.

The paper fixes ``m`` up front and assumes ids are pre-mapped to
``[1, m]``.  :class:`DynamicProfiler` removes both assumptions:

- arbitrary hashable ids via :class:`~repro.core.interner.ObjectInterner`;
- the universe grows as new ids appear, amortized O(1) per registration.

Growth works with *phantom slots*: the underlying
:class:`~repro.core.profile.SProfile` is kept at a physical capacity that
doubles when exhausted (one O(m) splice per doubling).  Dense ids
``[registered, physical)`` are phantoms — pre-created slots pinned at
frequency zero because no event ever touches them.  Registering a new id
just claims the lowest phantom: no structural work at all.

Queries are answered over the *logical* universe (registered ids only).
Phantoms all live inside the zero-frequency block, so the translation is
a constant-time rank adjustment; only queries that must *name* a
zero-frequency object (e.g. the mode example when everything ties at
zero) scan for a non-phantom and are O(#phantoms) worst case — noted per
method.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Iterator

from repro.core.interner import ObjectInterner
from repro.core.profile import SProfile, net_deltas
from repro.core.queries import ModeResult, TopEntry, quantile_rank
from repro.core.snapshot import ProfileSnapshot
from repro.errors import (
    CapacityError,
    EmptyProfileError,
    FrequencyUnderflowError,
    UnknownObjectError,
)

__all__ = ["DynamicProfiler"]

_MIN_CAPACITY = 8


class DynamicProfiler:
    """Profile a stream whose object universe is not known in advance.

    Parameters
    ----------
    allow_negative:
        As in :class:`~repro.core.profile.SProfile`.  When False,
        removing a never-seen id raises
        :class:`~repro.errors.FrequencyUnderflowError`.
    initial_capacity:
        Starting physical capacity (doubles on demand).

    Examples
    --------
    >>> p = DynamicProfiler()
    >>> for user in ["ada", "bob", "ada", "cyd", "ada"]:
    ...     p.add(user)
    >>> p.mode().example, p.mode().frequency
    ('ada', 3)
    """

    __slots__ = ("_interner", "_profile", "_i_get", "_p_add", "_p_remove")

    def __init__(
        self,
        *,
        allow_negative: bool = True,
        initial_capacity: int = _MIN_CAPACITY,
    ) -> None:
        if initial_capacity < 0:
            raise CapacityError(
                f"initial_capacity must be >= 0, got {initial_capacity}"
            )
        self._interner = ObjectInterner()
        self._profile = SProfile(
            max(initial_capacity, _MIN_CAPACITY),
            allow_negative=allow_negative,
            track_freq_index=True,
        )
        self._rebind()

    def _rebind(self) -> None:
        """Refresh the hoisted bound methods of the delegation hot path.

        ``add``/``remove`` run once per event; resolving
        ``self._interner.get`` / ``self._profile.add`` freshly each
        time costs two attribute chains per event for nothing —
        :class:`~repro.core.profile.SProfile.grow` mutates the profile
        in place, so the bound methods stay valid across growth.  Any
        code that *replaces* ``_interner`` or ``_profile`` wholesale
        (checkpoint restore) must call this; measured in
        ``benchmarks/bench_dynamic_overhead.py``.
        """
        self._i_get = self._interner.get
        self._p_add = self._profile.add
        self._p_remove = self._profile.remove

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, obj: Hashable) -> None:
        """Process an "add" for ``obj``, registering it if new.  O(1) am."""
        dense = self._i_get(obj)
        if dense is None:
            dense = self._dense_or_register(obj)
        self._p_add(dense)

    def remove(self, obj: Hashable) -> None:
        """Process a "remove" for ``obj``.

        In negative mode a never-seen id is registered and driven to
        frequency -1 (paper semantics).  In strict mode this raises
        :class:`~repro.errors.FrequencyUnderflowError` without
        registering anything.
        """
        dense = self._i_get(obj)
        if dense is None:
            if not self._profile.allow_negative:
                raise FrequencyUnderflowError(
                    f"cannot remove never-seen object {obj!r} in strict mode"
                )
            dense = self._dense_or_register(obj)
        self._p_remove(dense)

    def update(self, obj: Hashable, is_add: bool) -> None:
        """Apply one log-stream tuple ``(obj, c)``."""
        if is_add:
            self.add(obj)
        else:
            self.remove(obj)

    def consume(self, events) -> int:
        """Apply an iterable of ``(obj, is_add)`` pairs; return count."""
        n = 0
        for obj, is_add in events:
            if is_add:
                self.add(obj)
            else:
                self.remove(obj)
            n += 1
        return n

    def add_many(self, objs: Iterable[Hashable]) -> int:
        """Apply one add per element of ``objs``, registering new ids.

        Coalesces repeated ids and rides
        :meth:`repro.core.profile.SProfile.apply`'s climb fast path;
        returns the event count.  Same batch semantics as the flat
        profiler: final frequencies match the per-event loop, tie order
        inside equal frequencies may differ.
        """
        counts = Counter(objs)
        if not counts:
            return 0
        dense = {
            self._dense_or_register(obj): c for obj, c in counts.items()
        }
        return self._profile.apply(dense)

    def remove_many(self, objs: Iterable[Hashable]) -> int:
        """Apply one remove per element of ``objs``.

        Mirror of :meth:`add_many`.  In strict mode a never-seen id
        raises without registering anything, and a key removed past
        frequency zero raises before any of that key's removes apply.
        """
        counts = Counter(objs)
        if not counts:
            return 0
        strict = not self._profile.allow_negative
        dense: dict[int, int] = {}
        for obj, c in counts.items():
            d = self._interner.get(obj)
            if d is None:
                if strict:
                    raise FrequencyUnderflowError(
                        f"cannot remove never-seen object {obj!r} "
                        f"in strict mode"
                    )
                d = self._dense_or_register(obj)
            dense[d] = -c
        return self._profile.apply(dense)

    def apply(self, deltas) -> int:
        """Apply ``(object, delta)`` pairs (or a mapping) as unit steps.

        Deltas per key are summed first; keys whose net delta is zero
        are untouched (not even registered).  Returns the number of net
        unit events applied.  In strict mode every underflow — on a
        never-seen or a known key — is detected *before* anything is
        registered or mutated, so a rejected batch leaves the profiler
        (universe included) untouched.
        """
        net = net_deltas(deltas)
        profile = self._profile
        get = self._interner.get
        if not profile.allow_negative:
            for obj, d in net.items():
                if d >= 0:
                    continue
                dense = get(obj)
                if dense is None:
                    raise FrequencyUnderflowError(
                        f"cannot remove never-seen object {obj!r} "
                        f"in strict mode"
                    )
                if profile.frequency(dense) + d < 0:
                    raise FrequencyUnderflowError(
                        f"removing object {obj!r} at frequency "
                        f"{profile.frequency(dense)} {-d} times (net) "
                        f"would go negative"
                    )
        dense_net: dict[int, int] = {}
        for obj, d in net.items():
            if d == 0:
                continue
            dense = get(obj)
            if dense is None:
                dense = self._dense_or_register(obj)
            dense_net[dense] = d
        return self._profile.apply(dense_net)

    def register(self, obj: Hashable) -> None:
        """Ensure ``obj`` is part of the universe (frequency 0 if new)."""
        self._dense_or_register(obj)

    def _dense_or_register(self, obj: Hashable) -> int:
        dense = self._i_get(obj)
        if dense is None:
            if len(self._interner) == self._profile.capacity:
                self._profile.grow(max(self._profile.capacity, _MIN_CAPACITY))
            dense = self._interner.intern(obj)
        return dense

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------

    def frequency(self, obj: Hashable) -> int:
        """Net count of ``obj``; 0 for never-seen ids.  O(1)."""
        dense = self._interner.get(obj)
        if dense is None:
            return 0
        return self._profile.frequency(dense)

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._interner

    def __len__(self) -> int:
        """Number of registered (logical) objects."""
        return len(self._interner)

    # ------------------------------------------------------------------
    # Extremes
    # ------------------------------------------------------------------

    def mode(self) -> ModeResult:
        """Most frequent object(s).  O(1); O(#phantoms) only when the
        maximum frequency is exactly zero (ties must name a real id)."""
        size = self._size_checked()
        blocks = self._profile.blocks
        block = blocks.rightmost()
        phantoms = self.phantom_count
        if phantoms and block.f == 0:
            real = (block.r - block.l + 1) - phantoms
            if real == 0:
                block = blocks.block_at(block.l - 1)
            else:
                return ModeResult(
                    frequency=0,
                    count=real,
                    example=self._real_example(block, size),
                )
        return ModeResult(
            frequency=block.f,
            count=block.r - block.l + 1,
            example=self._interner.external(self._profile._ttof[block.r]),
        )

    def least(self) -> ModeResult:
        """Least frequent object(s).  Mirror of :meth:`mode`."""
        size = self._size_checked()
        blocks = self._profile.blocks
        block = blocks.leftmost()
        phantoms = self.phantom_count
        if phantoms and block.f == 0:
            real = (block.r - block.l + 1) - phantoms
            if real == 0:
                block = blocks.block_at(block.r + 1)
            else:
                return ModeResult(
                    frequency=0,
                    count=real,
                    example=self._real_example(block, size),
                )
        return ModeResult(
            frequency=block.f,
            count=block.r - block.l + 1,
            example=self._interner.external(self._profile._ttof[block.l]),
        )

    def majority(self) -> Hashable | None:
        """The object holding more than half the total mass, if any."""
        if len(self._interner) == 0:
            return None
        total = self._profile.total
        if total <= 0:
            return None
        top = self.mode()
        if 2 * top.frequency > total:
            return top.example
        return None

    def top_k(self, k: int) -> list[TopEntry]:
        """``min(k, len(self))`` most frequent objects, descending.

        O(k + #phantoms crossed): phantoms sit in the zero block and are
        skipped during the walk.
        """
        if k < 0:
            raise CapacityError(f"k must be >= 0, got {k}")
        size = len(self._interner)
        want = min(k, size)
        out: list[TopEntry] = []
        if want == 0:
            return out
        ttof = self._profile._ttof
        external = self._interner.external
        for block in self._profile.blocks.iter_blocks_desc():
            f = block.f
            for rank in range(block.r, block.l - 1, -1):
                obj = ttof[rank]
                if obj >= size:
                    continue  # phantom
                out.append(TopEntry(external(obj), f))
                if len(out) == want:
                    return out
        return out

    def bottom_k(self, k: int) -> list[TopEntry]:
        """``min(k, len(self))`` least frequent objects, ascending."""
        if k < 0:
            raise CapacityError(f"k must be >= 0, got {k}")
        size = len(self._interner)
        want = min(k, size)
        out: list[TopEntry] = []
        if want == 0:
            return out
        ttof = self._profile._ttof
        external = self._interner.external
        for block in self._profile.blocks.iter_blocks():
            f = block.f
            for rank in range(block.l, block.r + 1):
                obj = ttof[rank]
                if obj >= size:
                    continue  # phantom
                out.append(TopEntry(external(obj), f))
                if len(out) == want:
                    return out
        return out

    # ------------------------------------------------------------------
    # Quantiles over the logical universe
    # ------------------------------------------------------------------

    def median_frequency(self) -> int:
        """Lower median frequency over registered objects.  O(1)."""
        size = self._size_checked()
        return self._frequency_at_logical_rank((size - 1) // 2)

    def quantile(self, q: float) -> int:
        """Frequency at quantile ``q`` over registered objects.  O(1).

        Semantics per :func:`~repro.core.queries.quantile_rank`.
        """
        size = self._size_checked()
        return self._frequency_at_logical_rank(quantile_rank(q, size))

    def _frequency_at_logical_rank(self, rank: int) -> int:
        phantoms = self.phantom_count
        if phantoms == 0:
            return self._profile.frequency_at_rank(rank)
        zero = self._profile.blocks.block_for_frequency(0)
        # Phantoms always hold frequency 0, so the zero block exists.
        assert zero is not None
        real_zeros = (zero.r - zero.l + 1) - phantoms
        if rank < zero.l:
            return self._profile.frequency_at_rank(rank)
        if rank < zero.l + real_zeros:
            return 0
        return self._profile.frequency_at_rank(rank + phantoms)

    # ------------------------------------------------------------------
    # Distribution
    # ------------------------------------------------------------------

    def histogram(self) -> list[tuple[int, int]]:
        """``(frequency, #registered objects)`` ascending.  O(#blocks)."""
        phantoms = self.phantom_count
        out: list[tuple[int, int]] = []
        for f, count in self._profile.histogram():
            if f == 0 and phantoms:
                count -= phantoms
                if count == 0:
                    continue
            out.append((f, count))
        return out

    def support(self, f: int) -> int:
        """Number of registered objects at frequency exactly ``f``."""
        count = self._profile.support(f)
        if f == 0:
            count -= self.phantom_count
        return count

    def objects_with_frequency(
        self, f: int, limit: int | None = None
    ) -> list[Hashable]:
        """Registered objects at frequency ``f`` (up to ``limit``)."""
        size = len(self._interner)
        external = self._interner.external
        out: list[Hashable] = []
        for dense in self._profile.objects_with_frequency(f):
            if dense >= size:
                continue
            if limit is not None and len(out) >= limit:
                break
            out.append(external(dense))
        return out

    def items(self) -> Iterator[tuple[Hashable, int]]:
        """Yield ``(object, frequency)`` ascending by frequency."""
        size = len(self._interner)
        external = self._interner.external
        for dense, f in self._profile.iter_sorted():
            if dense < size:
                yield external(dense), f

    def snapshot(self) -> ProfileSnapshot:
        """Frozen logical snapshot (dense ids; phantoms excluded).

        The snapshot speaks *dense* ids in ``[0, len(self))``; translate
        back with :meth:`external`.  Use it to run
        :mod:`repro.core.stats` over the logical universe.
        """
        size = len(self._interner)
        ttof = [d for d in self._profile._ttof if d < size]
        runs: list[tuple[int, int, int]] = []
        cursor = 0
        phantoms = self.phantom_count
        for block in self._profile.blocks.iter_blocks():
            count = block.r - block.l + 1
            if block.f == 0:
                count -= phantoms
            if count <= 0:
                continue
            runs.append((cursor, cursor + count - 1, block.f))
            cursor += count
        return ProfileSnapshot(
            ttof=ttof,
            runs=runs,
            total=self._profile.total,
            n_events=self._profile.n_events,
        )

    # ------------------------------------------------------------------
    # Id translation and bookkeeping
    # ------------------------------------------------------------------

    def external(self, dense: int) -> Hashable:
        """External id for a dense id (e.g. from a snapshot)."""
        if not 0 <= dense < len(self._interner):
            raise UnknownObjectError(dense)
        return self._interner.external(dense)

    @property
    def capacity(self) -> int:
        """Logical universe size (registered objects)."""
        return len(self._interner)

    @property
    def physical_capacity(self) -> int:
        """Current capacity of the backing :class:`SProfile`."""
        return self._profile.capacity

    @property
    def phantom_count(self) -> int:
        """Pre-allocated, not-yet-registered slots."""
        return self._profile.capacity - len(self._interner)

    @property
    def total(self) -> int:
        """Sum of frequencies (phantoms contribute zero)."""
        return self._profile.total

    @property
    def active_count(self) -> int:
        """Registered objects at non-zero frequency."""
        return self._profile.active_count

    @property
    def n_events(self) -> int:
        return self._profile.n_events

    @property
    def allow_negative(self) -> bool:
        return self._profile.allow_negative

    @property
    def profile(self) -> SProfile:
        """The backing profiler (includes phantom slots — see module doc)."""
        return self._profile

    def _real_example(self, block, size: int) -> Hashable:
        """A registered object inside ``block`` (which must contain one)."""
        ttof = self._profile._ttof
        for rank in range(block.l, block.r + 1):
            if ttof[rank] < size:
                return self._interner.external(ttof[rank])
        raise AssertionError("block contained no registered object")

    def _size_checked(self) -> int:
        size = len(self._interner)
        if size == 0:
            raise EmptyProfileError("no objects registered")
        return size

    def __repr__(self) -> str:
        return (
            f"DynamicProfiler(size={len(self._interner)}, "
            f"physical={self._profile.capacity}, total={self.total})"
        )
