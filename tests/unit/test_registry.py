"""Unit tests for the profiler registry."""

import pytest

from repro.baselines.base import QUERY_NAMES
from repro.baselines.registry import (
    available_profilers,
    make_profiler,
    profiler_supports,
)
from repro.core.profile import SProfile
from repro.errors import CapacityError, UnsupportedQueryError


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_profilers():
            profiler = make_profiler(name, 8)
            assert profiler.capacity == 8

    def test_sprofile_name_maps_to_class(self):
        assert isinstance(make_profiler("sprofile", 4), SProfile)

    def test_indexed_variant(self):
        profiler = make_profiler("sprofile-indexed", 4)
        assert profiler.blocks.tracks_freq_index

    def test_unknown_name(self):
        with pytest.raises(CapacityError):
            make_profiler("btree", 4)
        with pytest.raises(CapacityError):
            profiler_supports("btree")

    def test_supports_are_subsets_of_query_names(self):
        for name in available_profilers():
            assert profiler_supports(name) <= QUERY_NAMES

    def test_allow_negative_forwarded(self):
        from repro.errors import FrequencyUnderflowError

        for name in available_profilers():
            strict = make_profiler(name, 4, allow_negative=False)
            with pytest.raises(FrequencyUnderflowError):
                strict.remove(0)

    def test_declared_queries_do_not_raise_unsupported(self):
        """Every declared query must actually be answerable."""
        calls = {
            "frequency": lambda p: p.frequency(0),
            "mode": lambda p: p.mode(),
            "least": lambda p: p.least(),
            "max_frequency": lambda p: p.max_frequency(),
            "min_frequency": lambda p: p.min_frequency(),
            "top_k": lambda p: p.top_k(2),
            "kth_most_frequent": lambda p: p.kth_most_frequent(1),
            "median": lambda p: p.median_frequency(),
            "quantile": lambda p: p.quantile(0.5),
            "histogram": lambda p: p.histogram(),
            "support": lambda p: p.support(0),
        }
        for name in available_profilers():
            profiler = make_profiler(name, 4)
            profiler.add(1)
            for query in profiler_supports(name):
                calls[query](profiler)  # must not raise

    def test_undeclared_queries_raise_unsupported(self):
        calls = {
            "mode": lambda p: p.mode(),
            "least": lambda p: p.least(),
            "max_frequency": lambda p: p.max_frequency(),
            "min_frequency": lambda p: p.min_frequency(),
            "top_k": lambda p: p.top_k(2),
            "kth_most_frequent": lambda p: p.kth_most_frequent(1),
            "median": lambda p: p.median_frequency(),
            "quantile": lambda p: p.quantile(0.5),
            "histogram": lambda p: p.histogram(),
            "support": lambda p: p.support(0),
        }
        for name in available_profilers():
            profiler = make_profiler(name, 4)
            supported = profiler_supports(name)
            for query, call in calls.items():
                if query in supported:
                    continue
                with pytest.raises(UnsupportedQueryError):
                    call(profiler)

    def test_names_sorted(self):
        names = available_profilers()
        assert list(names) == sorted(names)
