"""Property-based tests for distribution statistics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import SProfile
from repro.core.stats import entropy, gini, summarize, top_share

frequencies = st.lists(
    st.integers(min_value=-10, max_value=30), min_size=1, max_size=60
)


@given(frequencies)
@settings(max_examples=120, deadline=None)
def test_gini_bounds(freqs):
    value = gini(SProfile.from_frequencies(freqs))
    assert 0.0 <= value <= 1.0


@given(frequencies)
@settings(max_examples=120, deadline=None)
def test_entropy_bounds(freqs):
    profile = SProfile.from_frequencies(freqs)
    value = entropy(profile)
    positive_objects = sum(1 for f in freqs if f > 0)
    assert value >= 0.0
    if positive_objects:
        assert value <= math.log2(positive_objects) + 1e-9


@given(frequencies)
@settings(max_examples=80, deadline=None)
def test_top_share_monotone_and_bounded(freqs):
    profile = SProfile.from_frequencies(freqs)
    shares = [top_share(profile, k) for k in range(len(freqs) + 1)]
    assert all(0.0 <= s <= 1.0 + 1e-12 for s in shares)
    assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))
    if any(f > 0 for f in freqs):
        assert shares[-1] > 0.999


@given(frequencies)
@settings(max_examples=80, deadline=None)
def test_summary_consistency(freqs):
    profile = SProfile.from_frequencies(freqs)
    summary = summarize(profile)
    assert summary.capacity == len(freqs)
    assert summary.total == sum(freqs)
    assert summary.min_frequency == min(freqs)
    assert summary.max_frequency == max(freqs)
    assert summary.min_frequency <= summary.median <= summary.max_frequency
    assert summary.variance >= 0.0
    assert summary.active == sum(1 for f in freqs if f != 0)


@given(frequencies)
@settings(max_examples=50, deadline=None)
def test_entropy_invariant_under_permutation(freqs):
    reversed_profile = SProfile.from_frequencies(list(reversed(freqs)))
    profile = SProfile.from_frequencies(freqs)
    assert entropy(profile) == entropy(reversed_profile)
    assert gini(profile) == gini(reversed_profile)
