"""The cluster router: one wire endpoint fronting N replica servers.

:class:`ClusterRouter` subclasses :class:`~repro.server.service
.ProfileServer` and keeps its entire front half — the negotiated
codecs, the per-connection readers, the bounded queue, the
micro-batching flusher, the graceful drain.  What changes is what a
flush *does*: instead of one engine call, the router

1. range-validates each wire batch whole (the engines' exact error, so
   a bad id rejects the batch before any replica sees a byte),
   assigns its ``seq``, computes its ack value locally (net unit
   events — additive across the partition split), and appends the
   partitioned columns to each touched partition's
   :class:`~repro.cluster.journal.PartitionJournal`;
2. fans one merged sub-batch per partition out to the replicas over
   the negotiated codec (binary where both ends support it) and
   awaits their acks;
3. acks its own clients — per connection, in pipeline order, exactly
   like the base server.

Because the flusher is one task and step 2 completes before step 3, a
client ack *means* every replica holding a piece of that batch has
acked it — and the journal entry behind it survives until a replica
snapshot covers it.  Kill a replica at any point and recovery is
always the same move: restore the partition's last snapshot (wiping
whatever the dying process half-applied), then replay the journal in
``seq`` order.  Zero acknowledged events lost, no double counts.

Queries merge replica answers exactly like
:class:`~repro.engine.sharding.ShardedProfiler` merges shard answers
(see :mod:`repro.cluster.merge`); ``checkpoint`` assembles the replica
checkpoints into one standard *sharded* facade state, restorable by
``Profiler.from_state`` anywhere.

The router hosts dense, non-strict profiles.  Strict mode would need
all-or-nothing rejection *across* partitions — a two-phase commit the
serving tier does not pay for; dense hashing is what makes the
partition arithmetic (and the additive ack values) state-independent.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.api.facade import API_STATE_VERSION
from repro.api.plan import Query
from repro.cluster.journal import PartitionJournal
from repro.cluster.merge import (
    count_above,
    count_at,
    merge_extremes,
    merge_histograms,
    merge_top_entries,
    partition_batch,
    rank_frequency,
    to_global,
)
from repro.core.queries import quantile_rank
from repro.errors import CapacityError, CheckpointError
from repro.server.client import AsyncProfileClient
from repro.server.protocol import ProtocolError, encode_error, encode_value
from repro.server.service import ProfileServer, _Item

__all__ = ["ClusterRouter", "partition_capacity"]


def partition_capacity(m: int, p: int, n_parts: int) -> int:
    """Capacity of partition ``p``: its share of ``x % n_parts`` ids."""
    return (m - p + n_parts - 1) // n_parts


class _RouterFacade:
    """The profiler-shaped stub the base server introspects.

    The router hosts no engine — state lives in the replicas — but the
    base class reads identity off its profiler (greeting, codec
    negotiation, health).  ``backend=None`` resolves the base
    coalescing strategy to ``"sequential"``, which the overridden
    ``_flush`` never consults anyway.
    """

    backend = None
    backend_name = "cluster"
    keys = "dense"
    strict = False

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def close(self) -> None:
        """Nothing to release; replicas own the state."""


class ClusterRouter(ProfileServer):
    """Route one dense universe over ``len(endpoints)`` replicas.

    Parameters (beyond the :class:`ProfileServer` serving knobs)
    ----------------------------------------------------------------
    capacity:
        The global universe size ``m``; partition ``p`` owns ids
        congruent to ``p`` and must serve a profiler of capacity
        ``partition_capacity(m, p, n)``.
    endpoints:
        ``(host, port)`` per partition, in partition order.
    supervisor:
        Optional replica lifecycle manager (duck-typed: an async
        ``ensure_replica(p) -> (host, port)`` that respawns a dead
        replica and returns its current endpoint).  Without one,
        recovery redials the configured endpoint and waits for an
        external restart.
    replica_codec:
        Codec negotiated with replicas (``"auto"``: binary where both
        ends support it).
    snapshot_every:
        Journal depth (wire batches) that triggers a partition
        snapshot + journal truncation.  The bound on replay length
        and on router memory.
    recover_attempts:
        Connect-restore-replay cycles before a partition is declared
        lost (an exception that stops the router).  ``None`` retries
        forever — the right default under a supervisor.
    """

    def __init__(
        self,
        capacity: int,
        endpoints=None,
        *,
        supervisor=None,
        replica_codec: str = "auto",
        snapshot_every: int = 64,
        recover_attempts: int | None = None,
        **server_kwargs,
    ) -> None:
        if endpoints is None:
            if supervisor is None:
                raise CapacityError(
                    "ClusterRouter needs endpoints or a supervisor"
                )
            endpoints = list(supervisor.endpoints)
        endpoints = [tuple(e) for e in endpoints]
        n = len(endpoints)
        if n < 1:
            raise CapacityError("cluster needs at least one replica")
        if capacity < n:
            raise CapacityError(
                f"capacity {capacity} cannot spread over {n} replicas "
                f"(every partition needs at least one id)"
            )
        if snapshot_every < 1:
            raise CapacityError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        super().__init__(
            _RouterFacade(capacity),
            role="router",
            **server_kwargs,
        )
        self._n_parts = n
        self._endpoints: list[tuple[str, int]] = endpoints
        self._supervisor = supervisor
        self._replica_codec = replica_codec
        self._snapshot_every = snapshot_every
        self._recover_attempts = recover_attempts
        self._clients: dict[int, AsyncProfileClient] = {}
        self._journals = [PartitionJournal(p) for p in range(n)]
        self._snapshots: dict[int, dict] = {}
        self.cluster_stats = {
            "recoveries": 0,
            "replayed_batches": 0,
            "snapshots": 0,
            "replica_batches": 0,
        }

    # -- lifecycle -----------------------------------------------------

    @property
    def n_partitions(self) -> int:
        return self._n_parts

    async def start(self) -> "ClusterRouter":
        # Replicas first: a config mismatch (wrong capacity, strict,
        # hashable keys) must fail the router before it accepts a
        # single client.
        for p in range(self._n_parts):
            self._clients[p] = await self._connect_replica(p)
        await super().start()
        return self

    async def _before_close_connections(self) -> None:
        """Say goodbye to the replicas once the flusher has drained.

        By this point every accepted wire batch has been delivered and
        acked by its replicas (the flusher awaits replica acks inside
        each flush), so closing is pure teardown.
        """
        for client in self._clients.values():
            try:
                await client.aclose()
            except (ConnectionError, OSError):
                pass
        self._clients.clear()

    # -- replica connections -------------------------------------------

    async def _connect_replica(self, p: int) -> AsyncProfileClient:
        """Dial partition ``p`` and validate its identity."""
        host, port = self._endpoints[p]
        client = await AsyncProfileClient.connect(
            host,
            port,
            codec=self._replica_codec,
            max_frame=self._max_frame,
            reconnect=True,
            max_attempts=8,
        )
        hello = client.hello
        expected = partition_capacity(self.capacity, p, self._n_parts)
        if (
            hello.get("keys") != "dense"
            or hello.get("strict")
            or hello.get("capacity") != expected
        ):
            await client.aclose()
            raise ProtocolError(
                f"replica {p} at {host}:{port} serves "
                f"keys={hello.get('keys')!r} strict={hello.get('strict')!r} "
                f"capacity={hello.get('capacity')!r}; partition {p}/"
                f"{self._n_parts} of universe {self.capacity} needs a "
                f"dense non-strict profiler of capacity {expected}"
            )
        return client

    @property
    def capacity(self) -> int:
        return self._profiler.capacity

    async def _ensure_client(self, p: int) -> AsyncProfileClient:
        client = self._clients.get(p)
        if client is None:
            await self._recover(p)
            client = self._clients[p]
        return client

    async def _recover(self, p: int) -> None:
        """Bring partition ``p`` back: respawn, restore, replay.

        The one recovery move, whatever the failure looked like: a new
        connection, the last snapshot restored (rewinding anything the
        dying process half-applied — this is what makes a send racing
        the crash harmless), then the journal replayed in ``seq``
        order.  Runs in the flusher task, so the journal cannot grow
        underneath the replay; client readers stall on the bounded
        queue meanwhile — recovery *is* the backpressure.
        """
        self.cluster_stats["recoveries"] += 1
        stale = self._clients.pop(p, None)
        if stale is not None:
            try:
                await stale.aclose()
            except (ConnectionError, OSError):
                pass
        journal = self._journals[p]
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._supervisor is not None:
                    self._endpoints[p] = tuple(
                        await self._supervisor.ensure_replica(p)
                    )
                client = await self._connect_replica(p)
                snapshot = self._snapshots.get(p)
                if snapshot is not None:
                    await client.restore(snapshot)
                replayed = 0
                for entry in journal.entries():
                    await self._send_batch(client, entry.ids, entry.deltas)
                    replayed += 1
                self.cluster_stats["replayed_batches"] += replayed
                self._clients[p] = client
                return
            except (ConnectionError, OSError):
                if (
                    self._recover_attempts is not None
                    and attempt >= self._recover_attempts
                ):
                    raise ConnectionError(
                        f"partition {p} unrecoverable after {attempt} "
                        f"restore+replay attempts"
                    )

    async def _replica_call(self, p: int, fn):
        """Run one replica request, recovering once on connection loss."""
        for retry in (False, True):
            client = await self._ensure_client(p)
            try:
                return await fn(client)
            except (ConnectionError, OSError):
                if retry:
                    raise
                await self._recover(p)
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    async def _send_batch(client: AsyncProfileClient, ids, deltas) -> int:
        """One partitioned column pair -> one replica ingest."""
        if client.codec == "binary":
            return await client.ingest((ids, deltas))
        ids = ids.tolist() if hasattr(ids, "tolist") else list(ids)
        deltas = (
            deltas.tolist() if hasattr(deltas, "tolist") else list(deltas)
        )
        return await client.ingest(list(zip(ids, deltas)))

    # -- the flusher: partition, journal, fan out, ack ------------------

    async def _flush(self, batch: list[_Item]) -> None:
        if not batch:
            return
        stats = self._stats
        stats.flushes += 1
        n_events = sum(len(item.data) for item in batch)
        stats.wire_batches += len(batch)
        stats.wire_events += n_events
        if n_events > stats.max_flush_events:
            stats.max_flush_events = n_events
        outcomes: list[tuple[_Item, Any]] = []
        pending: dict[int, list[tuple]] = {}
        touched: set[int] = set()
        for item in batch:
            self._seq += 1
            item.seq = self._seq
            try:
                parts, applied = partition_batch(
                    item.data, self._n_parts, self.capacity
                )
            except Exception as exc:
                outcomes.append((item, exc))
                continue
            for p, (ids, deltas) in parts.items():
                self._journals[p].append(item.seq, ids, deltas)
                pending.setdefault(p, []).append((ids, deltas))
                touched.add(p)
            outcomes.append((item, applied))
        if pending:
            await asyncio.gather(
                *(
                    self._deliver(p, chunks)
                    for p, chunks in pending.items()
                )
            )
        per_conn: dict[Any, list[tuple[_Item, Any]]] = {}
        for item, result in outcomes:
            if isinstance(result, Exception):
                stats.rejected += 1
            else:
                stats.applied_units += result
            per_conn.setdefault(item.conn, []).append((item, result))
        for conn, acks in per_conn.items():
            await conn.send(self._pack_acks(conn, acks))
        for p in sorted(touched):
            if len(self._journals[p]) >= self._snapshot_every:
                await self._snapshot(p)

    async def _deliver(self, p: int, chunks) -> None:
        """Send one flush's sub-batches to partition ``p``; await ack.

        On connection loss there is nothing to resend: the journal
        already holds this flush's entries, so :meth:`_recover`'s
        restore + replay applies them as a side effect.
        """
        client = await self._ensure_client(p)
        try:
            for ids, deltas in chunks:
                await self._send_batch(client, ids, deltas)
            self.cluster_stats["replica_batches"] += len(chunks)
        except (ConnectionError, OSError):
            await self._recover(p)

    async def _snapshot(self, p: int) -> None:
        """Checkpoint partition ``p`` and truncate its journal.

        The checkpoint request rides the replica's ordered connection
        behind everything this flusher already sent, so the returned
        state covers every journal entry — ``clear`` asserts exactly
        that.  A connection lost mid-checkpoint just recovers; the
        journal stays and the snapshot retries after a later flush.
        """
        journal = self._journals[p]
        watermark = journal.last_seq
        try:
            state = await self._replica_call(
                p, lambda client: client.checkpoint()
            )
        except (ConnectionError, OSError):
            return
        self._snapshots[p] = state
        journal.clear(watermark)
        self.cluster_stats["snapshots"] += 1

    # -- queries: merge replica answers --------------------------------

    async def _execute(self, item: _Item) -> None:
        kind = item.kind
        if kind in ("close", "reject", "hello", "ping"):
            await super()._execute(item)
            return
        try:
            if kind == "evaluate":
                self._stats.queries += 1
                plan = item.data
                values = await self._evaluate_cluster(plan)
                payload = {
                    "id": item.req_id,
                    "ok": True,
                    "seq": self._seq,
                    "values": [
                        encode_value(q.kind, v)
                        for q, v in zip(plan, values)
                    ],
                }
            elif kind == "describe":
                payload = {
                    "id": item.req_id,
                    "ok": True,
                    "info": await self._describe_cluster(),
                }
            elif kind == "checkpoint":
                self._stats.checkpoints += 1
                payload = {
                    "id": item.req_id,
                    "ok": True,
                    "seq": self._seq,
                    "state": await self._checkpoint_cluster(),
                }
            elif kind == "restore":
                raise CheckpointError(
                    "the cluster router hosts no state to restore; "
                    "replicas recover from router snapshots"
                )
            else:  # pragma: no cover - decoder emits no other kinds
                raise ProtocolError(f"unknown pipeline item {kind!r}")
        except Exception as exc:
            self._stats.rejected += 1
            payload = {
                "id": item.req_id,
                "ok": False,
                "error": encode_error(exc),
            }
        await item.conn.send(self._pack_response(item.conn, payload))

    async def _evaluate_cluster(self, plan) -> list:
        """Answer one fused plan by merging replica reads.

        Phase 1 sends every replica one fused sub-plan (the union of
        ingredient queries the merges need — deduplicated, so a
        dashboard costs one round trip per replica however many kinds
        it asks).  ``kth_most_frequent`` and ``heavy_hitters`` resolve
        their global cut from the merged phase-1 answers, then fetch
        the named objects in a second, targeted round.
        """
        m = self.capacity
        n = self._n_parts
        shared: dict[str, Query] = {}
        owned: list[dict[str, Query]] = [{} for _ in range(n)]

        def need(q: Query) -> None:
            shared.setdefault(q.key, q)

        for q in plan:
            kind = q.kind
            if kind == "frequency":
                x = q.args[0]
                if not isinstance(x, int) or not 0 <= x < m:
                    raise CapacityError(
                        f"object id {x} out of range [0, {m})"
                    )
                owned[x % n].setdefault(
                    q.key, Query.frequency(x // n)
                )
            elif kind == "total":
                need(Query.total())
            elif kind in ("mode", "least", "max_frequency",
                          "min_frequency", "active_count", "histogram"):
                need(Query(kind))
            elif kind == "support":
                need(q)
            elif kind == "top_k":
                need(q)
            elif kind in ("median", "quantile"):
                need(Query.histogram())
            elif kind == "kth_most_frequent":
                k = q.args[0]
                if not 1 <= k <= m:
                    raise CapacityError(
                        f"k must be in [1, {m}], got {k}"
                    )
                need(Query.histogram())
            elif kind == "heavy_hitters":
                need(Query.histogram())
                need(Query.total())
            else:  # pragma: no cover - Query validates kinds
                raise ProtocolError(f"unknown query kind {kind!r}")

        shared_list = list(shared.values())
        per_part: list[dict[str, Any]] = [{} for _ in range(n)]

        async def fetch(p: int) -> None:
            # owned[] maps the *global* query key to the local-id query
            # a replica understands; answers file under the global key.
            keys = [q.key for q in shared_list] + list(owned[p].keys())
            qlist = shared_list + list(owned[p].values())
            if not qlist:
                return
            result = await self._replica_call(
                p, lambda client: client.evaluate(*qlist)
            )
            per_part[p] = dict(zip(keys, result.values))

        await asyncio.gather(*(fetch(p) for p in range(n)))

        def gather_key(key: str) -> list:
            return [per_part[p][key] for p in range(n)]

        hist_key = Query.histogram().key
        merged_hist = None

        def histogram() -> list[tuple[int, int]]:
            nonlocal merged_hist
            if merged_hist is None:
                merged_hist = merge_histograms(gather_key(hist_key))
            return merged_hist

        values: list[Any] = []
        for q in plan:
            kind = q.kind
            if kind == "frequency":
                values.append(per_part[q.args[0] % n][q.key])
            elif kind in ("total", "active_count"):
                values.append(sum(gather_key(q.key)))
            elif kind == "support":
                values.append(sum(gather_key(q.key)))
            elif kind in ("mode", "least"):
                values.append(
                    merge_extremes(
                        gather_key(q.key), n, desc=kind == "mode"
                    )
                )
            elif kind == "max_frequency":
                values.append(max(gather_key(q.key)))
            elif kind == "min_frequency":
                values.append(min(gather_key(q.key)))
            elif kind == "top_k":
                k = min(q.args[0], m)
                values.append(
                    merge_top_entries(gather_key(q.key), n, k)
                )
            elif kind == "histogram":
                values.append(histogram())
            elif kind == "median":
                values.append(rank_frequency(histogram(), (m - 1) // 2))
            elif kind == "quantile":
                values.append(
                    rank_frequency(
                        histogram(), quantile_rank(q.args[0], m)
                    )
                )
            elif kind == "kth_most_frequent":
                values.append(
                    await self._kth_cluster(
                        q.args[0], histogram(), gather_key(hist_key)
                    )
                )
            elif kind == "heavy_hitters":
                values.append(
                    await self._heavy_hitters_cluster(
                        q.args[0],
                        sum(gather_key(Query.total().key)),
                        gather_key(hist_key),
                    )
                )
        return values

    async def _kth_cluster(self, k: int, merged_hist, hists):
        """Resolve the k-th frequency globally, then name one holder.

        Mirror of ``ShardedProfiler.kth_most_frequent``: the merged
        histogram fixes the frequency ``f`` at global rank ``m - k``;
        the first partition holding an object at ``f`` names it — its
        local descending rank is (objects above ``f``) + 1.
        """
        m = self.capacity
        f = rank_frequency(merged_hist, m - k)
        for p, hist in enumerate(hists):
            if count_at(hist, f) > 0:
                local_rank = count_above(hist, f) + 1
                entry = await self._replica_call(
                    p,
                    lambda client: client.evaluate(
                        Query.kth_most_frequent(local_rank)
                    ),
                )
                return to_global(entry.values[0], p, self._n_parts)
        raise AssertionError("rank frequency vanished mid-query")

    async def _heavy_hitters_cluster(self, phi: float, total: int, hists):
        """Objects above ``phi * total`` — the global threshold.

        Phase 1 already bought each partition's histogram, which fixes
        *how many* qualifiers each holds (``count_above`` the global
        cut); phase 2 fetches exactly those via per-partition
        ``top_k`` and merges descending.
        """
        if total <= 0:
            return []
        threshold = phi * total
        wanted = [count_above(hist, threshold) for hist in hists]
        lists: list[list] = [[] for _ in hists]

        async def fetch(p: int, k: int) -> None:
            result = await self._replica_call(
                p, lambda client: client.evaluate(Query.top_k(k))
            )
            lists[p] = result.values[0]

        await asyncio.gather(
            *(fetch(p, k) for p, k in enumerate(wanted) if k > 0)
        )
        return merge_top_entries(lists, self._n_parts, sum(wanted))

    # -- checkpoint assembly -------------------------------------------

    #: Replica facade backends whose single-profile payload can slot
    #: into a sharded facade state, and the shard core each maps to.
    _CORE_OF_BACKEND = {"flat": "flat", "exact": "sprofile"}

    async def _checkpoint_cluster(self) -> dict[str, Any]:
        """Assemble replica checkpoints into one *sharded* facade state.

        Partition ``p`` of the cluster is, by construction, shard ``p``
        of a ``ShardedProfiler`` over the same universe — same modulus,
        same local ids, same per-shard capacity.  So the cluster's
        checkpoint is simply the standard sharded state with each
        replica's profile payload in its shard slot: restorable by
        ``Profiler.from_state`` on any host, no cluster code needed.
        """
        states = await asyncio.gather(
            *(
                self._replica_call(p, lambda client: client.checkpoint())
                for p in range(self._n_parts)
            )
        )
        cores = []
        for p, state in enumerate(states):
            core = self._CORE_OF_BACKEND.get(state.get("backend"))
            if core is None:
                raise CheckpointError(
                    f"replica {p} backend {state.get('backend')!r} does "
                    f"not assemble into a sharded checkpoint (serve "
                    f"replicas on the flat or exact backend)"
                )
            cores.append(core)
        if len(set(cores)) > 1:
            raise CheckpointError(
                f"replica cores disagree ({sorted(set(cores))}); a "
                f"sharded checkpoint restores one core for all shards"
            )
        return {
            "version": API_STATE_VERSION,
            "backend": "sharded",
            "keys": "dense",
            "strict": False,
            "capacity": self.capacity,
            "shards": self._n_parts,
            "catalog": None,
            "batches": sum(s["batches"] for s in states),
            "events": sum(s["events"] for s in states),
            "profile": [s["profile"] for s in states],
            "core": cores[0],
        }

    # -- introspection -------------------------------------------------

    async def _describe_cluster(self) -> dict[str, Any]:
        replicas = await asyncio.gather(
            *(
                self._replica_call(p, lambda client: client.health())
                for p in range(self._n_parts)
            )
        )
        for p, block in enumerate(replicas):
            block["endpoint"] = list(self._endpoints[p])
        return {
            "backend": "cluster",
            "keys": "dense",
            "strict": False,
            "capacity": self.capacity,
            "partitions": self._n_parts,
            "replicas": replicas,
            "server": self.describe_server(),
        }

    def health_info(self) -> dict[str, Any]:
        info = super().health_info()
        info["partitions"] = self._n_parts
        info["replicas"] = [
            {
                "partition": [p, self._n_parts],
                "endpoint": list(self._endpoints[p]),
                "connected": p in self._clients,
                "journal_depth": len(self._journals[p]),
                "snapshot_seq": self._journals[p].snapshot_seq,
            }
            for p in range(self._n_parts)
        ]
        return info

    def describe_server(self) -> dict[str, Any]:
        out = super().describe_server()
        out["partitions"] = self._n_parts
        out["snapshot_every"] = self._snapshot_every
        out["journal_depth"] = sum(len(j) for j in self._journals)
        out.update(
            {f"cluster_{k}": v for k, v in self.cluster_stats.items()}
        )
        return out
